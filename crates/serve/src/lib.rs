//! # currency-serve
//!
//! The concurrent serving front door for a currency specification: many
//! reader threads answering CPS/COP/DCIP/CCQA queries while one writer
//! streams deltas, with nothing shared but epoch-published snapshots.
//!
//! Built on [`currency_reason::snapshot`]:
//!
//! * [`CurrencyServe`] owns the single [`SnapshotEngine`] writer.
//!   [`CurrencyServe::apply`] applies a delta and publishes the next
//!   epoch; it contends with **no reader** — readers hold `Arc`s to
//!   immutable snapshots.
//! * [`ServeHandle`] is a cheap per-thread handle (clone one per
//!   reader).  Each query re-pins the latest published snapshot, then
//!   consults the shared **epoch-keyed answer cache**: answers are
//!   stored under `(request, epoch)`, so a cache entry is valid exactly
//!   until the next publication and invalidation is free — a writer
//!   bump makes every stale entry unreachable, and they are evicted
//!   lazily on discovery.  Misses are evaluated against the handle's
//!   private [`SnapshotReader`] solver scratch (no shared locks) and
//!   then cached for every other handle.
//! * Admission is controlled by an optional lock-free token-bucket
//!   [`RateLimit`], and every counter ([`ServeStats`]) is an atomic, so
//!   stats scrapes never block queries — and vice versa.
//!
//! ```
//! use currency_serve::{CurrencyServe, ServeOptions};
//! use currency_core::{Catalog, Eid, RelationSchema, Specification, Tuple, Value};
//! use currency_reason::Options;
//!
//! let mut cat = Catalog::new();
//! let r = cat.add(RelationSchema::new("Emp", &["salary"]));
//! let mut spec = Specification::new(cat);
//! spec.instance_mut(r)
//!     .push_tuple(Tuple::new(Eid(0), vec![Value::int(50)]))
//!     .unwrap();
//!
//! let serve = CurrencyServe::new(spec, &Options::default(), &ServeOptions::default()).unwrap();
//! let mut handle = serve.handle(); // one per reader thread
//! assert!(handle.cps().unwrap());
//! assert_eq!(serve.stats().cache_misses, 1);
//! assert!(handle.cps().unwrap()); // same epoch: served from cache
//! assert_eq!(serve.stats().cache_hits, 1);
//! ```

mod cache;
mod rate_limit;
mod stats;

pub use rate_limit::RateLimit;
pub use stats::ServeStats;

use cache::AnswerCache;
use currency_core::{CompactReport, RelId, SpecDelta, Specification, Value};
use currency_query::Query;
use currency_reason::snapshot::{EngineSnapshot, PublishReport, SnapshotEngine, SnapshotReader};
use currency_reason::{CertainAnswers, CurrencyOrderQuery, Options, ReasonError};
use rate_limit::TokenBucket;
use stats::{Counters, InflightGuard};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// A servable query, canonicalized: requests that are `==` (and hash
/// alike) are the same cache entry.  `Query` compares structurally on
/// its head and body, so two independently built identical queries
/// share one entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ServeRequest {
    /// Is the specification consistent?
    Cps,
    /// Is the currency order certain in every consistent completion?
    Cop(CurrencyOrderQuery),
    /// Do all completions agree on the relation's current instance?
    Dcip(RelId),
    /// All certain current answers of the query.
    CertainAnswers(Query),
    /// Is the tuple a certain current answer of the query?
    Ccqa(Query, Vec<Value>),
}

/// The answer to a [`ServeRequest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeAnswer {
    /// Verdict of a decision problem (CPS/COP/DCIP/CCQA).
    Bool(bool),
    /// Result of a [`ServeRequest::CertainAnswers`] request.
    Answers(CertainAnswers),
}

impl ServeAnswer {
    /// The boolean verdict, if this answers a decision problem.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ServeAnswer::Bool(b) => Some(*b),
            ServeAnswer::Answers(_) => None,
        }
    }
}

/// Errors surfaced by the serving layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The rate limiter rejected the query; retry after backoff.
    RateLimited,
    /// The underlying decision procedure failed.
    Reason(ReasonError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::RateLimited => write!(f, "query rejected by rate limiter"),
            ServeError::Reason(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::RateLimited => None,
            ServeError::Reason(e) => Some(e),
        }
    }
}

impl From<ReasonError> for ServeError {
    fn from(e: ReasonError) -> ServeError {
        ServeError::Reason(e)
    }
}

/// Configuration of the serving layer (the underlying solvers are
/// configured separately, through [`currency_reason::Options`]).
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Answer-cache capacity in entries across all shards; `0` disables
    /// caching.
    pub cache_capacity: usize,
    /// Number of independent cache shards (more shards, less lock
    /// contention between concurrent misses; clamped to ≥ 1).
    pub cache_shards: usize,
    /// Admission control; `None` admits everything.
    pub rate_limit: Option<RateLimit>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            cache_capacity: 4096,
            cache_shards: 8,
            rate_limit: None,
        }
    }
}

/// State shared by the service and every handle.
struct ServeShared {
    cell: Arc<currency_reason::SnapshotCell>,
    cache: AnswerCache,
    limiter: Option<TokenBucket>,
    counters: Counters,
}

/// A concurrently servable currency specification: one writer, any
/// number of [`ServeHandle`] readers, an epoch-keyed answer cache.
pub struct CurrencyServe {
    writer: Mutex<SnapshotEngine>,
    shared: Arc<ServeShared>,
}

impl CurrencyServe {
    /// Compile `spec` and stand up the serving layer.
    pub fn new(
        spec: Specification,
        engine_opts: &Options,
        opts: &ServeOptions,
    ) -> Result<CurrencyServe, ReasonError> {
        let engine = SnapshotEngine::new(spec, engine_opts)?;
        Ok(CurrencyServe::from_engine(engine, opts))
    }

    /// Stand up the serving layer over an already-built writer (e.g. one
    /// constructed with [`SnapshotEngine::with_value_rels`]).
    pub fn from_engine(engine: SnapshotEngine, opts: &ServeOptions) -> CurrencyServe {
        let shared = Arc::new(ServeShared {
            cell: engine.cell(),
            cache: AnswerCache::new(opts.cache_capacity, opts.cache_shards),
            limiter: opts.rate_limit.map(TokenBucket::new),
            counters: Counters::default(),
        });
        CurrencyServe {
            writer: Mutex::new(engine),
            shared,
        }
    }

    /// A reader handle pinned to the current snapshot; clone (or call
    /// again) for each reader thread.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            reader: SnapshotReader::new(self.shared.cell.load()),
            shared: self.shared.clone(),
        }
    }

    /// Apply a delta and publish the next epoch.  In-flight and future
    /// reads at the old epoch stay valid; cache entries for old epochs
    /// become unreachable at once.
    ///
    /// The writer lock recovers from poisoning: `SnapshotEngine::apply`
    /// mutates nothing on the error path and publishes only complete
    /// snapshots, so a writer thread that panicked elsewhere cannot have
    /// left it half-updated.
    pub fn apply(&self, delta: &SpecDelta) -> Result<PublishReport, ReasonError> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .apply(delta)
    }

    /// Compact the writer's specification (see [`SnapshotEngine::compact`]).
    pub fn compact(&self) -> Result<CompactReport, ReasonError> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .compact()
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.shared.cell.load()
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.load().epoch()
    }

    /// Scrape the serving counters — lock-free, valid while queries are
    /// in flight and the writer is publishing.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            epoch: self.shared.cell.load().epoch(),
            queries: c.queries.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            rate_limited: c.rate_limited.load(Ordering::Relaxed),
            inflight: c.inflight.load(Ordering::Relaxed),
            cached_entries: self.shared.cache.len(),
            latency_ns_total: c.latency_ns_total.load(Ordering::Relaxed),
            latency_ns_max: c.latency_ns_max.load(Ordering::Relaxed),
        }
    }
}

/// A per-thread reader handle: pinned snapshot, private solver scratch,
/// shared cache and counters.
///
/// Queries take `&mut self` (the scratch learns clauses); hand each
/// thread its own clone.  Cloning is cheap — the new handle shares the
/// cache and counters and starts with empty scratch.
pub struct ServeHandle {
    reader: SnapshotReader,
    shared: Arc<ServeShared>,
}

impl Clone for ServeHandle {
    fn clone(&self) -> ServeHandle {
        ServeHandle {
            reader: SnapshotReader::new(self.shared.cell.load()),
            shared: self.shared.clone(),
        }
    }
}

impl ServeHandle {
    /// Answer `req` at the latest published epoch: admission check,
    /// cache lookup, then (on a miss) evaluation against this handle's
    /// private scratch — strictly outside any shared lock — and cache
    /// fill.
    pub fn query(&mut self, req: &ServeRequest) -> Result<ServeAnswer, ServeError> {
        let shared = self.shared.clone();
        if let Some(limiter) = &shared.limiter {
            if !limiter.try_acquire() {
                shared.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::RateLimited);
            }
        }
        let _inflight = InflightGuard::enter(&shared.counters.inflight);
        let start = Instant::now();
        self.reader.pin(shared.cell.load());
        let epoch = self.reader.epoch();
        if let Some(ans) = shared.cache.get(req, epoch) {
            shared.counters.queries.fetch_add(1, Ordering::Relaxed);
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.counters.record_latency(saturating_elapsed_ns(start));
            return Ok(ans);
        }
        let ans = match req {
            ServeRequest::Cps => ServeAnswer::Bool(self.reader.cps()),
            ServeRequest::Cop(ot) => ServeAnswer::Bool(self.reader.cop(ot)?),
            ServeRequest::Dcip(rel) => ServeAnswer::Bool(self.reader.dcip(*rel)?),
            ServeRequest::CertainAnswers(q) => {
                ServeAnswer::Answers(self.reader.certain_answers(q)?)
            }
            ServeRequest::Ccqa(q, tuple) => ServeAnswer::Bool(self.reader.ccqa(q, tuple)?),
        };
        shared.cache.insert(req, epoch, ans.clone());
        shared.counters.queries.fetch_add(1, Ordering::Relaxed);
        shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        shared.counters.record_latency(saturating_elapsed_ns(start));
        Ok(ans)
    }

    /// **CPS** at the latest epoch.
    pub fn cps(&mut self) -> Result<bool, ServeError> {
        self.query_bool(ServeRequest::Cps)
    }

    /// **COP** at the latest epoch.
    pub fn cop(&mut self, ot: &CurrencyOrderQuery) -> Result<bool, ServeError> {
        self.query_bool(ServeRequest::Cop(ot.clone()))
    }

    /// **DCIP** at the latest epoch.
    pub fn dcip(&mut self, rel: RelId) -> Result<bool, ServeError> {
        self.query_bool(ServeRequest::Dcip(rel))
    }

    /// **CCQA** at the latest epoch.
    pub fn ccqa(&mut self, query: &Query, tuple: &[Value]) -> Result<bool, ServeError> {
        self.query_bool(ServeRequest::Ccqa(query.clone(), tuple.to_vec()))
    }

    /// Certain current answers at the latest epoch.
    pub fn certain_answers(&mut self, query: &Query) -> Result<CertainAnswers, ServeError> {
        match self.query(&ServeRequest::CertainAnswers(query.clone()))? {
            ServeAnswer::Answers(a) => Ok(a),
            ServeAnswer::Bool(_) => unreachable!("CertainAnswers answers with Answers"),
        }
    }

    /// The epoch this handle's last query was answered at (handles
    /// re-pin on every query, so this trails the published epoch only
    /// between queries).
    pub fn epoch(&self) -> u64 {
        self.reader.epoch()
    }

    /// The snapshot this handle is currently pinned to.
    pub fn snapshot(&self) -> &Arc<EngineSnapshot> {
        self.reader.snapshot()
    }

    fn query_bool(&mut self, req: ServeRequest) -> Result<bool, ServeError> {
        match self.query(&req)? {
            ServeAnswer::Bool(b) => Ok(b),
            ServeAnswer::Answers(_) => unreachable!("decision requests answer with Bool"),
        }
    }
}

fn saturating_elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        AttrId, Catalog, CmpOp, DenialConstraint, Eid, RelationSchema, Term, Tuple, TupleId,
    };
    use currency_query::{Atom, Formula, QueryBuilder, Term as QTerm};

    const A: AttrId = AttrId(0);

    fn spec() -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..2u64 {
            for v in [10, 20] {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v + e as i64)]))
                    .unwrap();
            }
        }
        let monotone = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(monotone).unwrap();
        (spec, r)
    }

    fn value_query(r: RelId) -> Query {
        let mut b = QueryBuilder::new();
        let x = b.var();
        b.build(vec![x], Formula::Atom(Atom::new(r, vec![QTerm::Var(x)])))
    }

    fn serve(opts: &ServeOptions) -> (CurrencyServe, RelId) {
        let (spec, r) = spec();
        (
            CurrencyServe::new(spec, &Options::default(), opts).unwrap(),
            r,
        )
    }

    #[test]
    fn all_request_kinds_answer_and_cache() {
        let (serve, r) = serve(&ServeOptions::default());
        let mut h = serve.handle();
        let q = value_query(r);
        let requests = [
            ServeRequest::Cps,
            ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1))),
            ServeRequest::Dcip(r),
            ServeRequest::CertainAnswers(q.clone()),
            ServeRequest::Ccqa(q, vec![Value::int(20)]),
        ];
        let first: Vec<ServeAnswer> = requests.iter().map(|r| h.query(r).unwrap()).collect();
        assert_eq!(first[0], ServeAnswer::Bool(true)); // CPS: consistent
        assert_eq!(first[1], ServeAnswer::Bool(true)); // COP: 10 ≺ 20 forced
        assert_eq!(first[2], ServeAnswer::Bool(true)); // DCIP: orders fully forced
        assert_eq!(first[4], ServeAnswer::Bool(true)); // CCQA: 20 is entity 0's current
        let second: Vec<ServeAnswer> = requests.iter().map(|r| h.query(r).unwrap()).collect();
        assert_eq!(first, second);
        let stats = serve.stats();
        assert_eq!(stats.cache_misses, requests.len() as u64);
        assert_eq!(stats.cache_hits, requests.len() as u64);
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(stats.cached_entries, requests.len());
        assert_eq!(stats.inflight, 0);
    }

    #[test]
    fn cache_hits_are_shared_across_handles() {
        let (serve, _) = serve(&ServeOptions::default());
        let mut h1 = serve.handle();
        let mut h2 = h1.clone();
        assert!(h1.cps().unwrap());
        assert!(h2.cps().unwrap());
        let stats = serve.stats();
        assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    }

    #[test]
    fn publish_invalidates_cached_answers() {
        let (serve, r) = serve(&ServeOptions::default());
        let mut h = serve.handle();
        assert!(h.cps().unwrap());
        assert!(h.cps().unwrap());
        // Contradict entity 0's forced order: CPS flips to false.
        let mut delta = SpecDelta::new();
        delta.add_order_edge(r, A, TupleId(1), TupleId(0));
        let report = serve.apply(&delta).unwrap();
        assert_eq!(report.epoch, serve.epoch());
        assert!(!h.cps().unwrap(), "stale cached true must not survive");
        let stats = serve.stats();
        assert_eq!((stats.cache_misses, stats.cache_hits), (2, 1));
        assert_eq!(stats.epoch, report.epoch);
    }

    #[test]
    fn rate_limiter_rejects_beyond_burst() {
        let opts = ServeOptions {
            rate_limit: Some(RateLimit {
                burst: 2,
                per_sec: 0,
            }),
            ..ServeOptions::default()
        };
        let (serve, _) = serve(&opts);
        let mut h = serve.handle();
        assert!(h.cps().is_ok());
        assert!(h.cps().is_ok());
        assert_eq!(h.cps(), Err(ServeError::RateLimited));
        let stats = serve.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rate_limited, 1);
    }

    #[test]
    fn disabled_cache_still_answers_correctly() {
        let opts = ServeOptions {
            cache_capacity: 0,
            ..ServeOptions::default()
        };
        let (serve, r) = serve(&opts);
        let mut h = serve.handle();
        let cop = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
        assert!(h.cop(&cop).unwrap());
        assert!(h.cop(&cop).unwrap());
        let stats = serve.stats();
        assert_eq!((stats.cache_misses, stats.cache_hits), (2, 0));
        assert_eq!(stats.cached_entries, 0);
    }

    #[test]
    fn error_paths_surface_and_display() {
        let (spec, r) = spec();
        let engine = SnapshotEngine::with_value_rels(spec, &[], &Options::default()).unwrap();
        let serve = CurrencyServe::from_engine(engine, &ServeOptions::default());
        let mut h = serve.handle();
        let err = h.dcip(r).unwrap_err();
        assert!(matches!(err, ServeError::Reason(_)));
        assert!(err.to_string().contains("value indicators"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&ServeError::RateLimited).is_none());
        // Errors are not cached: the next identical request re-evaluates.
        assert!(h.dcip(r).is_err());
        assert_eq!(serve.stats().cached_entries, 0);
    }

    #[test]
    fn equal_queries_built_independently_share_one_entry() {
        let (serve, r) = serve(&ServeOptions::default());
        let mut h = serve.handle();
        h.certain_answers(&value_query(r)).unwrap();
        h.certain_answers(&value_query(r)).unwrap();
        let stats = serve.stats();
        assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    }
}
