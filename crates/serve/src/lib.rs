//! # currency-serve
//!
//! The concurrent serving front door for a currency specification: many
//! reader threads answering CPS/COP/DCIP/CCQA queries while one writer
//! streams deltas, with nothing shared but epoch-published snapshots.
//!
//! Built on [`currency_reason::snapshot`]:
//!
//! * [`CurrencyServe`] owns the single [`SnapshotEngine`] writer.
//!   [`CurrencyServe::apply`] applies a delta and publishes the next
//!   epoch; it contends with **no reader** — readers hold `Arc`s to
//!   immutable snapshots.
//! * [`ServeHandle`] is a cheap per-thread handle (clone one per
//!   reader).  Each query re-pins the latest published snapshot, then
//!   consults the shared **epoch-keyed answer cache**: answers are
//!   stored under `(request, epoch)`, so a cache entry is fresh exactly
//!   until the next publication and invalidation is free — a writer
//!   bump makes every stale entry miss; stale entries are retained as
//!   the degraded-serving reserve.  Misses are evaluated against the handle's
//!   private [`SnapshotReader`] solver scratch (no shared locks) and
//!   then cached for every other handle.
//! * Admission is controlled by an optional lock-free token-bucket
//!   [`RateLimit`], and every counter ([`ServeStats`]) is an atomic, so
//!   stats scrapes never block queries — and vice versa.
//!
//! ## Bounded work
//!
//! Every query admitted past the front door carries a **work budget**:
//! a wall-clock deadline ([`ServeOptions::request_timeout`], default
//! 30 s) threaded down to the SAT solver, which checks it cooperatively
//! and returns a typed interrupt — never a wrong verdict.  Around the
//! budget sit three guard rails:
//!
//! * **Load shedding** — at most [`ServeOptions::max_inflight`] queries
//!   solve concurrently; excess arrivals fast-fail with
//!   [`ServeError::Overloaded`] *before* touching a solver.
//! * **A per-shape circuit breaker** — after
//!   [`ServeOptions::breaker_threshold`] consecutive timeouts on one
//!   canonicalized request, that shape fast-fails
//!   ([`ServeError::BreakerOpen`]) for an exponentially growing backoff,
//!   then admits one half-open probe.
//! * **Graceful degradation** — a timed-out or breaker-rejected query
//!   is answered from the newest cached answer for the same request at
//!   *any* epoch when one exists, tagged [`ServeAnswer::Stale`].
//!
//! ```
//! use currency_serve::{CurrencyServe, ServeOptions};
//! use currency_core::{Catalog, Eid, RelationSchema, Specification, Tuple, Value};
//! use currency_reason::Options;
//!
//! let mut cat = Catalog::new();
//! let r = cat.add(RelationSchema::new("Emp", &["salary"]));
//! let mut spec = Specification::new(cat);
//! spec.instance_mut(r)
//!     .push_tuple(Tuple::new(Eid(0), vec![Value::int(50)]))
//!     .unwrap();
//!
//! let serve = CurrencyServe::new(spec, &Options::default(), &ServeOptions::default()).unwrap();
//! let mut handle = serve.handle(); // one per reader thread
//! assert!(handle.cps().unwrap());
//! assert_eq!(serve.stats().cache_misses, 1);
//! assert!(handle.cps().unwrap()); // same epoch: served from cache
//! assert_eq!(serve.stats().cache_hits, 1);
//! ```

mod breaker;
mod cache;
mod obs;
mod rate_limit;
mod sharded;
mod stats;

pub use rate_limit::RateLimit;
pub use sharded::{
    ShardedPublish, ShardedServe, ShardedServeError, ShardedServeHandle, ShardedServeStats,
};
pub use stats::ServeStats;

use breaker::{Admit, Breaker};
use cache::AnswerCache;
use currency_core::{CompactReport, CompactStepReport, RelId, SpecDelta, Specification, Value};
use currency_obs::{MetricsRegistry, Recorder};
use currency_query::Query;
use currency_reason::snapshot::{EngineSnapshot, PublishReport, SnapshotEngine, SnapshotReader};
use currency_reason::{
    CertainAnswers, CompactBudget, CurrencyOrderQuery, Options, ReasonError, Spent,
};
use obs::{kind_index, ServeObs};
use rate_limit::TokenBucket;
use stats::{Counters, InflightGuard};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A servable query, canonicalized: requests that are `==` (and hash
/// alike) are the same cache entry.  `Query` compares structurally on
/// its head and body, so two independently built identical queries
/// share one entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ServeRequest {
    /// Is the specification consistent?
    Cps,
    /// Is the currency order certain in every consistent completion?
    Cop(CurrencyOrderQuery),
    /// Do all completions agree on the relation's current instance?
    Dcip(RelId),
    /// All certain current answers of the query.
    CertainAnswers(Query),
    /// Is the tuple a certain current answer of the query?
    Ccqa(Query, Vec<Value>),
}

/// The answer to a [`ServeRequest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeAnswer {
    /// Verdict of a decision problem (CPS/COP/DCIP/CCQA).
    Bool(bool),
    /// Result of a [`ServeRequest::CertainAnswers`] request.
    Answers(CertainAnswers),
    /// A degraded answer: the solve timed out (or the shape's breaker
    /// was open) and the newest cached answer for the same request was
    /// served instead.  `epoch` is the epoch that answer was computed
    /// at — older than the live epoch, so the caller can decide whether
    /// stale-but-fast is acceptable.
    Stale {
        /// Epoch the wrapped answer was computed at.
        epoch: u64,
        /// The cached answer itself (never `Stale` — one level deep).
        answer: Box<ServeAnswer>,
    },
}

impl ServeAnswer {
    /// The boolean verdict, if this answers a decision problem
    /// (looking through [`ServeAnswer::Stale`]).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ServeAnswer::Bool(b) => Some(*b),
            ServeAnswer::Answers(_) => None,
            ServeAnswer::Stale { answer, .. } => answer.as_bool(),
        }
    }

    /// Whether this is a degraded (stale-epoch) answer.
    pub fn is_stale(&self) -> bool {
        matches!(self, ServeAnswer::Stale { .. })
    }
}

/// Errors surfaced by the serving layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The rate limiter rejected the query; retry after backoff.
    RateLimited,
    /// The in-flight cap was reached: the query was shed before any
    /// solving started.  Retry after backoff.
    Overloaded,
    /// This request shape's circuit breaker is open (consecutive
    /// timeouts) and no cached answer exists to degrade to.
    BreakerOpen,
    /// The underlying decision procedure failed.  A
    /// [`ReasonError::Interrupted`] here means the per-request budget
    /// expired and no stale answer existed to degrade to.
    Reason(ReasonError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::RateLimited => write!(f, "query rejected by rate limiter"),
            ServeError::Overloaded => write!(f, "query shed: in-flight cap reached"),
            ServeError::BreakerOpen => {
                write!(f, "circuit breaker open for this request shape")
            }
            ServeError::Reason(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::RateLimited | ServeError::Overloaded | ServeError::BreakerOpen => None,
            ServeError::Reason(e) => Some(e),
        }
    }
}

impl From<ReasonError> for ServeError {
    fn from(e: ReasonError) -> ServeError {
        ServeError::Reason(e)
    }
}

/// Configuration of the serving layer (the underlying solvers are
/// configured separately, through [`currency_reason::Options`]).
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Answer-cache capacity in entries across all shards; `0` disables
    /// caching.
    pub cache_capacity: usize,
    /// Number of independent cache shards (more shards, less lock
    /// contention between concurrent misses; clamped to ≥ 1).
    pub cache_shards: usize,
    /// Admission control; `None` admits everything.
    pub rate_limit: Option<RateLimit>,
    /// Per-request wall-clock budget threaded down to the solver;
    /// `None` disables the deadline (unbounded solves).  Overridable
    /// per query with [`ServeHandle::query_within`].
    pub request_timeout: Option<Duration>,
    /// Maximum queries solving concurrently; excess arrivals are shed
    /// with [`ServeError::Overloaded`].  `0` means unlimited.
    pub max_inflight: usize,
    /// Consecutive timeouts on one request shape that open its circuit
    /// breaker.  `0` disables the breaker.
    pub breaker_threshold: u32,
    /// Backoff after the breaker first opens; doubles after each failed
    /// half-open probe.
    pub breaker_backoff: Duration,
    /// Ceiling for the exponential breaker backoff.
    pub breaker_max_backoff: Duration,
    /// Retain requests slower than this in the slow-query log
    /// ([`CurrencyServe::slow_queries`]); `None` (the default) disables
    /// the log.
    pub slow_query_threshold: Option<Duration>,
    /// Slow-query log capacity: the newest entries win (clamped ≥ 1).
    pub slow_query_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            cache_capacity: 4096,
            cache_shards: 8,
            rate_limit: None,
            request_timeout: Some(Duration::from_secs(30)),
            max_inflight: 0,
            breaker_threshold: 3,
            breaker_backoff: Duration::from_millis(100),
            breaker_max_backoff: Duration::from_secs(5),
            slow_query_threshold: None,
            slow_query_capacity: 128,
        }
    }
}

/// One over-threshold request retained by the slow-query log (see
/// [`ServeOptions::slow_query_threshold`]).
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The canonicalized request shape.
    pub request: ServeRequest,
    /// Epoch the query was answered (or interrupted) at.
    pub epoch: u64,
    /// End-to-end wall time the caller observed.
    pub duration: Duration,
    /// Solver work performed when the query was interrupted by its
    /// budget (`None` for slow-but-completed queries).
    pub spent: Option<Spent>,
}

/// State shared by the service and every handle.
struct ServeShared {
    cell: Arc<currency_reason::SnapshotCell>,
    cache: AnswerCache,
    limiter: Option<TokenBucket>,
    breaker: Breaker,
    counters: Counters,
    obs: ServeObs,
    slow_queries: Mutex<VecDeque<SlowQuery>>,
    slow_query_threshold: Option<Duration>,
    slow_query_capacity: usize,
    request_timeout: Option<Duration>,
    max_inflight: usize,
}

impl ServeShared {
    /// Retain `req` in the slow-query ring when it ran over the
    /// configured threshold (overwrite-oldest at capacity).
    fn note_slow(&self, req: &ServeRequest, epoch: u64, duration: Duration, spent: Option<Spent>) {
        let Some(threshold) = self.slow_query_threshold else {
            return;
        };
        if duration < threshold {
            return;
        }
        let mut log = self
            .slow_queries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while log.len() >= self.slow_query_capacity {
            log.pop_front();
        }
        log.push_back(SlowQuery {
            request: req.clone(),
            epoch,
            duration,
            spent,
        });
    }
}

/// A concurrently servable currency specification: one writer, any
/// number of [`ServeHandle`] readers, an epoch-keyed answer cache.
pub struct CurrencyServe {
    writer: Mutex<SnapshotEngine>,
    shared: Arc<ServeShared>,
}

impl CurrencyServe {
    /// Compile `spec` and stand up the serving layer.
    pub fn new(
        spec: Specification,
        engine_opts: &Options,
        opts: &ServeOptions,
    ) -> Result<CurrencyServe, ReasonError> {
        let engine = SnapshotEngine::new(spec, engine_opts)?;
        Ok(CurrencyServe::from_engine(engine, opts))
    }

    /// Stand up the serving layer over an already-built writer (e.g. one
    /// constructed with [`SnapshotEngine::with_value_rels`]).
    pub fn from_engine(mut engine: SnapshotEngine, opts: &ServeOptions) -> CurrencyServe {
        // One registry for the whole stack: the writer engine's phase
        // timings land next to the serve-side series, so a single
        // scrape covers both.
        let registry = Arc::new(MetricsRegistry::new());
        engine.obs_mut().bind_metrics(&registry);
        let shared = Arc::new(ServeShared {
            cell: engine.cell(),
            cache: AnswerCache::new(opts.cache_capacity, opts.cache_shards),
            limiter: opts.rate_limit.map(TokenBucket::new),
            breaker: Breaker::new(
                opts.breaker_threshold,
                opts.breaker_backoff,
                opts.breaker_max_backoff,
            ),
            counters: Counters::default(),
            obs: ServeObs::new(registry),
            slow_queries: Mutex::new(VecDeque::new()),
            slow_query_threshold: opts.slow_query_threshold,
            slow_query_capacity: opts.slow_query_capacity.max(1),
            request_timeout: opts.request_timeout,
            max_inflight: opts.max_inflight,
        });
        CurrencyServe {
            writer: Mutex::new(engine),
            shared,
        }
    }

    /// A reader handle pinned to the current snapshot; clone (or call
    /// again) for each reader thread.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            reader: SnapshotReader::new(self.shared.cell.load()),
            shared: self.shared.clone(),
        }
    }

    /// Apply a delta and publish the next epoch.  In-flight and future
    /// reads at the old epoch stay valid; cache entries for old epochs
    /// become unreachable at once.
    ///
    /// The writer lock recovers from poisoning: `SnapshotEngine::apply`
    /// mutates nothing on the error path and publishes only complete
    /// snapshots, so a writer thread that panicked elsewhere cannot have
    /// left it half-updated.
    pub fn apply(&self, delta: &SpecDelta) -> Result<PublishReport, ReasonError> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .apply(delta)
    }

    /// Compact the writer's specification (see [`SnapshotEngine::compact`]).
    pub fn compact(&self) -> Result<CompactReport, ReasonError> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .compact()
    }

    /// Run one bounded compaction step and publish it as a new epoch
    /// (see [`SnapshotEngine::compact_step`]).  In-flight queries keep
    /// answering against their pinned pre-step snapshots; the writer is
    /// held for one budget-bounded pause, never a full sweep.
    pub fn compact_step(&self, budget: &CompactBudget) -> Result<CompactStepReport, ReasonError> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .compact_step(budget)
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.shared.cell.load()
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.load().epoch()
    }

    /// Scrape the serving counters — lock-free, valid while queries are
    /// in flight and the writer is publishing.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            epoch: self.shared.cell.load().epoch(),
            queries: c.queries.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            rate_limited: c.rate_limited.load(Ordering::Relaxed),
            inflight: c.inflight.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            stale_served: c.stale_served.load(Ordering::Relaxed),
            breaker_trips: c.breaker_trips.load(Ordering::Relaxed),
            breaker_rejects: c.breaker_rejects.load(Ordering::Relaxed),
            breakers_open: self.shared.breaker.open_count(),
            degraded_events: self.shared.cache.degraded_events()
                + self.shared.cell.degraded_events(),
            cached_entries: self.shared.cache.len(),
            latency_ns_total: c.latency_ns_total.load(Ordering::Relaxed),
            latency_ns_max: c.latency_ns_max.load(Ordering::Relaxed),
        }
    }

    /// The serving stack's metric registry: serve-side series (latency
    /// histograms per query kind, cache hit/miss counters, degradation
    /// counters) plus the writer engine's phase timings, all in one
    /// place.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.shared.obs.registry()
    }

    /// Current metrics in Prometheus text exposition format (one scrape
    /// covers the serve layer and the writer engine).
    pub fn metrics_text(&self) -> String {
        self.metrics().snapshot().render_prometheus()
    }

    /// Attach a trace recorder: breaker transitions and stale-serve
    /// degradations are emitted as structured
    /// [`currency_obs::TraceEvent`]s, and the writer engine's apply
    /// phases record spans into the same sink.  Pass a
    /// [`currency_obs::RingRecorder`] and drain it to inspect the
    /// stream.
    pub fn set_recorder(&self, recorder: Arc<dyn Recorder>) {
        self.shared.obs.set_recorder(recorder.clone());
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .obs_mut()
            .set_recorder(recorder);
    }

    /// The slow-query log, oldest first — requests that ran over
    /// [`ServeOptions::slow_query_threshold`], with the epoch they ran
    /// at and (for interrupted solves) the work ledger they burned.
    /// Empty when no threshold is configured.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shared
            .slow_queries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

/// A per-thread reader handle: pinned snapshot, private solver scratch,
/// shared cache and counters.
///
/// Queries take `&mut self` (the scratch learns clauses); hand each
/// thread its own clone.  Cloning is cheap — the new handle shares the
/// cache and counters and starts with empty scratch.
pub struct ServeHandle {
    reader: SnapshotReader,
    shared: Arc<ServeShared>,
}

impl Clone for ServeHandle {
    fn clone(&self) -> ServeHandle {
        ServeHandle {
            reader: SnapshotReader::new(self.shared.cell.load()),
            shared: self.shared.clone(),
        }
    }
}

impl ServeHandle {
    /// Answer `req` at the latest published epoch under the service's
    /// default per-request budget: admission checks (rate limit,
    /// in-flight cap), cache lookup, breaker admission, then (on a
    /// miss) a deadline-bounded evaluation against this handle's
    /// private scratch — strictly outside any shared lock — and cache
    /// fill.  A timed-out solve degrades to the newest stale cached
    /// answer when one exists.
    pub fn query(&mut self, req: &ServeRequest) -> Result<ServeAnswer, ServeError> {
        self.query_deadline(req, self.shared.request_timeout)
    }

    /// [`query`](ServeHandle::query) with an explicit per-request
    /// budget: `Some(d)` overrides the configured
    /// [`ServeOptions::request_timeout`], `None` removes the deadline
    /// for this request (an explicit opt-in to unbounded work).
    pub fn query_within(
        &mut self,
        req: &ServeRequest,
        timeout: Option<Duration>,
    ) -> Result<ServeAnswer, ServeError> {
        self.query_deadline(req, timeout)
    }

    fn query_deadline(
        &mut self,
        req: &ServeRequest,
        timeout: Option<Duration>,
    ) -> Result<ServeAnswer, ServeError> {
        let shared = self.shared.clone();
        let kind = kind_index(req);
        if let Some(limiter) = &shared.limiter {
            if !limiter.try_acquire() {
                shared.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
                shared.obs.rate_limited.inc();
                return Err(ServeError::RateLimited);
            }
        }
        // Overload shedding: fail fast before pinning a snapshot or
        // touching a solver, so a saturated service stays responsive.
        let Some(_inflight) =
            InflightGuard::try_enter(&shared.counters.inflight, shared.max_inflight)
        else {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            shared.obs.shed.inc();
            return Err(ServeError::Overloaded);
        };
        let start = Instant::now();
        self.reader.pin(shared.cell.load());
        let epoch = self.reader.epoch();
        // A fresh cache hit costs no solve: it bypasses the breaker and
        // the deadline entirely.
        if let Some(ans) = shared.cache.get(req, epoch) {
            shared.counters.queries.fetch_add(1, Ordering::Relaxed);
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.obs.cache_hits.inc();
            let ns = saturating_elapsed_ns(start);
            shared.counters.record_latency(ns);
            shared.obs.latency_ns[kind].record(ns);
            return Ok(ans);
        }
        match shared.breaker.admit(req) {
            Admit::Allow => {}
            Admit::Probe => shared.obs.event("breaker.half_open", 0),
            Admit::Reject => {
                shared
                    .counters
                    .breaker_rejects
                    .fetch_add(1, Ordering::Relaxed);
                shared.obs.breaker_rejects.inc();
                return match self.serve_stale(&shared, req, start) {
                    Some(stale) => Ok(stale),
                    None => Err(ServeError::BreakerOpen),
                };
            }
        }
        self.reader.set_deadline(timeout.map(|t| start + t));
        let result = self.evaluate(req);
        self.reader.set_deadline(None);
        match result {
            Ok(ans) => {
                if shared.breaker.record_success(req) {
                    shared.obs.event("breaker.closed", 0);
                }
                shared.cache.insert(req, epoch, ans.clone());
                shared.counters.queries.fetch_add(1, Ordering::Relaxed);
                shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                shared.obs.cache_misses.inc();
                let ns = saturating_elapsed_ns(start);
                shared.counters.record_latency(ns);
                shared.obs.latency_ns[kind].record(ns);
                shared.note_slow(req, epoch, start.elapsed(), None);
                Ok(ans)
            }
            Err(err @ ReasonError::Interrupted { .. }) => {
                shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                shared.obs.timeouts.inc();
                if shared.breaker.record_timeout(req) {
                    shared
                        .counters
                        .breaker_trips
                        .fetch_add(1, Ordering::Relaxed);
                    shared.obs.breaker_trips.inc();
                    shared.obs.event("breaker.open", 0);
                }
                if let ReasonError::Interrupted { spent } = &err {
                    shared.note_slow(req, epoch, start.elapsed(), Some(*spent));
                }
                match self.serve_stale(&shared, req, start) {
                    Some(stale) => Ok(stale),
                    None => Err(ServeError::Reason(err)),
                }
            }
            Err(other) => Err(ServeError::Reason(other)),
        }
    }

    /// Evaluate `req` against the pinned snapshot with this handle's
    /// private scratch.  The reader's per-request deadline (set by the
    /// caller) bounds every solve below.
    fn evaluate(&mut self, req: &ServeRequest) -> Result<ServeAnswer, ReasonError> {
        Ok(match req {
            ServeRequest::Cps => ServeAnswer::Bool(self.reader.cps()),
            ServeRequest::Cop(ot) => ServeAnswer::Bool(self.reader.cop(ot)?),
            ServeRequest::Dcip(rel) => ServeAnswer::Bool(self.reader.dcip(*rel)?),
            ServeRequest::CertainAnswers(q) => {
                ServeAnswer::Answers(self.reader.certain_answers(q)?)
            }
            ServeRequest::Ccqa(q, tuple) => ServeAnswer::Bool(self.reader.ccqa(q, tuple)?),
        })
    }

    /// Graceful degradation: the newest cached answer for `req` at any
    /// epoch, tagged stale, when one exists.
    fn serve_stale(
        &self,
        shared: &ServeShared,
        req: &ServeRequest,
        start: Instant,
    ) -> Option<ServeAnswer> {
        let (stale_epoch, answer) = shared.cache.get_any(req)?;
        shared.counters.queries.fetch_add(1, Ordering::Relaxed);
        shared.counters.stale_served.fetch_add(1, Ordering::Relaxed);
        shared.obs.stale_served.inc();
        let lag = self.reader.epoch().saturating_sub(stale_epoch);
        shared.obs.epoch_lag.set(lag);
        shared.obs.event("serve.stale", lag);
        let ns = saturating_elapsed_ns(start);
        shared.counters.record_latency(ns);
        shared.obs.latency_ns[kind_index(req)].record(ns);
        Some(ServeAnswer::Stale {
            epoch: stale_epoch,
            answer: Box::new(answer),
        })
    }

    /// **CPS** at the latest epoch.
    pub fn cps(&mut self) -> Result<bool, ServeError> {
        self.query_bool(ServeRequest::Cps)
    }

    /// **COP** at the latest epoch.
    pub fn cop(&mut self, ot: &CurrencyOrderQuery) -> Result<bool, ServeError> {
        self.query_bool(ServeRequest::Cop(ot.clone()))
    }

    /// **DCIP** at the latest epoch.
    pub fn dcip(&mut self, rel: RelId) -> Result<bool, ServeError> {
        self.query_bool(ServeRequest::Dcip(rel))
    }

    /// **CCQA** at the latest epoch.
    pub fn ccqa(&mut self, query: &Query, tuple: &[Value]) -> Result<bool, ServeError> {
        self.query_bool(ServeRequest::Ccqa(query.clone(), tuple.to_vec()))
    }

    /// Certain current answers at the latest epoch.  A degraded
    /// (stale-epoch) answer is unwrapped transparently; use
    /// [`query`](ServeHandle::query) to observe staleness.
    pub fn certain_answers(&mut self, query: &Query) -> Result<CertainAnswers, ServeError> {
        let mut ans = self.query(&ServeRequest::CertainAnswers(query.clone()))?;
        if let ServeAnswer::Stale { answer, .. } = ans {
            ans = *answer;
        }
        match ans {
            ServeAnswer::Answers(a) => Ok(a),
            _ => unreachable!("CertainAnswers answers with Answers"),
        }
    }

    /// The epoch this handle's last query was answered at (handles
    /// re-pin on every query, so this trails the published epoch only
    /// between queries).
    pub fn epoch(&self) -> u64 {
        self.reader.epoch()
    }

    /// The snapshot this handle is currently pinned to.
    pub fn snapshot(&self) -> &Arc<EngineSnapshot> {
        self.reader.snapshot()
    }

    /// Current metrics in Prometheus text exposition format — the same
    /// registry [`CurrencyServe::metrics_text`] renders, reachable from
    /// any reader thread without a reference to the service.
    pub fn metrics_text(&self) -> String {
        self.shared.obs.registry().snapshot().render_prometheus()
    }

    fn query_bool(&mut self, req: ServeRequest) -> Result<bool, ServeError> {
        match self.query(&req)?.as_bool() {
            Some(b) => Ok(b),
            None => unreachable!("decision requests answer with Bool"),
        }
    }
}

fn saturating_elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        AttrId, Catalog, CmpOp, DenialConstraint, Eid, RelationSchema, Term, Tuple, TupleId,
    };
    use currency_query::{Atom, Formula, QueryBuilder, Term as QTerm};

    const A: AttrId = AttrId(0);

    fn spec() -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..2u64 {
            for v in [10, 20] {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v + e as i64)]))
                    .unwrap();
            }
        }
        let monotone = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(monotone).unwrap();
        (spec, r)
    }

    fn value_query(r: RelId) -> Query {
        let mut b = QueryBuilder::new();
        let x = b.var();
        b.build(vec![x], Formula::Atom(Atom::new(r, vec![QTerm::Var(x)])))
    }

    fn serve(opts: &ServeOptions) -> (CurrencyServe, RelId) {
        let (spec, r) = spec();
        (
            CurrencyServe::new(spec, &Options::default(), opts).unwrap(),
            r,
        )
    }

    #[test]
    fn all_request_kinds_answer_and_cache() {
        let (serve, r) = serve(&ServeOptions::default());
        let mut h = serve.handle();
        let q = value_query(r);
        let requests = [
            ServeRequest::Cps,
            ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1))),
            ServeRequest::Dcip(r),
            ServeRequest::CertainAnswers(q.clone()),
            ServeRequest::Ccqa(q, vec![Value::int(20)]),
        ];
        let first: Vec<ServeAnswer> = requests.iter().map(|r| h.query(r).unwrap()).collect();
        assert_eq!(first[0], ServeAnswer::Bool(true)); // CPS: consistent
        assert_eq!(first[1], ServeAnswer::Bool(true)); // COP: 10 ≺ 20 forced
        assert_eq!(first[2], ServeAnswer::Bool(true)); // DCIP: orders fully forced
        assert_eq!(first[4], ServeAnswer::Bool(true)); // CCQA: 20 is entity 0's current
        let second: Vec<ServeAnswer> = requests.iter().map(|r| h.query(r).unwrap()).collect();
        assert_eq!(first, second);
        let stats = serve.stats();
        assert_eq!(stats.cache_misses, requests.len() as u64);
        assert_eq!(stats.cache_hits, requests.len() as u64);
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(stats.cached_entries, requests.len());
        assert_eq!(stats.inflight, 0);
    }

    #[test]
    fn cache_hits_are_shared_across_handles() {
        let (serve, _) = serve(&ServeOptions::default());
        let mut h1 = serve.handle();
        let mut h2 = h1.clone();
        assert!(h1.cps().unwrap());
        assert!(h2.cps().unwrap());
        let stats = serve.stats();
        assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    }

    #[test]
    fn publish_invalidates_cached_answers() {
        let (serve, r) = serve(&ServeOptions::default());
        let mut h = serve.handle();
        assert!(h.cps().unwrap());
        assert!(h.cps().unwrap());
        // Contradict entity 0's forced order: CPS flips to false.
        let mut delta = SpecDelta::new();
        delta.add_order_edge(r, A, TupleId(1), TupleId(0));
        let report = serve.apply(&delta).unwrap();
        assert_eq!(report.epoch, serve.epoch());
        assert!(!h.cps().unwrap(), "stale cached true must not survive");
        let stats = serve.stats();
        assert_eq!((stats.cache_misses, stats.cache_hits), (2, 1));
        assert_eq!(stats.epoch, report.epoch);
    }

    #[test]
    fn rate_limiter_rejects_beyond_burst() {
        let opts = ServeOptions {
            rate_limit: Some(RateLimit {
                burst: 2,
                per_sec: 0,
            }),
            ..ServeOptions::default()
        };
        let (serve, _) = serve(&opts);
        let mut h = serve.handle();
        assert!(h.cps().is_ok());
        assert!(h.cps().is_ok());
        assert_eq!(h.cps(), Err(ServeError::RateLimited));
        let stats = serve.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rate_limited, 1);
    }

    #[test]
    fn disabled_cache_still_answers_correctly() {
        let opts = ServeOptions {
            cache_capacity: 0,
            ..ServeOptions::default()
        };
        let (serve, r) = serve(&opts);
        let mut h = serve.handle();
        let cop = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
        assert!(h.cop(&cop).unwrap());
        assert!(h.cop(&cop).unwrap());
        let stats = serve.stats();
        assert_eq!((stats.cache_misses, stats.cache_hits), (2, 0));
        assert_eq!(stats.cached_entries, 0);
    }

    #[test]
    fn error_paths_surface_and_display() {
        let (spec, r) = spec();
        let engine = SnapshotEngine::with_value_rels(spec, &[], &Options::default()).unwrap();
        let serve = CurrencyServe::from_engine(engine, &ServeOptions::default());
        let mut h = serve.handle();
        let err = h.dcip(r).unwrap_err();
        assert!(matches!(err, ServeError::Reason(_)));
        assert!(err.to_string().contains("value indicators"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&ServeError::RateLimited).is_none());
        // Errors are not cached: the next identical request re-evaluates.
        assert!(h.dcip(r).is_err());
        assert_eq!(serve.stats().cached_entries, 0);
    }

    #[test]
    fn equal_queries_built_independently_share_one_entry() {
        let (serve, r) = serve(&ServeOptions::default());
        let mut h = serve.handle();
        h.certain_answers(&value_query(r)).unwrap();
        h.certain_answers(&value_query(r)).unwrap();
        let stats = serve.stats();
        assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
    }

    #[test]
    fn zero_timeout_without_stale_is_a_typed_interrupt() {
        let (serve, r) = serve(&ServeOptions::default());
        let mut h = serve.handle();
        let req = ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)));
        let err = h.query_within(&req, Some(Duration::ZERO)).unwrap_err();
        assert!(
            matches!(err, ServeError::Reason(ReasonError::Interrupted { .. })),
            "expired budget surfaces the typed interrupt, got {err:?}"
        );
        let stats = serve.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.stale_served, 0);
        assert_eq!(stats.queries, 0, "rejections are not answered queries");
        // A later unbounded query gets the true verdict: the interrupt
        // cached nothing wrong.
        assert!(h.query_within(&req, None).unwrap().as_bool().unwrap());
    }

    #[test]
    fn timeout_degrades_to_newest_stale_answer() {
        let (serve, r) = serve(&ServeOptions::default());
        let mut h = serve.handle();
        let req = ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)));
        assert_eq!(h.query(&req).unwrap(), ServeAnswer::Bool(true));
        let epoch_then = serve.epoch();
        // Publish a new epoch so the cached answer goes stale.
        let mut delta = SpecDelta::new();
        delta.insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(99)]));
        serve.apply(&delta).unwrap();
        // A zero budget can solve nothing — the stale answer steps in.
        let ans = h.query_within(&req, Some(Duration::ZERO)).unwrap();
        assert!(ans.is_stale());
        assert_eq!(
            ans,
            ServeAnswer::Stale {
                epoch: epoch_then,
                answer: Box::new(ServeAnswer::Bool(true)),
            }
        );
        assert_eq!(ans.as_bool(), Some(true), "as_bool looks through Stale");
        let stats = serve.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.stale_served, 1);
        // With budget restored the fresh verdict is recomputed and cached.
        let fresh = h.query(&req).unwrap();
        assert_eq!(fresh, ServeAnswer::Bool(true));
        assert!(!fresh.is_stale());
    }

    #[test]
    fn breaker_opens_after_consecutive_timeouts_and_probes_shut() {
        let opts = ServeOptions {
            cache_capacity: 0, // no stale reserve: rejects surface
            breaker_threshold: 2,
            breaker_backoff: Duration::from_secs(3600),
            breaker_max_backoff: Duration::from_secs(3600),
            ..ServeOptions::default()
        };
        let (serve, r) = serve(&opts);
        let mut h = serve.handle();
        let req = ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)));
        for _ in 0..2 {
            assert!(matches!(
                h.query_within(&req, Some(Duration::ZERO)).unwrap_err(),
                ServeError::Reason(ReasonError::Interrupted { .. })
            ));
        }
        // Third arrival never reaches a solver: the breaker is open and
        // there is no cache to degrade to.
        assert_eq!(
            h.query_within(&req, Some(Duration::ZERO)).unwrap_err(),
            ServeError::BreakerOpen
        );
        // An unbounded retry is rejected too — the breaker guards the
        // shape, not the budget.
        assert_eq!(
            h.query_within(&req, None).unwrap_err(),
            ServeError::BreakerOpen
        );
        // Other shapes are unaffected.
        assert!(h.cps().unwrap());
        let stats = serve.stats();
        assert_eq!(stats.timeouts, 2);
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.breaker_rejects, 2);
        assert_eq!(stats.breakers_open, 1);
    }

    #[test]
    fn breaker_recovers_through_a_half_open_probe() {
        let opts = ServeOptions {
            cache_capacity: 0,
            breaker_threshold: 1,
            breaker_backoff: Duration::from_millis(1),
            breaker_max_backoff: Duration::from_millis(8),
            ..ServeOptions::default()
        };
        let (serve, r) = serve(&opts);
        let mut h = serve.handle();
        let req = ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)));
        assert!(h.query_within(&req, Some(Duration::ZERO)).is_err());
        assert_eq!(serve.stats().breakers_open, 1);
        std::thread::sleep(Duration::from_millis(3));
        // Backoff elapsed: the next query is the half-open probe; with a
        // real budget it completes and closes the breaker.
        assert!(h.query_within(&req, None).unwrap().as_bool().unwrap());
        let stats = serve.stats();
        assert_eq!(stats.breakers_open, 0);
        assert!(h.query(&req).is_ok(), "shape healthy again");
    }

    #[test]
    fn breaker_rejection_still_degrades_to_stale() {
        let opts = ServeOptions {
            breaker_threshold: 1,
            breaker_backoff: Duration::from_secs(3600),
            breaker_max_backoff: Duration::from_secs(3600),
            ..ServeOptions::default()
        };
        let (serve, r) = serve(&opts);
        let mut h = serve.handle();
        let req = ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)));
        assert_eq!(h.query(&req).unwrap(), ServeAnswer::Bool(true));
        let epoch_then = serve.epoch();
        let mut delta = SpecDelta::new();
        delta.insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(99)]));
        serve.apply(&delta).unwrap();
        // Trip the breaker (timeout degrades to stale already)...
        assert!(h
            .query_within(&req, Some(Duration::ZERO))
            .unwrap()
            .is_stale());
        // ...and while open, requests keep getting the stale answer
        // instead of hard-failing.
        let ans = h.query_within(&req, None).unwrap();
        assert_eq!(
            ans,
            ServeAnswer::Stale {
                epoch: epoch_then,
                answer: Box::new(ServeAnswer::Bool(true)),
            }
        );
        let stats = serve.stats();
        assert_eq!(stats.stale_served, 2);
        assert_eq!(stats.breaker_rejects, 1);
    }

    #[test]
    fn overload_sheds_excess_concurrent_queries() {
        use std::sync::Barrier;
        let opts = ServeOptions {
            cache_capacity: 0, // every query must solve
            max_inflight: 2,
            ..ServeOptions::default()
        };
        let (serve, r) = serve(&opts);
        let threads = 16;
        let rounds = 8;
        let barrier = Barrier::new(threads);
        let shed_or_ok = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let mut h = serve.handle();
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        let mut outcomes = (0u64, 0u64); // (ok, shed)
                        for k in 0..rounds {
                            let pair = ((t + k) % 4) as u32;
                            let req = ServeRequest::Cop(CurrencyOrderQuery::single(
                                r,
                                A,
                                TupleId(pair),
                                TupleId((pair + 1) % 4),
                            ));
                            match h.query(&req) {
                                Ok(_) => outcomes.0 += 1,
                                Err(ServeError::Overloaded) => outcomes.1 += 1,
                                Err(e) => panic!("unexpected error under load: {e}"),
                            }
                        }
                        outcomes
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .fold((0, 0), |acc, o| (acc.0 + o.0, acc.1 + o.1))
        });
        let stats = serve.stats();
        assert_eq!(shed_or_ok.0 + shed_or_ok.1, (threads * rounds) as u64);
        assert_eq!(stats.shed, shed_or_ok.1);
        assert_eq!(stats.inflight, 0, "gauge settles to zero");
        assert!(shed_or_ok.0 > 0, "some queries are served under overload");
    }

    #[test]
    fn default_budget_is_bounded_and_answers_normally() {
        let (serve, r) = serve(&ServeOptions::default());
        assert!(serve.stats().timeouts == 0);
        let mut h = serve.handle();
        // The default 30 s budget is plenty for a 4-tuple spec: answers
        // come back fresh and exact through the bounded path.
        assert!(h.cps().unwrap());
        assert!(h
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)))
            .unwrap());
        assert!(h.dcip(r).unwrap());
        assert_eq!(serve.stats().timeouts, 0);
    }

    #[test]
    fn cache_poison_recovery_surfaces_as_degraded_event() {
        let (serve, _) = serve(&ServeOptions::default());
        let mut h = serve.handle();
        assert!(h.cps().unwrap());
        assert_eq!(serve.stats().degraded_events, 0);
        // Crash a reader under a shard lock; the next query absorbs it.
        for shard in serve.shared.cache.shards() {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock().unwrap();
                panic!("simulated crash under shard lock");
            }));
            assert!(caught.is_err());
        }
        assert!(h.cps().is_ok());
        let stats = serve.stats();
        assert!(stats.degraded_events >= 1, "recovery counted");
    }
}
