//! Metric handles and trace plumbing for the serving layer.
//!
//! Every [`crate::CurrencyServe`] owns one [`ServeObs`]: a
//! [`MetricsRegistry`] holding the serve-side series (latency histograms
//! per query kind, cache hit/miss counters, degradation counters, the
//! epoch-lag gauge) *plus* the writer engine's series — the writer's
//! [`currency_reason::EngineObs`] is re-bound into the same registry at
//! construction, so one scrape shows the whole stack.
//!
//! Rare, structurally interesting moments (breaker transitions,
//! stale-serve degradations) are additionally emitted as structured
//! [`TraceEvent`]s through an attachable [`Recorder`] — the default
//! no-op recorder makes the emission a locked `Arc` clone plus one
//! branch, off the per-query hot path entirely.

use crate::ServeRequest;
use currency_obs::{
    now_ns, Counter, Gauge, Histogram, MetricsRegistry, NoopRecorder, Recorder, TraceEvent,
    TraceKind,
};
use std::sync::{Arc, Mutex, PoisonError};

/// The `query_kind` label values, indexed by [`kind_index`].
pub(crate) const QUERY_KINDS: [&str; 5] = ["cps", "cop", "dcip", "certain_answers", "ccqa"];

/// Which latency series a request records into.
pub(crate) fn kind_index(req: &ServeRequest) -> usize {
    match req {
        ServeRequest::Cps => 0,
        ServeRequest::Cop(_) => 1,
        ServeRequest::Dcip(_) => 2,
        ServeRequest::CertainAnswers(_) => 3,
        ServeRequest::Ccqa(..) => 4,
    }
}

/// One serving stack's metric handles (see module docs).
pub(crate) struct ServeObs {
    registry: Arc<MetricsRegistry>,
    /// Attachable trace sink; behind a mutex because the shared state is
    /// immutable after construction and transitions are rare.
    recorder: Mutex<Arc<dyn Recorder>>,
    /// End-to-end answer latency per query kind (hits, misses, and stale
    /// serves alike — the caller-observed cost).
    pub(crate) latency_ns: [Arc<Histogram>; 5],
    /// Cache hits/misses, labeled `shard="0"`: a sharded front door
    /// re-labels each shard's snapshot with its real index at merge
    /// time, which is what makes per-shard hit rates scrapeable.
    pub(crate) cache_hits: Arc<Counter>,
    pub(crate) cache_misses: Arc<Counter>,
    pub(crate) stale_served: Arc<Counter>,
    pub(crate) shed: Arc<Counter>,
    pub(crate) timeouts: Arc<Counter>,
    pub(crate) rate_limited: Arc<Counter>,
    pub(crate) breaker_trips: Arc<Counter>,
    pub(crate) breaker_rejects: Arc<Counter>,
    /// Epochs between the live snapshot and the newest stale answer
    /// served — how far behind degraded answers are running.
    pub(crate) epoch_lag: Arc<Gauge>,
}

impl ServeObs {
    pub(crate) fn new(registry: Arc<MetricsRegistry>) -> ServeObs {
        let latency_ns = QUERY_KINDS.map(|kind| {
            registry.histogram(
                "currency_serve_latency_ns",
                "End-to-end answer latency (cache hits, solves, and stale serves)",
                &[("query_kind", kind)],
            )
        });
        ServeObs {
            latency_ns,
            cache_hits: registry.counter(
                "currency_serve_cache_hits_total",
                "Queries answered from the epoch-keyed cache at the live epoch",
                &[("shard", "0")],
            ),
            cache_misses: registry.counter(
                "currency_serve_cache_misses_total",
                "Queries that went to a solver",
                &[("shard", "0")],
            ),
            stale_served: registry.counter(
                "currency_serve_stale_served_total",
                "Degraded answers served from an older epoch's cache entry",
                &[],
            ),
            shed: registry.counter(
                "currency_serve_shed_total",
                "Queries shed by the in-flight cap before any solving",
                &[],
            ),
            timeouts: registry.counter(
                "currency_serve_timeouts_total",
                "Solves interrupted by the per-request deadline",
                &[],
            ),
            rate_limited: registry.counter(
                "currency_serve_rate_limited_total",
                "Queries rejected by the rate limiter",
                &[],
            ),
            breaker_trips: registry.counter(
                "currency_serve_breaker_trips_total",
                "Circuit-breaker open transitions (re-opens included)",
                &[],
            ),
            breaker_rejects: registry.counter(
                "currency_serve_breaker_rejects_total",
                "Queries rejected by an open circuit breaker",
                &[],
            ),
            epoch_lag: registry.gauge(
                "currency_serve_epoch_lag",
                "Epochs between the live snapshot and the last stale answer served",
                &[],
            ),
            recorder: Mutex::new(Arc::new(NoopRecorder)),
            registry,
        }
    }

    pub(crate) fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    pub(crate) fn set_recorder(&self, recorder: Arc<dyn Recorder>) {
        *self.recorder.lock().unwrap_or_else(PoisonError::into_inner) = recorder;
    }

    /// Emit a structured trace event (breaker transition, stale serve)
    /// when a recorder is attached and enabled.
    pub(crate) fn event(&self, name: &'static str, value: u64) {
        let recorder = self
            .recorder
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if recorder.enabled() {
            recorder.record(TraceEvent {
                ts_ns: now_ns(),
                kind: TraceKind::Event,
                name,
                span: 0,
                parent: 0,
                value,
            });
        }
    }
}
