//! Completions of partial currency orders, and their consistency checks.

use crate::error::CurrencyError;
use crate::schema::AttrId;
use crate::spec::Specification;
use crate::temporal::TemporalInstance;
use crate::value::{Eid, TupleId};
use std::collections::BTreeMap;

/// A completion of one relation's currency orders: for every attribute and
/// every entity, a total *chain* of the entity's tuples from least to most
/// current.
///
/// Chains are the natural witness format — a total order over `m` tuples is
/// exactly a permutation — and make "the most current tuple" a constant-time
/// lookup (the chain's last element).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelCompletion {
    /// `chains[attr][eid]` = tuples of `eid` from least to most current.
    chains: Vec<BTreeMap<Eid, Vec<TupleId>>>,
    /// `pos[attr][tid]` = position of `tid` within its chain.
    pos: Vec<BTreeMap<TupleId, u32>>,
}

impl RelCompletion {
    /// Build a completion for `inst` from per-attribute, per-entity chains,
    /// validating that every chain is a permutation of the entity's tuples.
    pub fn new(
        inst: &TemporalInstance,
        chains: Vec<BTreeMap<Eid, Vec<TupleId>>>,
    ) -> Result<RelCompletion, CurrencyError> {
        if chains.len() != inst.arity() {
            return Err(CurrencyError::MalformedCompletion {
                detail: format!(
                    "relation {} has {} attributes but {} chains were given",
                    inst.rel_name(),
                    inst.arity(),
                    chains.len()
                ),
            });
        }
        for (attr, per_entity) in chains.iter().enumerate() {
            for (eid, group) in inst.entity_groups() {
                let chain = per_entity.get(&eid).map(|c| c.as_slice()).unwrap_or(&[]);
                let mut sorted = chain.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                let mut expected = group.to_vec();
                expected.sort_unstable();
                if sorted != expected {
                    return Err(CurrencyError::MalformedCompletion {
                        detail: format!(
                            "attribute {attr} chain for entity {eid} is not a permutation of the entity's tuples"
                        ),
                    });
                }
            }
        }
        let pos = chains
            .iter()
            .map(|per_entity| {
                let mut m = BTreeMap::new();
                for chain in per_entity.values() {
                    for (i, &t) in chain.iter().enumerate() {
                        m.insert(t, i as u32);
                    }
                }
                m
            })
            .collect();
        Ok(RelCompletion { chains, pos })
    }

    /// `true` iff `u ≺ᶜ_attr v` — both tuples share an entity and `u` sits
    /// strictly earlier in the chain.
    pub fn precedes(&self, attr: AttrId, u: TupleId, v: TupleId) -> bool {
        match (
            self.pos[attr.index()].get(&u),
            self.pos[attr.index()].get(&v),
        ) {
            (Some(pu), Some(pv)) => pu < pv && self.same_chain(attr, u, v),
            _ => false,
        }
    }

    fn same_chain(&self, attr: AttrId, u: TupleId, v: TupleId) -> bool {
        self.chains[attr.index()]
            .values()
            .any(|c| c.contains(&u) && c.contains(&v))
    }

    /// The chain (least → most current) of an entity for an attribute.
    pub fn chain(&self, attr: AttrId, eid: Eid) -> &[TupleId] {
        self.chains[attr.index()]
            .get(&eid)
            .map(|c| c.as_slice())
            .unwrap_or(&[])
    }

    /// The most current tuple of an entity for an attribute.
    pub fn last(&self, attr: AttrId, eid: Eid) -> Option<TupleId> {
        self.chain(attr, eid).last().copied()
    }

    /// Number of attributes covered.
    pub fn arity(&self) -> usize {
        self.chains.len()
    }
}

/// A completion of an entire specification: one [`RelCompletion`] per
/// relation, in catalog order.
///
/// `Completion` is a *candidate* element of `Mod(S)`;
/// [`Completion::is_consistent_for`] checks the three membership
/// conditions of paper §2: extension of the initial orders, satisfaction of
/// the denial constraints, and ≺-compatibility of every copy function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    rels: Vec<RelCompletion>,
}

impl Completion {
    /// Bundle per-relation completions (must follow catalog order).
    pub fn new(rels: Vec<RelCompletion>) -> Completion {
        Completion { rels }
    }

    /// The completion of one relation.
    pub fn rel(&self, rel: crate::schema::RelId) -> &RelCompletion {
        &self.rels[rel.index()]
    }

    /// Per-relation completions, in catalog order.
    pub fn rels(&self) -> &[RelCompletion] {
        &self.rels
    }

    /// Condition (1): every initial order pair appears in the completion.
    pub fn extends_initial_orders(&self, spec: &Specification) -> bool {
        spec.instances().iter().all(|inst| {
            let rc = &self.rels[inst.rel().index()];
            (0..inst.arity()).all(|a| {
                let attr = AttrId(a as u32);
                inst.order(attr)
                    .iter()
                    .all(|(u, v)| rc.precedes(attr, u, v))
            })
        })
    }

    /// Condition (2): every denial constraint is satisfied.
    pub fn satisfies_constraints(&self, spec: &Specification) -> bool {
        spec.constraints().iter().all(|dc| {
            let inst = spec.instance(dc.rel());
            let rc = &self.rels[dc.rel().index()];
            dc.satisfied_by(inst, &|attr, u, v| rc.precedes(attr, u, v))
        })
    }

    /// Condition (3): every copy function is ≺-compatible.
    pub fn copy_compatible(&self, spec: &Specification) -> bool {
        spec.copies().iter().all(|cf| {
            let sig = cf.signature();
            let target = spec.instance(sig.target);
            let source = spec.instance(sig.source);
            let src_rc = &self.rels[sig.source.index()];
            let tgt_rc = &self.rels[sig.target.index()];
            cf.compatible_with(
                target,
                source,
                &|attr, u, v| src_rc.precedes(attr, u, v),
                &|attr, u, v| tgt_rc.precedes(attr, u, v),
            )
        })
    }

    /// Full `Mod(S)` membership check.
    pub fn is_consistent_for(&self, spec: &Specification) -> bool {
        self.extends_initial_orders(spec)
            && self.satisfies_constraints(spec)
            && self.copy_compatible(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::denial::{CmpOp, DenialConstraint, Term};
    use crate::instance::Tuple;
    use crate::schema::{Catalog, RelId, RelationSchema};
    use crate::value::Value;

    const A: AttrId = AttrId(0);

    /// One relation R(A), entity 1 with two tuples valued 10 and 20.
    fn spec_two_tuples() -> (Specification, TupleId, TupleId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(10)]))
            .unwrap();
        let t1 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(20)]))
            .unwrap();
        (spec, t0, t1)
    }

    fn completion_with_chain(spec: &Specification, chain: Vec<TupleId>) -> Completion {
        let inst = spec.instance(RelId(0));
        let mut per_entity = BTreeMap::new();
        per_entity.insert(Eid(1), chain);
        Completion::new(vec![RelCompletion::new(inst, vec![per_entity]).unwrap()])
    }

    #[test]
    fn chain_validation_rejects_non_permutations() {
        let (spec, t0, _) = spec_two_tuples();
        let inst = spec.instance(RelId(0));
        let mut short = BTreeMap::new();
        short.insert(Eid(1), vec![t0]);
        assert!(matches!(
            RelCompletion::new(inst, vec![short]),
            Err(CurrencyError::MalformedCompletion { .. })
        ));
        assert!(matches!(
            RelCompletion::new(inst, vec![]),
            Err(CurrencyError::MalformedCompletion { .. })
        ));
    }

    #[test]
    fn precedes_follows_chain_positions() {
        let (spec, t0, t1) = spec_two_tuples();
        let c = completion_with_chain(&spec, vec![t0, t1]);
        let rc = c.rel(RelId(0));
        assert!(rc.precedes(A, t0, t1));
        assert!(!rc.precedes(A, t1, t0));
        assert!(!rc.precedes(A, t0, t0));
        assert_eq!(rc.last(A, Eid(1)), Some(t1));
        assert_eq!(rc.last(A, Eid(9)), None);
    }

    #[test]
    fn extension_of_initial_orders() {
        let (mut spec, t0, t1) = spec_two_tuples();
        spec.instance_mut(RelId(0)).add_order(A, t1, t0).unwrap();
        let respects = completion_with_chain(&spec, vec![t1, t0]);
        let violates = completion_with_chain(&spec, vec![t0, t1]);
        assert!(respects.extends_initial_orders(&spec));
        assert!(!violates.extends_initial_orders(&spec));
    }

    #[test]
    fn constraint_satisfaction() {
        let (mut spec, t0, t1) = spec_two_tuples();
        // Higher A ⇒ more current in A: forces t0 ≺ t1 (10 < 20).
        let dc = DenialConstraint::builder(RelId(0), 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        assert!(completion_with_chain(&spec, vec![t0, t1]).satisfies_constraints(&spec));
        assert!(!completion_with_chain(&spec, vec![t1, t0]).satisfies_constraints(&spec));
    }

    #[test]
    fn full_consistency_check() {
        let (mut spec, t0, t1) = spec_two_tuples();
        let dc = DenialConstraint::builder(RelId(0), 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        let good = completion_with_chain(&spec, vec![t0, t1]);
        assert!(good.is_consistent_for(&spec));
        let bad = completion_with_chain(&spec, vec![t1, t0]);
        assert!(!bad.is_consistent_for(&spec));
    }
}
