//! Strict partial orders over tuple ids, and linear-extension machinery.
//!
//! A currency order `≺_A` is a strict partial order over the tuples of a
//! temporal instance in which only same-entity tuples are comparable.  This
//! module stores orders as explicit pair sets and provides the closure,
//! cycle-detection and linear-extension operations that the completion
//! semantics (paper §2) and the PTIME fixpoint algorithm (paper Theorem
//! 6.1) are built from.

use crate::value::TupleId;
use std::collections::{BTreeMap, BTreeSet};

/// A binary relation over tuple ids, interpreted as "lesser ≺ greater"
/// (the right component is *more current*).
///
/// The stored pair set is not automatically transitively closed; call
/// [`OrderRelation::transitive_closure`] to materialize the closure.  An
/// order is *valid* if its closure is irreflexive (equivalently: acyclic).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OrderRelation {
    pairs: BTreeSet<(TupleId, TupleId)>,
}

impl OrderRelation {
    /// Create an empty order.
    pub fn new() -> OrderRelation {
        OrderRelation::default()
    }

    /// Record `lesser ≺ greater`.  Returns `true` if the pair is new.
    pub fn add(&mut self, lesser: TupleId, greater: TupleId) -> bool {
        self.pairs.insert((lesser, greater))
    }

    /// `true` iff the pair `lesser ≺ greater` is stored (no closure).
    pub fn contains(&self, lesser: TupleId, greater: TupleId) -> bool {
        self.pairs.contains(&(lesser, greater))
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` if no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate over the stored `(lesser, greater)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, TupleId)> + '_ {
        self.pairs.iter().copied()
    }

    /// Iterate over the stored pairs whose *lesser* side is `lesser`.
    ///
    /// A range scan over the ordered pair set — the per-entity encoding
    /// passes use this to collect one tuple's outgoing edges without
    /// walking the whole relation's order.
    pub fn pairs_from(&self, lesser: TupleId) -> impl Iterator<Item = (TupleId, TupleId)> + '_ {
        self.pairs
            .range((lesser, TupleId(u32::MIN))..=(lesser, TupleId(u32::MAX)))
            .copied()
    }

    /// Remove the pair `lesser ≺ greater`.  Returns `true` if it was stored.
    pub fn remove(&mut self, lesser: TupleId, greater: TupleId) -> bool {
        self.pairs.remove(&(lesser, greater))
    }

    /// Remove every pair mentioning `t` (on either side).  Returns the
    /// number of pairs dropped.  Used when a tuple is removed from its
    /// instance: its order facts go with it.
    pub fn remove_involving(&mut self, t: TupleId) -> usize {
        let before = self.pairs.len();
        self.pairs.retain(|&(a, b)| a != t && b != t);
        before - self.pairs.len()
    }

    /// `true` iff every pair of `self` appears in `other` (⊆ on raw pairs).
    pub fn subset_of(&self, other: &OrderRelation) -> bool {
        self.pairs.is_subset(&other.pairs)
    }

    /// Rewrite every stored id through a translation table (old id →
    /// new id), as produced by [`crate::TemporalInstance::compact`].
    /// Every stored id must survive the remap — removal already sheds a
    /// tuple's pairs, so a compacting instance never holds dead ids here.
    pub fn remap(&mut self, remap: &[Option<TupleId>]) {
        self.pairs = std::mem::take(&mut self.pairs)
            .into_iter()
            .map(|(a, b)| {
                (
                    remap[a.index()].expect("ordered ids are live"),
                    remap[b.index()].expect("ordered ids are live"),
                )
            })
            .collect();
    }

    /// The transitive closure, as a new relation.
    ///
    /// Worklist algorithm over successor/predecessor maps; output size is
    /// O(n²) in the number of tuples per entity, which is small by
    /// construction (it is the number of stale versions of one entity).
    pub fn transitive_closure(&self) -> OrderRelation {
        let mut succ: BTreeMap<TupleId, BTreeSet<TupleId>> = BTreeMap::new();
        for &(a, b) in &self.pairs {
            succ.entry(a).or_default().insert(b);
        }
        let mut closed = self.pairs.clone();
        let mut work: Vec<(TupleId, TupleId)> = self.pairs.iter().copied().collect();
        while let Some((a, b)) = work.pop() {
            // a ≺ b and b ≺ c gives a ≺ c.
            if let Some(cs) = succ.get(&b) {
                let new: Vec<TupleId> = cs
                    .iter()
                    .copied()
                    .filter(|&c| closed.insert((a, c)))
                    .collect();
                for c in new {
                    succ.entry(a).or_default().insert(c);
                    work.push((a, c));
                }
            }
        }
        OrderRelation { pairs: closed }
    }

    /// A tuple on a cycle of the closure, if any (`None` means acyclic).
    ///
    /// A strict order's closure must be irreflexive; a pair `(t, t)` or a
    /// mutual pair `(u, v), (v, u)` witnesses inconsistency.
    pub fn find_cycle(&self) -> Option<TupleId> {
        let closed = self.transitive_closure();
        for &(a, b) in &closed.pairs {
            if a == b {
                return Some(a);
            }
            if closed.pairs.contains(&(b, a)) {
                return Some(a);
            }
        }
        None
    }

    /// `true` iff the closure is a strict partial order (irreflexive).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Restrict to pairs whose both endpoints belong to `members`.
    pub fn restrict_to(&self, members: &[TupleId]) -> OrderRelation {
        let set: BTreeSet<TupleId> = members.iter().copied().collect();
        OrderRelation {
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|(a, b)| set.contains(a) && set.contains(b))
                .collect(),
        }
    }

    /// Merge another relation's pairs into this one.
    pub fn extend_from(&mut self, other: &OrderRelation) {
        self.pairs.extend(other.pairs.iter().copied());
    }

    /// The *sinks* among `members`: tuples with no successor inside
    /// `members` under the stored pairs.
    ///
    /// In the PTIME algorithms of paper §6, the sinks of the certain order
    /// `PO∞` restricted to one entity are exactly the tuples that can be
    /// the most current one in some consistent completion.
    pub fn sinks(&self, members: &[TupleId]) -> Vec<TupleId> {
        let set: BTreeSet<TupleId> = members.iter().copied().collect();
        members
            .iter()
            .copied()
            .filter(|&m| {
                !self
                    .pairs
                    .iter()
                    .any(|&(a, b)| a == m && b != m && set.contains(&b))
            })
            .collect()
    }
}

impl FromIterator<(TupleId, TupleId)> for OrderRelation {
    fn from_iter<I: IntoIterator<Item = (TupleId, TupleId)>>(iter: I) -> OrderRelation {
        OrderRelation {
            pairs: iter.into_iter().collect(),
        }
    }
}

/// All linear extensions of the partial order `pairs` over `elems`.
///
/// Each returned vector lists `elems` from least to most current.  The
/// enumeration is the standard backtracking over currently-minimal
/// elements; intended for the small per-entity groups of this model (the
/// count is factorial in `elems.len()` in the worst case).
pub fn linear_extensions(elems: &[TupleId], order: &OrderRelation) -> Vec<Vec<TupleId>> {
    let closed = order.restrict_to(elems).transitive_closure();
    if closed.find_cycle().is_some() {
        return Vec::new();
    }
    // predecessor counts within the group
    let mut preds: BTreeMap<TupleId, usize> = elems.iter().map(|&e| (e, 0)).collect();
    for (a, b) in closed.iter() {
        if a != b && preds.contains_key(&a) {
            if let Some(c) = preds.get_mut(&b) {
                *c += 1;
            }
            let _ = a;
        }
    }
    let mut result = Vec::new();
    let mut prefix: Vec<TupleId> = Vec::with_capacity(elems.len());
    let mut remaining: BTreeSet<TupleId> = elems.iter().copied().collect();
    backtrack(
        &closed,
        &mut preds,
        &mut remaining,
        &mut prefix,
        &mut result,
    );
    result
}

fn backtrack(
    closed: &OrderRelation,
    preds: &mut BTreeMap<TupleId, usize>,
    remaining: &mut BTreeSet<TupleId>,
    prefix: &mut Vec<TupleId>,
    out: &mut Vec<Vec<TupleId>>,
) {
    if remaining.is_empty() {
        out.push(prefix.clone());
        return;
    }
    let candidates: Vec<TupleId> = remaining
        .iter()
        .copied()
        .filter(|t| preds[t] == 0)
        .collect();
    for t in candidates {
        // Choose t as the next (least current remaining) element.
        remaining.remove(&t);
        prefix.push(t);
        let succs: Vec<TupleId> = remaining
            .iter()
            .copied()
            .filter(|&u| closed.contains(t, u))
            .collect();
        for &u in &succs {
            *preds.get_mut(&u).expect("successor tracked") -= 1;
        }
        backtrack(closed, preds, remaining, prefix, out);
        for &u in &succs {
            *preds.get_mut(&u).expect("successor tracked") += 1;
        }
        prefix.pop();
        remaining.insert(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TupleId {
        TupleId(i)
    }

    #[test]
    fn closure_adds_transitive_pairs() {
        let mut o = OrderRelation::new();
        o.add(t(0), t(1));
        o.add(t(1), t(2));
        let c = o.transitive_closure();
        assert!(c.contains(t(0), t(2)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn closure_of_chain_is_quadratic() {
        let mut o = OrderRelation::new();
        for i in 0..5 {
            o.add(t(i), t(i + 1));
        }
        let c = o.transitive_closure();
        assert_eq!(c.len(), 6 * 5 / 2);
        assert!(c.contains(t(0), t(5)));
    }

    #[test]
    fn cycle_detection() {
        let mut o = OrderRelation::new();
        o.add(t(0), t(1));
        o.add(t(1), t(2));
        assert!(o.is_acyclic());
        o.add(t(2), t(0));
        assert!(!o.is_acyclic());
        assert!(o.find_cycle().is_some());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut o = OrderRelation::new();
        o.add(t(3), t(3));
        assert_eq!(o.find_cycle(), Some(t(3)));
    }

    #[test]
    fn restrict_drops_outside_pairs() {
        let mut o = OrderRelation::new();
        o.add(t(0), t(1));
        o.add(t(1), t(2));
        let r = o.restrict_to(&[t(0), t(1)]);
        assert!(r.contains(t(0), t(1)));
        assert!(!r.contains(t(1), t(2)));
    }

    #[test]
    fn sinks_of_partial_order() {
        let mut o = OrderRelation::new();
        o.add(t(0), t(1));
        o.add(t(0), t(2));
        // 1 and 2 are incomparable maxima; 0 is below both.
        assert_eq!(o.sinks(&[t(0), t(1), t(2)]), vec![t(1), t(2)]);
        assert_eq!(o.sinks(&[t(0)]), vec![t(0)]);
    }

    #[test]
    fn empty_order_sinks_are_all_members() {
        let o = OrderRelation::new();
        assert_eq!(o.sinks(&[t(4), t(7)]), vec![t(4), t(7)]);
    }

    #[test]
    fn linear_extensions_of_empty_order_are_permutations() {
        let elems = [t(0), t(1), t(2)];
        let exts = linear_extensions(&elems, &OrderRelation::new());
        assert_eq!(exts.len(), 6);
    }

    #[test]
    fn linear_extensions_respect_constraints() {
        let elems = [t(0), t(1), t(2)];
        let mut o = OrderRelation::new();
        o.add(t(0), t(1));
        let exts = linear_extensions(&elems, &o);
        assert_eq!(exts.len(), 3);
        for e in &exts {
            let p0 = e.iter().position(|&x| x == t(0)).unwrap();
            let p1 = e.iter().position(|&x| x == t(1)).unwrap();
            assert!(p0 < p1);
        }
    }

    #[test]
    fn linear_extensions_of_total_order_is_unique() {
        let elems = [t(0), t(1), t(2)];
        let mut o = OrderRelation::new();
        o.add(t(0), t(1));
        o.add(t(1), t(2));
        let exts = linear_extensions(&elems, &o);
        assert_eq!(exts, vec![vec![t(0), t(1), t(2)]]);
    }

    #[test]
    fn linear_extensions_of_cyclic_order_is_empty() {
        let elems = [t(0), t(1)];
        let mut o = OrderRelation::new();
        o.add(t(0), t(1));
        o.add(t(1), t(0));
        assert!(linear_extensions(&elems, &o).is_empty());
    }

    #[test]
    fn subset_and_extend() {
        let mut a = OrderRelation::new();
        a.add(t(0), t(1));
        let mut b = OrderRelation::new();
        b.add(t(0), t(1));
        b.add(t(1), t(2));
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        a.extend_from(&b);
        assert!(b.subset_of(&a));
    }
}
