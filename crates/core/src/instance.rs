//! Tuples and normal (plain, order-free) instances.

use crate::schema::{AttrId, RelId};
use crate::value::{Eid, Value};
use std::fmt;

/// A tuple: an entity id plus one value per proper attribute.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    /// The entity this tuple describes.
    pub eid: Eid,
    /// Values of the proper attributes, in schema order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Construct a tuple.
    pub fn new(eid: Eid, values: Vec<Value>) -> Tuple {
        Tuple { eid, values }
    }

    /// The value of attribute `attr`.
    pub fn value(&self, attr: AttrId) -> &Value {
        &self.values[attr.index()]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.eid)?;
        for v in &self.values {
            write!(f, ", {v}")?;
        }
        write!(f, ")")
    }
}

/// A *normal instance*: a plain finite relation with no currency orders.
///
/// Current instances (`LST(Dᶜ)` in the paper) are normal instances; queries
/// are evaluated over them.  The paper uses set semantics, so equality of
/// normal instances ([`NormalInstance::set_eq`]) ignores duplicates and
/// ordering.
#[derive(Clone, Debug)]
pub struct NormalInstance {
    rel: RelId,
    tuples: Vec<Tuple>,
}

impl NormalInstance {
    /// Create an empty instance of the given relation.
    pub fn new(rel: RelId) -> NormalInstance {
        NormalInstance {
            rel,
            tuples: Vec::new(),
        }
    }

    /// The relation this instance populates.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// Append a tuple (no set-semantics dedup; see [`NormalInstance::set_eq`]).
    pub fn push(&mut self, t: Tuple) {
        self.tuples.push(t);
    }

    /// Number of stored tuples (duplicates included).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over the stored tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Membership under set semantics.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.iter().any(|u| u == t)
    }

    /// The tuples sorted and deduplicated — the canonical set form.
    pub fn normalized(&self) -> Vec<Tuple> {
        let mut ts = self.tuples.clone();
        ts.sort();
        ts.dedup();
        ts
    }

    /// Set-semantics equality: same relation, same set of tuples.
    pub fn set_eq(&self, other: &NormalInstance) -> bool {
        self.rel == other.rel && self.normalized() == other.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(eid: u64, vals: &[i64]) -> Tuple {
        Tuple::new(Eid(eid), vals.iter().map(|&v| Value::int(v)).collect())
    }

    #[test]
    fn tuple_value_access() {
        let tup = t(1, &[10, 20]);
        assert_eq!(tup.value(AttrId(0)), &Value::int(10));
        assert_eq!(tup.value(AttrId(1)), &Value::int(20));
        assert_eq!(tup.eid, Eid(1));
    }

    #[test]
    fn instance_push_and_contains() {
        let mut inst = NormalInstance::new(RelId(0));
        assert!(inst.is_empty());
        inst.push(t(1, &[5]));
        inst.push(t(2, &[6]));
        assert_eq!(inst.len(), 2);
        assert!(inst.contains(&t(1, &[5])));
        assert!(!inst.contains(&t(1, &[6])));
    }

    #[test]
    fn set_equality_ignores_order_and_duplicates() {
        let mut a = NormalInstance::new(RelId(0));
        a.push(t(1, &[5]));
        a.push(t(2, &[6]));
        a.push(t(1, &[5])); // duplicate
        let mut b = NormalInstance::new(RelId(0));
        b.push(t(2, &[6]));
        b.push(t(1, &[5]));
        assert!(a.set_eq(&b));
        let mut c = NormalInstance::new(RelId(1));
        c.push(t(2, &[6]));
        c.push(t(1, &[5]));
        assert!(!a.set_eq(&c), "different relations are never set-equal");
    }

    #[test]
    fn normalized_is_sorted_and_deduped() {
        let mut a = NormalInstance::new(RelId(0));
        a.push(t(2, &[6]));
        a.push(t(1, &[5]));
        a.push(t(2, &[6]));
        let n = a.normalized();
        assert_eq!(n.len(), 2);
        assert!(n[0] <= n[1]);
    }

    #[test]
    fn debug_rendering_mentions_entity() {
        let s = format!("{:?}", t(3, &[1]));
        assert!(s.contains("e3"));
    }
}
