//! Stable binary wire codec for model types.
//!
//! The durability layer (`currency-store`) persists specifications as
//! snapshots and update streams as logged [`SpecDelta`]s.  Both need a
//! byte representation that is **stable across builds** (no `derive`d
//! hashing, no platform-dependent layouts) and **self-validating** on the
//! way back in — a corrupted or truncated buffer must surface as a
//! [`WireError`], never as a panic or a silently wrong model object.
//! This module is that representation, hand-rolled with no external
//! dependencies (the same offline discipline as the shim crates):
//!
//! * [`WireWriter`] / [`WireReader`] — little-endian primitives with
//!   bounds-checked reads;
//! * [`encode_spec`] / [`decode_spec`] — a whole [`Specification`]:
//!   catalog, instances (tuple slots with tombstone flags, initial
//!   currency orders), denial constraints, copy functions;
//! * [`encode_delta`] / [`decode_delta`] — every [`DeltaOp`] kind, with
//!   explicit wire tags;
//! * [`encode_compact_report`] / [`decode_compact_report`] — the
//!   translation tables a compaction produces, logged so post-compaction
//!   replay stays id-correct.
//!
//! ## Stability contract
//!
//! Every enum crossing the wire (value kinds, comparison operators,
//! predicate/term/delta-op kinds) is encoded through an **explicit tag
//! byte** assigned here, never through `as`-casts of source-order
//! discriminants — reordering a Rust enum cannot silently change the
//! format.  [`WIRE_VERSION`] names the format; containers (snapshot and
//! log headers in `currency-store`) persist it and refuse files from a
//! different version.
//!
//! Decoding reconstructs objects through the same validating constructors
//! the live API uses (`push_tuple`, `add_order`, `add_constraint`,
//! `add_copy`, the [`SpecDelta`] builder), so a decoded specification
//! upholds every model invariant or fails with the underlying
//! [`CurrencyError`] — the codec cannot be used to smuggle in states the
//! API would reject.  Encoding is deterministic: one model state has
//! exactly one byte representation, which lets the recovery tests compare
//! specifications by comparing encodings.

use crate::copy::{CopyFunction, CopySignature};
use crate::delta::{DeltaOp, SpecDelta};
use crate::denial::{CmpOp, DenialConstraint, Predicate, Term};
use crate::error::CurrencyError;
use crate::instance::Tuple;
use crate::schema::{AttrId, Catalog, RelId, RelationSchema};
use crate::spec::{CompactReport, CompactSlice, CompactStepReport, Specification};
use crate::value::{Eid, TupleId, Value};
use std::fmt;

/// Version of the wire format produced by this module.  Bump on any
/// layout change; containers persist it and reject mismatches.
pub const WIRE_VERSION: u32 = 1;

/// A decoding failure: the buffer is truncated, malformed, or encodes a
/// model state the validating constructors reject.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended inside the named field.
    UnexpectedEof {
        /// What was being read.
        what: &'static str,
    },
    /// An enum tag byte had no assigned meaning.
    BadTag {
        /// The enum being read.
        what: &'static str,
        /// The unassigned tag.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8 {
        /// What was being read.
        what: &'static str,
    },
    /// Decoding finished with bytes left over.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The decoded object violates a model invariant.
    Model(CurrencyError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { what } => {
                write!(f, "wire buffer truncated while reading {what}")
            }
            WireError::BadTag { what, tag } => {
                write!(f, "unknown wire tag {tag} for {what}")
            }
            WireError::BadUtf8 { what } => write!(f, "invalid UTF-8 in {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete wire object")
            }
            WireError::Model(e) => write!(f, "decoded object violates a model invariant: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CurrencyError> for WireError {
    fn from(e: CurrencyError) -> WireError {
        WireError::Model(e)
    }
}

/// Little-endian byte-buffer writer (see module docs).
#[derive(Clone, Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Finish, handing back the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a boolean as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Append a collection length (as `u64`).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append raw bytes with no framing (callers frame themselves).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Clone, Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail with [`WireError::TrailingBytes`] unless fully consumed.
    pub fn expect_empty(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self, what: &'static str) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a boolean byte (strict: only `0`/`1` are accepted, so a
    /// corrupted flag surfaces instead of collapsing to `true`).
    pub fn get_bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what, tag }),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.get_len(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { what })
    }

    /// Read a collection length, bounds-checked against the bytes left
    /// (every element costs at least one byte, so a length beyond
    /// `remaining()` is corrupt — this keeps garbage lengths from turning
    /// into huge allocations).
    pub fn get_len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let v = self.get_u64(what)?;
        if v > self.remaining() as u64 {
            return Err(WireError::UnexpectedEof { what });
        }
        Ok(v as usize)
    }
}

// ---------------------------------------------------------------------
// Wire tags (explicit; see the module-level stability contract).
// ---------------------------------------------------------------------

const TAG_VALUE_BOOL: u8 = 0;
const TAG_VALUE_INT: u8 = 1;
const TAG_VALUE_STR: u8 = 2;
const TAG_VALUE_FRESH: u8 = 3;

const TAG_TERM_ATTR: u8 = 0;
const TAG_TERM_CONST: u8 = 1;

const TAG_CMP_EQ: u8 = 0;
const TAG_CMP_NE: u8 = 1;
const TAG_CMP_LT: u8 = 2;
const TAG_CMP_LE: u8 = 3;
const TAG_CMP_GT: u8 = 4;
const TAG_CMP_GE: u8 = 5;

const TAG_PRED_ORDER: u8 = 0;
const TAG_PRED_CMP: u8 = 1;

const TAG_OP_INSERT: u8 = 0;
const TAG_OP_REMOVE: u8 = 1;
const TAG_OP_ORDER_EDGE: u8 = 2;
const TAG_OP_CONSTRAINT: u8 = 3;
const TAG_OP_ADD_COPY: u8 = 4;
const TAG_OP_EXTEND_COPY: u8 = 5;

// ---------------------------------------------------------------------
// Leaf encoders/decoders.
// ---------------------------------------------------------------------

fn put_value(w: &mut WireWriter, v: &Value) {
    match v {
        Value::Bool(b) => {
            w.put_u8(TAG_VALUE_BOOL);
            w.put_bool(*b);
        }
        Value::Int(i) => {
            w.put_u8(TAG_VALUE_INT);
            w.put_i64(*i);
        }
        Value::Str(s) => {
            w.put_u8(TAG_VALUE_STR);
            w.put_str(s);
        }
        Value::Fresh(n) => {
            w.put_u8(TAG_VALUE_FRESH);
            w.put_u64(*n);
        }
    }
}

fn get_value(r: &mut WireReader<'_>) -> Result<Value, WireError> {
    match r.get_u8("value tag")? {
        TAG_VALUE_BOOL => Ok(Value::Bool(r.get_bool("bool value")?)),
        TAG_VALUE_INT => Ok(Value::Int(r.get_i64("int value")?)),
        TAG_VALUE_STR => Ok(Value::Str(r.get_str("str value")?)),
        TAG_VALUE_FRESH => Ok(Value::Fresh(r.get_u64("fresh value")?)),
        tag => Err(WireError::BadTag { what: "value", tag }),
    }
}

fn put_tuple(w: &mut WireWriter, t: &Tuple) {
    w.put_u64(t.eid.0);
    w.put_len(t.values.len());
    for v in &t.values {
        put_value(w, v);
    }
}

fn get_tuple(r: &mut WireReader<'_>) -> Result<Tuple, WireError> {
    let eid = Eid(r.get_u64("tuple eid")?);
    let n = r.get_len("tuple arity")?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_value(r)?);
    }
    Ok(Tuple::new(eid, values))
}

fn put_term(w: &mut WireWriter, t: &Term) {
    match t {
        Term::Attr(var, attr) => {
            w.put_u8(TAG_TERM_ATTR);
            w.put_u64(*var as u64);
            w.put_u32(attr.0);
        }
        Term::Const(v) => {
            w.put_u8(TAG_TERM_CONST);
            put_value(w, v);
        }
    }
}

fn get_term(r: &mut WireReader<'_>) -> Result<Term, WireError> {
    match r.get_u8("term tag")? {
        TAG_TERM_ATTR => {
            let var = r.get_u64("term variable")? as usize;
            let attr = AttrId(r.get_u32("term attribute")?);
            Ok(Term::Attr(var, attr))
        }
        TAG_TERM_CONST => Ok(Term::Const(get_value(r)?)),
        tag => Err(WireError::BadTag { what: "term", tag }),
    }
}

fn put_cmp_op(w: &mut WireWriter, op: CmpOp) {
    w.put_u8(match op {
        CmpOp::Eq => TAG_CMP_EQ,
        CmpOp::Ne => TAG_CMP_NE,
        CmpOp::Lt => TAG_CMP_LT,
        CmpOp::Le => TAG_CMP_LE,
        CmpOp::Gt => TAG_CMP_GT,
        CmpOp::Ge => TAG_CMP_GE,
    });
}

fn get_cmp_op(r: &mut WireReader<'_>) -> Result<CmpOp, WireError> {
    match r.get_u8("comparison operator")? {
        TAG_CMP_EQ => Ok(CmpOp::Eq),
        TAG_CMP_NE => Ok(CmpOp::Ne),
        TAG_CMP_LT => Ok(CmpOp::Lt),
        TAG_CMP_LE => Ok(CmpOp::Le),
        TAG_CMP_GT => Ok(CmpOp::Gt),
        TAG_CMP_GE => Ok(CmpOp::Ge),
        tag => Err(WireError::BadTag {
            what: "comparison operator",
            tag,
        }),
    }
}

fn put_constraint(w: &mut WireWriter, dc: &DenialConstraint) {
    w.put_u32(dc.rel().0);
    w.put_u64(dc.num_vars() as u64);
    w.put_len(dc.premises().len());
    for p in dc.premises() {
        match p {
            Predicate::Order {
                lesser,
                attr,
                greater,
            } => {
                w.put_u8(TAG_PRED_ORDER);
                w.put_u64(*lesser as u64);
                w.put_u32(attr.0);
                w.put_u64(*greater as u64);
            }
            Predicate::Cmp { left, op, right } => {
                w.put_u8(TAG_PRED_CMP);
                put_term(w, left);
                put_cmp_op(w, *op);
                put_term(w, right);
            }
        }
    }
    let (lesser, attr, greater) = dc.conclusion();
    w.put_u64(lesser as u64);
    w.put_u32(attr.0);
    w.put_u64(greater as u64);
}

fn get_constraint(r: &mut WireReader<'_>) -> Result<DenialConstraint, WireError> {
    let rel = RelId(r.get_u32("constraint relation")?);
    let num_vars = r.get_u64("constraint variable count")? as usize;
    let mut b = DenialConstraint::builder(rel, num_vars);
    let n = r.get_len("constraint premise count")?;
    for _ in 0..n {
        match r.get_u8("predicate tag")? {
            TAG_PRED_ORDER => {
                let lesser = r.get_u64("order premise lesser")? as usize;
                let attr = AttrId(r.get_u32("order premise attribute")?);
                let greater = r.get_u64("order premise greater")? as usize;
                b = b.when_order(lesser, attr, greater);
            }
            TAG_PRED_CMP => {
                let left = get_term(r)?;
                let op = get_cmp_op(r)?;
                let right = get_term(r)?;
                b = b.when_cmp(left, op, right);
            }
            tag => {
                return Err(WireError::BadTag {
                    what: "predicate",
                    tag,
                })
            }
        }
    }
    let lesser = r.get_u64("conclusion lesser")? as usize;
    let attr = AttrId(r.get_u32("conclusion attribute")?);
    let greater = r.get_u64("conclusion greater")? as usize;
    Ok(b.then_order(lesser, attr, greater).build()?)
}

fn put_signature(w: &mut WireWriter, sig: &CopySignature) {
    w.put_u32(sig.target.0);
    w.put_u32(sig.source.0);
    w.put_len(sig.target_attrs.len());
    for a in &sig.target_attrs {
        w.put_u32(a.0);
    }
    for a in &sig.source_attrs {
        w.put_u32(a.0);
    }
}

fn get_signature(r: &mut WireReader<'_>) -> Result<CopySignature, WireError> {
    let target = RelId(r.get_u32("signature target")?);
    let source = RelId(r.get_u32("signature source")?);
    let width = r.get_len("signature width")?;
    let mut target_attrs = Vec::with_capacity(width);
    for _ in 0..width {
        target_attrs.push(AttrId(r.get_u32("signature target attribute")?));
    }
    let mut source_attrs = Vec::with_capacity(width);
    for _ in 0..width {
        source_attrs.push(AttrId(r.get_u32("signature source attribute")?));
    }
    Ok(CopySignature::new(
        target,
        target_attrs,
        source,
        source_attrs,
    )?)
}

fn put_copy(w: &mut WireWriter, cf: &CopyFunction) {
    put_signature(w, cf.signature());
    w.put_len(cf.len());
    for (t, s) in cf.mappings() {
        w.put_u32(t.0);
        w.put_u32(s.0);
    }
}

fn get_copy(r: &mut WireReader<'_>) -> Result<CopyFunction, WireError> {
    let sig = get_signature(r)?;
    let mut cf = CopyFunction::new(sig);
    let n = r.get_len("copy mapping count")?;
    for _ in 0..n {
        let t = TupleId(r.get_u32("mapping target")?);
        let s = TupleId(r.get_u32("mapping source")?);
        cf.set_mapping(t, s);
    }
    Ok(cf)
}

// ---------------------------------------------------------------------
// Specification.
// ---------------------------------------------------------------------

/// Encode a whole specification (see module docs for the layout).
pub fn encode_spec(spec: &Specification) -> Vec<u8> {
    let mut w = WireWriter::new();
    // Catalog.
    w.put_len(spec.catalog().len());
    for (_, schema) in spec.catalog().iter() {
        w.put_str(schema.name());
        w.put_len(schema.arity());
        for (_, name) in schema.attrs() {
            w.put_str(name);
        }
    }
    // Instances: tuple slots (live + tombstoned, so ids survive the round
    // trip), then the per-attribute initial orders.
    for inst in spec.instances() {
        w.put_len(inst.len());
        for i in 0..inst.len() {
            let id = TupleId(i as u32);
            put_tuple(&mut w, inst.tuple(id));
            w.put_bool(inst.is_live(id));
        }
        for a in 0..inst.arity() {
            let order = inst.order(AttrId(a as u32));
            w.put_len(order.len());
            for (l, g) in order.iter() {
                w.put_u32(l.0);
                w.put_u32(g.0);
            }
        }
    }
    // Constraints and copies.
    w.put_len(spec.constraints().len());
    for dc in spec.constraints() {
        put_constraint(&mut w, dc);
    }
    w.put_len(spec.copies().len());
    for cf in spec.copies() {
        put_copy(&mut w, cf);
    }
    w.into_bytes()
}

/// Decode a specification, re-validating every model invariant (the
/// inverse of [`encode_spec`]; rejects trailing bytes).
pub fn decode_spec(bytes: &[u8]) -> Result<Specification, WireError> {
    let mut r = WireReader::new(bytes);
    let spec = decode_spec_from(&mut r)?;
    r.expect_empty()?;
    Ok(spec)
}

/// Decode a specification from a reader, leaving any following bytes
/// unconsumed (for callers embedding a spec in a larger frame).
pub fn decode_spec_from(r: &mut WireReader<'_>) -> Result<Specification, WireError> {
    let nrels = r.get_len("catalog size")?;
    let mut cat = Catalog::new();
    for _ in 0..nrels {
        let name = r.get_str("relation name")?;
        let arity = r.get_len("relation arity")?;
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            attrs.push(r.get_str("attribute name")?);
        }
        let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        cat.add_checked(RelationSchema::new(name, &attr_refs))?;
    }
    let rels: Vec<RelId> = cat.iter().map(|(rel, _)| rel).collect();
    let arities: Vec<usize> = cat.iter().map(|(_, s)| s.arity()).collect();
    let mut spec = Specification::new(cat);
    for (&rel, &arity) in rels.iter().zip(&arities) {
        let slots = r.get_len("instance slot count")?;
        let mut dead: Vec<TupleId> = Vec::new();
        for _ in 0..slots {
            let tuple = get_tuple(r)?;
            let live = r.get_bool("tuple liveness")?;
            let id = spec.instance_mut(rel).push_tuple(tuple)?;
            if !live {
                dead.push(id);
            }
        }
        for id in dead {
            spec.instance_mut(rel)
                .remove_tuple(id)
                .expect("freshly pushed slot");
        }
        for a in 0..arity {
            let attr = AttrId(a as u32);
            let npairs = r.get_len("order pair count")?;
            for _ in 0..npairs {
                let l = TupleId(r.get_u32("order lesser")?);
                let g = TupleId(r.get_u32("order greater")?);
                spec.instance_mut(rel).add_order(attr, l, g)?;
            }
        }
    }
    let ncons = r.get_len("constraint count")?;
    for _ in 0..ncons {
        let dc = get_constraint(r)?;
        spec.add_constraint(dc)?;
    }
    let ncopies = r.get_len("copy count")?;
    for _ in 0..ncopies {
        let cf = get_copy(r)?;
        spec.add_copy(cf)?;
    }
    spec.validate()?;
    Ok(spec)
}

// ---------------------------------------------------------------------
// SpecDelta.
// ---------------------------------------------------------------------

/// Encode a delta as its operation list, each op behind an explicit tag.
pub fn encode_delta(delta: &SpecDelta) -> Vec<u8> {
    let mut w = WireWriter::new();
    put_delta(&mut w, delta);
    w.into_bytes()
}

/// Encode a delta into an existing writer (for framed containers).
pub fn put_delta(w: &mut WireWriter, delta: &SpecDelta) {
    w.put_len(delta.len());
    for op in delta.ops() {
        match op {
            DeltaOp::InsertTuple { rel, tuple } => {
                w.put_u8(TAG_OP_INSERT);
                w.put_u32(rel.0);
                put_tuple(w, tuple);
            }
            DeltaOp::RemoveTuple { rel, tuple } => {
                w.put_u8(TAG_OP_REMOVE);
                w.put_u32(rel.0);
                w.put_u32(tuple.0);
            }
            DeltaOp::AddOrderEdge {
                rel,
                attr,
                lesser,
                greater,
            } => {
                w.put_u8(TAG_OP_ORDER_EDGE);
                w.put_u32(rel.0);
                w.put_u32(attr.0);
                w.put_u32(lesser.0);
                w.put_u32(greater.0);
            }
            DeltaOp::AddConstraint(dc) => {
                w.put_u8(TAG_OP_CONSTRAINT);
                put_constraint(w, dc);
            }
            DeltaOp::AddCopy(cf) => {
                w.put_u8(TAG_OP_ADD_COPY);
                put_copy(w, cf);
            }
            DeltaOp::ExtendCopy {
                copy,
                target,
                source,
            } => {
                w.put_u8(TAG_OP_EXTEND_COPY);
                w.put_u64(*copy as u64);
                w.put_u32(target.0);
                w.put_u32(source.0);
            }
        }
    }
}

/// Decode a delta (the inverse of [`encode_delta`]; rejects trailing
/// bytes).
pub fn decode_delta(bytes: &[u8]) -> Result<SpecDelta, WireError> {
    let mut r = WireReader::new(bytes);
    let delta = get_delta(&mut r)?;
    r.expect_empty()?;
    Ok(delta)
}

/// Decode a delta from a reader, leaving following bytes unconsumed.
pub fn get_delta(r: &mut WireReader<'_>) -> Result<SpecDelta, WireError> {
    let n = r.get_len("delta op count")?;
    let mut delta = SpecDelta::new();
    for _ in 0..n {
        match r.get_u8("delta op tag")? {
            TAG_OP_INSERT => {
                let rel = RelId(r.get_u32("insert relation")?);
                let tuple = get_tuple(r)?;
                delta.insert_tuple(rel, tuple);
            }
            TAG_OP_REMOVE => {
                let rel = RelId(r.get_u32("remove relation")?);
                let tuple = TupleId(r.get_u32("remove tuple")?);
                delta.remove_tuple(rel, tuple);
            }
            TAG_OP_ORDER_EDGE => {
                let rel = RelId(r.get_u32("edge relation")?);
                let attr = AttrId(r.get_u32("edge attribute")?);
                let lesser = TupleId(r.get_u32("edge lesser")?);
                let greater = TupleId(r.get_u32("edge greater")?);
                delta.add_order_edge(rel, attr, lesser, greater);
            }
            TAG_OP_CONSTRAINT => {
                delta.add_constraint(get_constraint(r)?);
            }
            TAG_OP_ADD_COPY => {
                delta.add_copy(get_copy(r)?);
            }
            TAG_OP_EXTEND_COPY => {
                let copy = r.get_u64("extend-copy index")? as usize;
                let target = TupleId(r.get_u32("extend-copy target")?);
                let source = TupleId(r.get_u32("extend-copy source")?);
                delta.extend_copy(copy, target, source);
            }
            tag => {
                return Err(WireError::BadTag {
                    what: "delta op",
                    tag,
                })
            }
        }
    }
    Ok(delta)
}

// ---------------------------------------------------------------------
// CompactReport.
// ---------------------------------------------------------------------

/// Encode a compaction report's translation tables.
pub fn encode_compact_report(report: &CompactReport) -> Vec<u8> {
    let mut w = WireWriter::new();
    put_compact_report(&mut w, report);
    w.into_bytes()
}

/// Encode a compaction report into an existing writer.
pub fn put_compact_report(w: &mut WireWriter, report: &CompactReport) {
    w.put_u64(report.reclaimed as u64);
    w.put_len(report.remap.len());
    for table in &report.remap {
        w.put_len(table.len());
        for entry in table {
            match entry {
                Some(id) => {
                    w.put_bool(true);
                    w.put_u32(id.0);
                }
                None => w.put_bool(false),
            }
        }
    }
}

/// Decode a compaction report (rejects trailing bytes).
pub fn decode_compact_report(bytes: &[u8]) -> Result<CompactReport, WireError> {
    let mut r = WireReader::new(bytes);
    let report = get_compact_report(&mut r)?;
    r.expect_empty()?;
    Ok(report)
}

/// Decode a compaction report from a reader.
pub fn get_compact_report(r: &mut WireReader<'_>) -> Result<CompactReport, WireError> {
    let reclaimed = r.get_u64("reclaimed count")? as usize;
    let nrels = r.get_len("remap table count")?;
    let mut remap = Vec::with_capacity(nrels);
    for _ in 0..nrels {
        let n = r.get_len("remap table length")?;
        let mut table = Vec::with_capacity(n);
        for _ in 0..n {
            let present = r.get_bool("remap entry presence")?;
            table.push(if present {
                Some(TupleId(r.get_u32("remap entry")?))
            } else {
                None
            });
        }
        remap.push(table);
    }
    Ok(CompactReport { reclaimed, remap })
}

// ---------------------------------------------------------------------
// CompactStepReport (incremental-compaction slices).
// ---------------------------------------------------------------------

/// Encode one incremental-compaction slice into an existing writer.
pub fn put_compact_slice(w: &mut WireWriter, slice: &CompactSlice) {
    w.put_u32(slice.rel.0);
    w.put_u32(slice.write);
    w.put_u32(slice.start);
    w.put_u32(slice.end);
    w.put_u32(slice.reclaimed);
    w.put_len(slice.remap.len());
    for entry in &slice.remap {
        match entry {
            Some(id) => {
                w.put_bool(true);
                w.put_u32(id.0);
            }
            None => w.put_bool(false),
        }
    }
}

/// Decode one incremental-compaction slice from a reader.
pub fn get_compact_slice(r: &mut WireReader<'_>) -> Result<CompactSlice, WireError> {
    let rel = RelId(r.get_u32("slice relation")?);
    let write = r.get_u32("slice write cursor")?;
    let start = r.get_u32("slice scan start")?;
    let end = r.get_u32("slice scan end")?;
    let reclaimed = r.get_u32("slice reclaimed count")?;
    let n = r.get_len("slice remap length")?;
    let mut remap = Vec::with_capacity(n);
    for _ in 0..n {
        let present = r.get_bool("slice remap entry presence")?;
        remap.push(if present {
            Some(TupleId(r.get_u32("slice remap entry")?))
        } else {
            None
        });
    }
    Ok(CompactSlice {
        rel,
        write,
        start,
        end,
        remap,
        reclaimed,
    })
}

/// Encode a compaction step report (slice list) as a byte payload.
pub fn encode_compact_step(step: &CompactStepReport) -> Vec<u8> {
    let mut w = WireWriter::new();
    put_compact_step(&mut w, step);
    w.into_bytes()
}

/// Encode a compaction step report into an existing writer.
pub fn put_compact_step(w: &mut WireWriter, step: &CompactStepReport) {
    w.put_u64(step.reclaimed as u64);
    w.put_bool(step.done);
    w.put_len(step.slices.len());
    for slice in &step.slices {
        put_compact_slice(w, slice);
    }
}

/// Decode a compaction step report (rejects trailing bytes).
pub fn decode_compact_step(bytes: &[u8]) -> Result<CompactStepReport, WireError> {
    let mut r = WireReader::new(bytes);
    let step = get_compact_step(&mut r)?;
    r.expect_empty()?;
    Ok(step)
}

/// Decode a compaction step report from a reader.
pub fn get_compact_step(r: &mut WireReader<'_>) -> Result<CompactStepReport, WireError> {
    let reclaimed = r.get_u64("step reclaimed count")? as usize;
    let done = r.get_bool("step done flag")?;
    let n = r.get_len("step slice count")?;
    let mut slices = Vec::with_capacity(n);
    for _ in 0..n {
        slices.push(get_compact_slice(r)?);
    }
    Ok(CompactStepReport {
        reclaimed,
        done,
        slices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::denial::{CmpOp, Term};
    use crate::schema::RelationSchema;

    const A: AttrId = AttrId(0);

    /// A specification exercising every wire construct: two relations,
    /// tombstones, initial orders, a constraint with both premise kinds
    /// and every value kind, and a copy function.
    fn rich_spec() -> Specification {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A", "B"]));
        let s = cat.add(RelationSchema::new("Src", &["A", "B"]));
        let mut spec = Specification::new(cat);
        let mk =
            |e: u64, a: i64| Tuple::new(Eid(e), vec![Value::int(a), Value::Str(format!("v{a}"))]);
        let t0 = spec.instance_mut(r).push_tuple(mk(1, 10)).unwrap();
        let t1 = spec.instance_mut(r).push_tuple(mk(1, 20)).unwrap();
        let dead = spec.instance_mut(r).push_tuple(mk(2, 5)).unwrap();
        let t3 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(3), vec![Value::bool(true), Value::Fresh(7)]))
            .unwrap();
        let _ = t3;
        spec.instance_mut(r).add_order(A, t0, t1).unwrap();
        spec.instance_mut(r).remove_tuple(dead).unwrap();
        let s0 = spec.instance_mut(s).push_tuple(mk(9, 10)).unwrap();
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .when_order(0, AttrId(1), 1)
            .when_cmp(Term::attr(0, AttrId(1)), CmpOp::Ne, Term::val("x"))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        let sig = CopySignature::new(r, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(t0, s0);
        spec.add_copy(cf).unwrap();
        spec
    }

    #[test]
    fn spec_round_trip_is_byte_identical() {
        let spec = rich_spec();
        let bytes = encode_spec(&spec);
        let decoded = decode_spec(&bytes).expect("valid encoding");
        assert_eq!(encode_spec(&decoded), bytes, "round trip is a fixpoint");
        assert!(decoded.validate().is_ok());
        // Structure survived: tombstone, order, constraint, copy.
        let r = decoded.rel("R").unwrap();
        assert_eq!(decoded.instance(r).len(), 4);
        assert_eq!(decoded.instance(r).live_len(), 3);
        assert!(decoded
            .instance(r)
            .order(A)
            .contains(TupleId(0), TupleId(1)));
        assert_eq!(decoded.constraints().len(), 1);
        assert_eq!(decoded.copies()[0].mapping(TupleId(0)), Some(TupleId(0)));
        assert!(
            decoded.copies()[0].is_indexed(),
            "add_copy rebuilt the index"
        );
    }

    #[test]
    fn delta_round_trip_covers_every_op_kind() {
        let spec = rich_spec();
        let r = spec.rel("R").unwrap();
        let s = spec.rel("Src").unwrap();
        let dc = spec.constraints()[0].clone();
        let sig = CopySignature::new(r, vec![AttrId(1)], s, vec![AttrId(1)]).unwrap();
        let mut delta = SpecDelta::new();
        delta
            .insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(30), Value::str("z")]))
            .remove_tuple(r, TupleId(0))
            .add_order_edge(r, A, TupleId(0), TupleId(1))
            .add_constraint(dc)
            .add_copy(CopyFunction::new(sig))
            .extend_copy(1, TupleId(1), TupleId(0));
        let bytes = encode_delta(&delta);
        let decoded = decode_delta(&bytes).expect("valid encoding");
        assert_eq!(decoded.len(), delta.len());
        assert_eq!(encode_delta(&decoded), bytes, "round trip is a fixpoint");
    }

    #[test]
    fn applying_a_decoded_delta_matches_the_original() {
        // The semantic check: original delta and its round-tripped twin
        // drive two copies of one spec to identical states.
        let mut a = rich_spec();
        let mut b = rich_spec();
        let r = a.rel("R").unwrap();
        let mut delta = SpecDelta::new();
        delta
            .insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(30), Value::str("z")]))
            .remove_tuple(r, TupleId(1));
        let twin = decode_delta(&encode_delta(&delta)).unwrap();
        a.apply_delta(&delta).unwrap();
        b.apply_delta(&twin).unwrap();
        assert_eq!(encode_spec(&a), encode_spec(&b));
    }

    #[test]
    fn compact_report_round_trip() {
        let mut spec = rich_spec();
        let report = spec.compact();
        assert_eq!(report.reclaimed, 1);
        let decoded = decode_compact_report(&encode_compact_report(&report)).unwrap();
        assert_eq!(decoded.reclaimed, report.reclaimed);
        assert_eq!(decoded.remap, report.remap);
        // Identity report (no tombstones) round-trips too.
        let empty = spec.compact();
        let decoded = decode_compact_report(&encode_compact_report(&empty)).unwrap();
        assert_eq!(decoded.reclaimed, 0);
        assert!(decoded.remap.iter().all(|t| t.is_empty()));
    }

    #[test]
    fn truncation_and_garbage_error_cleanly() {
        let spec = rich_spec();
        let bytes = encode_spec(&spec);
        // Every proper prefix fails with a clean error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                decode_spec(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_spec(&padded),
            Err(WireError::TrailingBytes { .. })
        ));
        // A bad enum tag is named.
        let delta_bytes = {
            let mut delta = SpecDelta::new();
            delta.remove_tuple(RelId(0), TupleId(0));
            encode_delta(&delta)
        };
        let mut bad = delta_bytes.clone();
        bad[8] = 250; // the op tag byte after the u64 length
        assert!(matches!(
            decode_delta(&bad),
            Err(WireError::BadTag {
                what: "delta op",
                tag: 250
            })
        ));
    }

    #[test]
    fn decoded_specs_revalidate_model_invariants() {
        // Hand-craft an encoding of a cyclic order: decode must refuse it
        // through the model's own validation, not accept it silently.
        let mut w = WireWriter::new();
        w.put_len(1); // one relation
        w.put_str("R");
        w.put_len(1);
        w.put_str("A");
        w.put_len(2); // two tuple slots
        for v in [1i64, 2] {
            w.put_u64(1); // eid
            w.put_len(1);
            put_value(&mut w, &Value::int(v));
            w.put_bool(true);
        }
        w.put_len(2); // two order pairs: 0≺1 and 1≺0 (a cycle)
        w.put_u32(0);
        w.put_u32(1);
        w.put_u32(1);
        w.put_u32(0);
        w.put_len(0); // constraints
        w.put_len(0); // copies
        let err = decode_spec(w.bytes()).unwrap_err();
        assert!(matches!(
            err,
            WireError::Model(CurrencyError::CyclicOrder { .. })
        ));
    }

    #[test]
    fn lengths_are_bounds_checked_against_remaining_bytes() {
        // A garbage length field (e.g. u64::MAX) must error, not allocate.
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let mut r = WireReader::new(w.bytes());
        assert!(matches!(
            r.get_len("catalog size"),
            Err(WireError::UnexpectedEof { .. })
        ));
    }
}
