//! Human-readable rendering of model objects.
//!
//! Specifications carry four kinds of information (data, orders,
//! constraints, copy functions); debugging a currency analysis means
//! looking at all four.  [`render_spec`] produces the aligned-table text
//! form used by the examples and error reports:
//!
//! ```text
//! Emp(EID, FN, LN, address, salary, status)
//!   t0 [e1] Mary | Smith  | 2 Small St | 50 | single
//!   t1 [e1] Mary | Dupont | 10 Elm Ave | 50 | married
//!   orders: salary: t0 ≺ t1
//! ```

use crate::instance::NormalInstance;
use crate::schema::{AttrId, RelationSchema};
use crate::spec::Specification;
use crate::temporal::TemporalInstance;
use std::fmt::Write as _;

/// Render a normal instance as an aligned table.
pub fn render_instance(schema: &RelationSchema, inst: &NormalInstance) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for t in inst.iter() {
        let mut row = vec![format!("[{}]", t.eid)];
        row.extend(t.values.iter().map(|v| v.to_string()));
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("EID".to_string())
        .chain(schema.attrs().map(|(_, n)| n.to_string()))
        .collect();
    let mut out = format!("{schema}\n");
    render_rows(&mut out, &header, &rows);
    out
}

/// Render a temporal instance: the data table plus the recorded partial
/// currency orders.
pub fn render_temporal(schema: &RelationSchema, inst: &TemporalInstance) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (id, t) in inst.tuples() {
        let mut row = vec![format!("{id} [{}]", t.eid)];
        row.extend(t.values.iter().map(|v| v.to_string()));
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("tuple".to_string())
        .chain(schema.attrs().map(|(_, n)| n.to_string()))
        .collect();
    let mut out = format!("{schema}\n");
    render_rows(&mut out, &header, &rows);
    let mut any = false;
    for a in 0..inst.arity() {
        let attr = AttrId(a as u32);
        let order = inst.order(attr);
        if order.is_empty() {
            continue;
        }
        if !any {
            out.push_str("  orders:\n");
            any = true;
        }
        let pairs: Vec<String> = order.iter().map(|(l, g)| format!("{l} ≺ {g}")).collect();
        let _ = writeln!(out, "    {}: {}", schema.attr_name(attr), pairs.join(", "));
    }
    out
}

/// Render a full specification: every temporal instance, the constraint
/// count per relation, and the copy functions with their mappings.
pub fn render_spec(spec: &Specification) -> String {
    let mut out = String::new();
    for inst in spec.instances() {
        let schema = spec.catalog().schema(inst.rel());
        out.push_str(&render_temporal(schema, inst));
        let n_constraints = spec.constraints_for(inst.rel()).count();
        if n_constraints > 0 {
            let _ = writeln!(out, "  denial constraints: {n_constraints}");
        }
        out.push('\n');
    }
    for (i, cf) in spec.copies().iter().enumerate() {
        let sig = cf.signature();
        let t_schema = spec.catalog().schema(sig.target);
        let s_schema = spec.catalog().schema(sig.source);
        let t_attrs: Vec<&str> = sig
            .target_attrs
            .iter()
            .map(|&a| t_schema.attr_name(a))
            .collect();
        let s_attrs: Vec<&str> = sig
            .source_attrs
            .iter()
            .map(|&a| s_schema.attr_name(a))
            .collect();
        let _ = writeln!(
            out,
            "ρ{} : {}[{}] ⇐ {}[{}]",
            i,
            t_schema.name(),
            t_attrs.join(", "),
            s_schema.name(),
            s_attrs.join(", ")
        );
        for (t, s) in cf.mappings() {
            let _ = writeln!(out, "    {t} ⇐ {s}");
        }
    }
    out
}

fn render_rows(out: &mut String, header: &[String], rows: &[Vec<String>]) {
    // Column widths over header + rows.
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let render_line = |cells: &[String]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let pad = widths.get(i).copied().unwrap_or(0);
                format!("{c:<pad$}")
            })
            .collect();
        format!("  {}", padded.join(" | "))
    };
    let _ = writeln!(out, "{}", render_line(header));
    for row in rows {
        let _ = writeln!(out, "{}", render_line(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Catalog, RelId};
    use crate::value::{Eid, Value};
    use crate::Tuple;

    fn sample_spec() -> Specification {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("Emp", &["name", "salary"]));
        let s = cat.add(RelationSchema::new("Src", &["name", "salary"]));
        let mut spec = Specification::new(cat);
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::str("Mary"), Value::int(50)]))
            .unwrap();
        let t1 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::str("Mary"), Value::int(80)]))
            .unwrap();
        spec.instance_mut(r).add_order(AttrId(1), t0, t1).unwrap();
        let sid = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::str("Mary"), Value::int(80)]))
            .unwrap();
        let sig =
            crate::CopySignature::new(r, vec![AttrId(0), AttrId(1)], s, vec![AttrId(0), AttrId(1)])
                .unwrap();
        let mut cf = crate::CopyFunction::new(sig);
        cf.set_mapping(t1, sid);
        spec.add_copy(cf).unwrap();
        spec
    }

    #[test]
    fn instance_rendering_contains_data_and_header() {
        let spec = sample_spec();
        let schema = spec.catalog().schema(RelId(0));
        let text = render_instance(schema, &spec.instance(RelId(0)).as_normal());
        assert!(text.contains("Emp(EID, name, salary)"));
        assert!(text.contains("Mary"));
        assert!(text.contains("80"));
        assert!(text.contains("EID"));
    }

    #[test]
    fn temporal_rendering_lists_orders() {
        let spec = sample_spec();
        let schema = spec.catalog().schema(RelId(0));
        let text = render_temporal(schema, spec.instance(RelId(0)));
        assert!(text.contains("orders:"));
        assert!(text.contains("salary: t0 ≺ t1"));
    }

    #[test]
    fn spec_rendering_lists_copy_functions() {
        let spec = sample_spec();
        let text = render_spec(&spec);
        assert!(text.contains("ρ0 : Emp[name, salary] ⇐ Src[name, salary]"));
        assert!(text.contains("t1 ⇐ t0"));
    }

    #[test]
    fn columns_are_aligned() {
        let spec = sample_spec();
        let schema = spec.catalog().schema(RelId(0));
        let text = render_instance(schema, &spec.instance(RelId(0)).as_normal());
        // All data lines must have the separator at the same offset.
        let offsets: Vec<usize> = text
            .lines()
            .skip(1)
            .filter(|l| l.contains('|'))
            .map(|l| l.find('|').expect("separator"))
            .collect();
        assert!(offsets.windows(2).all(|w| w[0] == w[1]), "{text}");
    }
}
