//! Specification deltas: validated, atomic batches of updates.
//!
//! The paper's setting is inherently dynamic — tuples arrive, currency
//! orders are extended, copy functions import more data — yet every
//! reasoner consumes a frozen [`Specification`].  A [`SpecDelta`] is the
//! bridge: a batch of update operations that is **validated against the
//! current specification first** and applied only if every operation is
//! admissible, so a failed delta leaves the specification untouched.
//!
//! Supported operations:
//!
//! * [`SpecDelta::insert_tuples`] — append tuples (ids are assigned
//!   densely, reported through [`DeltaEffects::inserted`]);
//! * [`SpecDelta::remove_tuples`] — tombstone tuples
//!   ([`crate::TemporalInstance::remove_tuple`]); copy-function mappings
//!   whose endpoint vanishes are cascaded away;
//! * [`SpecDelta::add_order_edges`] — extend an initial currency order
//!   (rejected if the result would be cyclic);
//! * [`SpecDelta::add_constraint`] — attach a new denial constraint;
//! * [`SpecDelta::add_copy`] / [`SpecDelta::extend_copy`] — attach a new
//!   copy function, or record additional copied tuples on an existing one
//!   (the paper's §4 copy-function *extensions*, which create new
//!   ≺-compatibility obligations).
//!
//! The relation catalog is fixed at specification creation; deltas update
//! instances, constraints and copies, not schemas.
//!
//! [`Specification::apply_delta`] returns the [`DeltaEffects`]: the
//! `(relation, entity)` cells whose semantics the delta may have changed.
//! Incremental consumers (the reasoning engine's component cache) use the
//! touched-cell set to invalidate only the affected part of their state.

use crate::copy::CopyFunction;
use crate::denial::DenialConstraint;
use crate::error::CurrencyError;
use crate::instance::Tuple;
use crate::schema::{AttrId, RelId};
use crate::spec::Specification;
use crate::value::{Eid, TupleId};
use std::collections::{BTreeMap, BTreeSet};

/// One update operation (see [`SpecDelta`]'s builder methods).
#[derive(Clone, Debug)]
pub enum DeltaOp {
    /// Append a tuple to a relation.
    InsertTuple {
        /// Target relation.
        rel: RelId,
        /// The tuple to append.
        tuple: Tuple,
    },
    /// Tombstone a tuple (and cascade copy mappings referencing it).
    RemoveTuple {
        /// Relation owning the tuple.
        rel: RelId,
        /// The tuple to remove.
        tuple: TupleId,
    },
    /// Record the initial currency fact `lesser ≺_attr greater`.
    AddOrderEdge {
        /// Relation owning the tuples.
        rel: RelId,
        /// Attribute of the currency order.
        attr: AttrId,
        /// The less-current tuple.
        lesser: TupleId,
        /// The more-current tuple.
        greater: TupleId,
    },
    /// Attach a denial constraint.
    AddConstraint(DenialConstraint),
    /// Attach a new copy function.
    AddCopy(CopyFunction),
    /// Record `ρ(target) = source` on an existing copy function.
    ExtendCopy {
        /// Index of the copy function within the specification (existing
        /// copies first, then [`DeltaOp::AddCopy`] operations of this
        /// delta in order).
        copy: usize,
        /// Target tuple.
        target: TupleId,
        /// Source tuple.
        source: TupleId,
    },
}

/// A batch of specification updates, applied atomically by
/// [`Specification::apply_delta`].
///
/// Builder methods append operations and return `&mut Self` for chaining:
///
/// ```
/// use currency_core::*;
///
/// let mut catalog = Catalog::new();
/// let r = catalog.add(RelationSchema::new("R", &["A"]));
/// let mut spec = Specification::new(catalog);
/// let t0 = spec.instance_mut(r)
///     .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
///     .unwrap();
///
/// let mut delta = SpecDelta::new();
/// delta
///     .insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(2)]))
///     .add_order_edge(r, AttrId(0), t0, TupleId(1));
/// let effects = spec.apply_delta(&delta).unwrap();
/// assert_eq!(effects.inserted, vec![(r, TupleId(1))]);
/// assert!(effects.touched_cells.contains(&(r, Eid(1))));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SpecDelta {
    ops: Vec<DeltaOp>,
}

impl SpecDelta {
    /// An empty delta.
    pub fn new() -> SpecDelta {
        SpecDelta::default()
    }

    /// The operations, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the delta carries no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append one tuple insertion.
    pub fn insert_tuple(&mut self, rel: RelId, tuple: Tuple) -> &mut Self {
        self.ops.push(DeltaOp::InsertTuple { rel, tuple });
        self
    }

    /// Append tuple insertions.
    pub fn insert_tuples(
        &mut self,
        rel: RelId,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> &mut Self {
        for tuple in tuples {
            self.insert_tuple(rel, tuple);
        }
        self
    }

    /// Append one tuple removal.
    pub fn remove_tuple(&mut self, rel: RelId, tuple: TupleId) -> &mut Self {
        self.ops.push(DeltaOp::RemoveTuple { rel, tuple });
        self
    }

    /// Append tuple removals.
    pub fn remove_tuples(
        &mut self,
        rel: RelId,
        tuples: impl IntoIterator<Item = TupleId>,
    ) -> &mut Self {
        for tuple in tuples {
            self.remove_tuple(rel, tuple);
        }
        self
    }

    /// Append one initial-order edge.
    pub fn add_order_edge(
        &mut self,
        rel: RelId,
        attr: AttrId,
        lesser: TupleId,
        greater: TupleId,
    ) -> &mut Self {
        self.ops.push(DeltaOp::AddOrderEdge {
            rel,
            attr,
            lesser,
            greater,
        });
        self
    }

    /// Append initial-order edges `(attr, lesser, greater)`.
    pub fn add_order_edges(
        &mut self,
        rel: RelId,
        edges: impl IntoIterator<Item = (AttrId, TupleId, TupleId)>,
    ) -> &mut Self {
        for (attr, lesser, greater) in edges {
            self.add_order_edge(rel, attr, lesser, greater);
        }
        self
    }

    /// Append a denial constraint.
    pub fn add_constraint(&mut self, dc: DenialConstraint) -> &mut Self {
        self.ops.push(DeltaOp::AddConstraint(dc));
        self
    }

    /// Append a new copy function.
    pub fn add_copy(&mut self, cf: CopyFunction) -> &mut Self {
        self.ops.push(DeltaOp::AddCopy(cf));
        self
    }

    /// Record `ρ(target) = source` on the `copy`-th copy function (new
    /// ≺-compatibility obligations follow; the copying condition is
    /// checked on application).
    pub fn extend_copy(&mut self, copy: usize, target: TupleId, source: TupleId) -> &mut Self {
        self.ops.push(DeltaOp::ExtendCopy {
            copy,
            target,
            source,
        });
        self
    }

    /// Check the delta's admissibility against `spec` without mutating
    /// anything — exactly the validation phase of
    /// [`Specification::apply_delta`].  Callers that must pay to obtain a
    /// mutable specification (e.g. an engine promoting a borrowed `Cow`)
    /// validate first so a rejected delta costs no copy.
    pub fn validate(&self, spec: &Specification) -> Result<(), CurrencyError> {
        let mut sim = Sim::new(spec);
        for op in self.ops() {
            sim.step(op)?;
        }
        sim.check_acyclic()
    }

    /// Classify how this delta routes in an entity-sharded deployment,
    /// **before** applying it — see [`DeltaRouting`].
    ///
    /// The classifier is specification-free so a sharded front door can
    /// route without holding a global specification: `copy_rels` lists
    /// the `(target, source)` relations of the existing copy functions
    /// (for resolving [`DeltaOp::ExtendCopy`] indices), and `eid_of`
    /// resolves an existing tuple reference to its entity (returning
    /// `None` for unknown ids, which surfaces as
    /// [`CurrencyError::UnknownTuple`]).  Tuples inserted by this same
    /// delta anchor at their own entity directly and are never passed to
    /// `eid_of`; operations referencing *earlier inserts of the same
    /// delta* by id, however, must be resolvable by `eid_of` (the caller
    /// knows its id-assignment rule), or the delta is reported unknown.
    pub fn routing<F>(
        &self,
        copy_rels: &[(RelId, RelId)],
        mut eid_of: F,
    ) -> Result<DeltaRouting, CurrencyError>
    where
        F: FnMut(RelId, TupleId) -> Option<Eid>,
    {
        let mut eids = BTreeSet::new();
        let mut anchored = 0usize;
        let mut broadcasts = 0usize;
        // Copies appended by this delta, continuing `copy_rels`' indices.
        let mut added: Vec<(RelId, RelId)> = Vec::new();
        for op in self.ops() {
            match op {
                DeltaOp::InsertTuple { tuple, .. } => {
                    anchored += 1;
                    eids.insert(tuple.eid);
                }
                DeltaOp::RemoveTuple { rel, tuple } => {
                    anchored += 1;
                    let eid = eid_of(*rel, *tuple).ok_or(CurrencyError::UnknownTuple {
                        rel: *rel,
                        tuple: *tuple,
                    })?;
                    eids.insert(eid);
                }
                DeltaOp::AddOrderEdge {
                    rel,
                    lesser,
                    greater,
                    ..
                } => {
                    anchored += 1;
                    for id in [*lesser, *greater] {
                        let eid = eid_of(*rel, id).ok_or(CurrencyError::UnknownTuple {
                            rel: *rel,
                            tuple: id,
                        })?;
                        eids.insert(eid);
                    }
                }
                // Constraints ground entity-locally and a new copy
                // function's mapping set is filtered per shard, so both
                // are structure updates every shard must see.  (The
                // mappings' per-pair co-location is a *placement* check,
                // done where shard ownership is known — not here.)
                DeltaOp::AddConstraint(_) => broadcasts += 1,
                DeltaOp::AddCopy(cf) => {
                    broadcasts += 1;
                    let sig = cf.signature();
                    added.push((sig.target, sig.source));
                }
                DeltaOp::ExtendCopy {
                    copy,
                    target,
                    source,
                } => {
                    anchored += 1;
                    let (target_rel, source_rel) = copy_rels
                        .get(*copy)
                        .or_else(|| added.get(copy.wrapping_sub(copy_rels.len())))
                        .copied()
                        .ok_or(CurrencyError::UnknownCopy { copy: *copy })?;
                    for (rel, id) in [(target_rel, *target), (source_rel, *source)] {
                        let eid = eid_of(rel, id)
                            .ok_or(CurrencyError::UnknownTuple { rel, tuple: id })?;
                        eids.insert(eid);
                    }
                }
            }
        }
        Ok(match (anchored, broadcasts) {
            (0, 0) => DeltaRouting::Empty,
            (_, 0) => DeltaRouting::Entities(eids),
            (0, _) => DeltaRouting::Broadcast,
            _ => DeltaRouting::Mixed(eids),
        })
    }
}

/// How a delta routes in an entity-sharded deployment (computed by
/// [`SpecDelta::routing`] before application, and reported after the
/// fact through [`DeltaEffects::routing`]).
///
/// Ground rules are entity-local — only copy obligations relate
/// different entities — so a shard is a self-contained sub-specification
/// and every delta falls into one of four classes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum DeltaRouting {
    /// No operations: a no-op anywhere.
    #[default]
    Empty,
    /// Every operation anchors at one of these entities.  A sharded
    /// deployment routes the delta to the shard owning them — and
    /// rejects (or splits) the delta if they span shards.
    Entities(BTreeSet<Eid>),
    /// Structure only (denial constraints and/or new copy functions):
    /// valid on — and required by — every shard.
    Broadcast,
    /// Mixes broadcast-class structure with entity-anchored operations.
    /// Sharded deployments reject these; split the delta instead.
    Mixed(BTreeSet<Eid>),
}

/// What a successfully applied delta changed (see
/// [`Specification::apply_delta`]).
#[derive(Clone, Debug, Default)]
pub struct DeltaEffects {
    /// The `(relation, entity)` cells whose tuples, orders, ground rules
    /// or copy obligations the delta may have changed.  Everything outside
    /// these cells is semantically untouched.
    pub touched_cells: BTreeSet<(RelId, Eid)>,
    /// Ids assigned to inserted tuples, in operation order.
    pub inserted: Vec<(RelId, TupleId)>,
    /// The delta's routing class for entity-sharded deployments (the
    /// post-application counterpart of [`SpecDelta::routing`]).
    pub routing: DeltaRouting,
}

/// Phase-1 simulation state: enough of the post-delta specification to
/// validate every operation without mutating anything.
struct Sim<'s> {
    spec: &'s Specification,
    /// Tuples inserted so far, per relation (ids follow the base length).
    pending: BTreeMap<RelId, Vec<Tuple>>,
    /// Tuples removed so far, per relation.
    removed: BTreeMap<RelId, BTreeSet<TupleId>>,
    /// Order edges added so far, per `(relation, attribute)`.
    added_edges: BTreeMap<(RelId, AttrId), Vec<(TupleId, TupleId)>>,
    /// Signatures of copies added so far (for `ExtendCopy` onto them).
    added_copy_sigs: Vec<crate::copy::CopySignature>,
}

impl<'s> Sim<'s> {
    fn new(spec: &'s Specification) -> Sim<'s> {
        Sim {
            spec,
            pending: BTreeMap::new(),
            removed: BTreeMap::new(),
            added_edges: BTreeMap::new(),
            added_copy_sigs: Vec::new(),
        }
    }

    fn check_rel(&self, rel: RelId) -> Result<(), CurrencyError> {
        if rel.index() < self.spec.catalog().len() {
            Ok(())
        } else {
            Err(CurrencyError::UnknownRelation {
                relation: format!("{rel:?}"),
            })
        }
    }

    /// The tuple a (possibly pending) id resolves to, if live.
    fn live_tuple(&self, rel: RelId, id: TupleId) -> Option<&Tuple> {
        if self.removed.get(&rel).is_some_and(|r| r.contains(&id)) {
            return None;
        }
        let inst = self.spec.instance(rel);
        if id.index() < inst.len() {
            return inst.is_live(id).then(|| inst.tuple(id));
        }
        self.pending
            .get(&rel)
            .and_then(|p| p.get(id.index() - inst.len()))
    }

    fn require_live(&self, rel: RelId, id: TupleId) -> Result<&Tuple, CurrencyError> {
        self.live_tuple(rel, id)
            .ok_or(CurrencyError::UnknownTuple { rel, tuple: id })
    }

    /// Validate the copying condition of one mapping against a signature.
    fn check_mapping(
        &self,
        copy_index: usize,
        sig: &crate::copy::CopySignature,
        target: TupleId,
        source: TupleId,
    ) -> Result<(), CurrencyError> {
        let tt = self.require_live(sig.target, target)?;
        let st = self.require_live(sig.source, source)?;
        for (pos, (ta, sa)) in sig.target_attrs.iter().zip(&sig.source_attrs).enumerate() {
            if tt.value(*ta) != st.value(*sa) {
                return Err(CurrencyError::CopyValueMismatch {
                    copy: copy_index,
                    target,
                    source,
                    position: pos,
                });
            }
        }
        Ok(())
    }

    /// Check one operation and fold it into the simulation.
    fn step(&mut self, op: &DeltaOp) -> Result<(), CurrencyError> {
        match op {
            DeltaOp::InsertTuple { rel, tuple } => {
                self.check_rel(*rel)?;
                let arity = self.spec.catalog().schema(*rel).arity();
                if tuple.values.len() != arity {
                    return Err(CurrencyError::ArityMismatch {
                        relation: self.spec.catalog().schema(*rel).name().to_string(),
                        expected: arity,
                        got: tuple.values.len(),
                    });
                }
                self.pending.entry(*rel).or_default().push(tuple.clone());
            }
            DeltaOp::RemoveTuple { rel, tuple } => {
                self.check_rel(*rel)?;
                self.require_live(*rel, *tuple)?;
                self.removed.entry(*rel).or_default().insert(*tuple);
            }
            DeltaOp::AddOrderEdge {
                rel,
                attr,
                lesser,
                greater,
            } => {
                self.check_rel(*rel)?;
                if attr.index() >= self.spec.catalog().schema(*rel).arity() {
                    return Err(CurrencyError::AttrOutOfRange {
                        rel: *rel,
                        attr: *attr,
                    });
                }
                let el = self.require_live(*rel, *lesser)?.eid;
                let eg = self.require_live(*rel, *greater)?.eid;
                if el != eg {
                    return Err(CurrencyError::CrossEntityOrder {
                        rel: *rel,
                        attr: *attr,
                        entities: (el, eg),
                    });
                }
                self.added_edges
                    .entry((*rel, *attr))
                    .or_default()
                    .push((*lesser, *greater));
            }
            DeltaOp::AddConstraint(dc) => {
                self.spec.check_constraint_schema(dc)?;
            }
            DeltaOp::AddCopy(cf) => {
                let sig = cf.signature();
                self.spec.check_copy_schema(sig)?;
                let copy_index = self.spec.copies().len() + self.added_copy_sigs.len();
                for (t, s) in cf.mappings() {
                    self.check_mapping(copy_index, sig, t, s)?;
                }
                self.added_copy_sigs.push(sig.clone());
            }
            DeltaOp::ExtendCopy {
                copy,
                target,
                source,
            } => {
                let base = self.spec.copies().len();
                let sig = if *copy < base {
                    self.spec.copies()[*copy].signature().clone()
                } else if *copy < base + self.added_copy_sigs.len() {
                    self.added_copy_sigs[*copy - base].clone()
                } else {
                    return Err(CurrencyError::UnknownCopy { copy: *copy });
                };
                self.check_mapping(*copy, &sig, *target, *source)?;
            }
        }
        Ok(())
    }

    /// Final acyclicity check of every order touched by added edges, over
    /// the simulated post-delta pair set.
    fn check_acyclic(&self) -> Result<(), CurrencyError> {
        for (&(rel, attr), edges) in &self.added_edges {
            let inst = self.spec.instance(rel);
            let removed = self.removed.get(&rel);
            let dead = |t: TupleId| removed.is_some_and(|r| r.contains(&t));
            let sim: crate::order::OrderRelation = inst
                .order(attr)
                .iter()
                .chain(edges.iter().copied())
                .filter(|&(a, b)| !dead(a) && !dead(b))
                .collect();
            if let Some(w) = sim.find_cycle() {
                return Err(CurrencyError::CyclicOrder {
                    rel,
                    attr,
                    witness: w,
                });
            }
        }
        Ok(())
    }
}

impl Specification {
    /// Apply a delta atomically.
    ///
    /// Every operation is validated against a simulation of the post-delta
    /// specification **before anything mutates** — arity, liveness,
    /// same-entity and attribute-range checks per operation, the copying
    /// condition for copy extensions, and acyclicity of every extended
    /// initial order.  On error the specification is unchanged.
    ///
    /// On success the returned [`DeltaEffects`] lists the assigned ids of
    /// inserted tuples and the set of `(relation, entity)` cells whose
    /// semantics may have changed:
    ///
    /// * inserting/removing a tuple or adding an order edge touches the
    ///   tuple's cell;
    /// * removing a tuple also cascades away copy mappings referencing it
    ///   and touches both cells of every dropped mapping;
    /// * adding a constraint touches every current cell of its relation;
    /// * adding or extending a copy function touches the target and source
    ///   cells of every new mapping (and, when an extension overwrites an
    ///   existing mapping, the old source's cell).
    pub fn apply_delta(&mut self, delta: &SpecDelta) -> Result<DeltaEffects, CurrencyError> {
        // Phase 1: validate everything against a simulation.
        delta.validate(self)?;

        // Phase 2: apply for real.  Every failure mode was ruled out above,
        // so the `expect`s encode invariants, not error handling.
        let mut effects = DeltaEffects::default();
        for op in delta.ops() {
            match op {
                DeltaOp::InsertTuple { rel, tuple } => {
                    let eid = tuple.eid;
                    let id = self
                        .instance_mut(*rel)
                        .push_tuple(tuple.clone())
                        .expect("validated arity");
                    effects.inserted.push((*rel, id));
                    effects.touched_cells.insert((*rel, eid));
                }
                DeltaOp::RemoveTuple { rel, tuple } => {
                    let eid = self.instance(*rel).tuple(*tuple).eid;
                    self.instance_mut(*rel)
                        .remove_tuple(*tuple)
                        .expect("validated liveness");
                    effects.touched_cells.insert((*rel, eid));
                    // Cascade: mappings with a vanished endpoint go too,
                    // and both their cells are touched (their obligations
                    // disappear).  The entity-keyed index makes each shed
                    // an indexed lookup, not a scan of the mapping set.
                    for i in 0..self.copies().len() {
                        let sig = self.copies()[i].signature().clone();
                        if sig.target != *rel && sig.source != *rel {
                            continue;
                        }
                        let mut dropped: Vec<(TupleId, TupleId)> = Vec::new();
                        if sig.target == *rel {
                            dropped.extend(self.copy_mut(i).remove_target_mapping(*tuple));
                        }
                        if sig.source == *rel {
                            dropped.extend(self.copy_mut(i).remove_source_mappings(*tuple));
                        }
                        for (t, s) in dropped {
                            // `tuple()` resolves tombstones too — the data
                            // stays in the slot.
                            effects
                                .touched_cells
                                .insert((sig.target, self.instance(sig.target).tuple(t).eid));
                            effects
                                .touched_cells
                                .insert((sig.source, self.instance(sig.source).tuple(s).eid));
                        }
                    }
                }
                DeltaOp::AddOrderEdge {
                    rel,
                    attr,
                    lesser,
                    greater,
                } => {
                    let eid = self.instance(*rel).tuple(*lesser).eid;
                    self.instance_mut(*rel)
                        .add_order(*attr, *lesser, *greater)
                        .expect("validated edge");
                    effects.touched_cells.insert((*rel, eid));
                }
                DeltaOp::AddConstraint(dc) => {
                    let rel = dc.rel();
                    let cells: Vec<Eid> = self.instance(rel).entities().collect();
                    self.add_constraint(dc.clone())
                        .expect("validated constraint");
                    for eid in cells {
                        effects.touched_cells.insert((rel, eid));
                    }
                }
                DeltaOp::AddCopy(cf) => {
                    let sig = cf.signature().clone();
                    let mappings: Vec<(TupleId, TupleId)> = cf.mappings().collect();
                    self.add_copy(cf.clone()).expect("validated copy");
                    for (t, s) in mappings {
                        effects
                            .touched_cells
                            .insert((sig.target, self.instance(sig.target).tuple(t).eid));
                        effects
                            .touched_cells
                            .insert((sig.source, self.instance(sig.source).tuple(s).eid));
                    }
                }
                DeltaOp::ExtendCopy {
                    copy,
                    target,
                    source,
                } => {
                    let sig = self.copies()[*copy].signature().clone();
                    let te = self.instance(sig.target).tuple(*target).eid;
                    let se = self.instance(sig.source).tuple(*source).eid;
                    let old_source = self
                        .copy_mut(*copy)
                        .insert_mapping(*target, *source, te, se);
                    effects
                        .touched_cells
                        .insert((sig.target, self.instance(sig.target).tuple(*target).eid));
                    effects
                        .touched_cells
                        .insert((sig.source, self.instance(sig.source).tuple(*source).eid));
                    if let Some(old) = old_source {
                        effects
                            .touched_cells
                            .insert((sig.source, self.instance(sig.source).tuple(old).eid));
                    }
                }
            }
        }
        // Routing metadata, resolved against the post-delta state (every
        // referenced tuple exists now; tombstone slots keep their data,
        // so removed anchors still resolve).
        let copy_rels: Vec<(RelId, RelId)> = self
            .copies()
            .iter()
            .map(|cf| (cf.signature().target, cf.signature().source))
            .collect();
        effects.routing = delta
            .routing(&copy_rels, |rel, id| {
                let inst = self.instance(rel);
                (id.index() < inst.len()).then(|| inst.tuple(id).eid)
            })
            .expect("validated delta routes");
        debug_assert!(self.validate().is_ok(), "post-delta invariants hold");
        Ok(effects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy::CopySignature;
    use crate::denial::{CmpOp, Term};
    use crate::schema::{Catalog, RelationSchema};
    use crate::value::Value;

    const A: AttrId = AttrId(0);

    fn spec_two_rels() -> (Specification, RelId, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        (Specification::new(cat), r, s)
    }

    fn t(e: u64, v: i64) -> Tuple {
        Tuple::new(Eid(e), vec![Value::int(v)])
    }

    #[test]
    fn insert_remove_and_order_edges_round_trip() {
        let (mut spec, r, _) = spec_two_rels();
        let mut d = SpecDelta::new();
        d.insert_tuples(r, [t(1, 10), t(1, 20), t(2, 5)]);
        let fx = spec.apply_delta(&d).unwrap();
        assert_eq!(
            fx.inserted,
            vec![(r, TupleId(0)), (r, TupleId(1)), (r, TupleId(2))]
        );
        assert_eq!(fx.touched_cells.len(), 2, "two entities touched");

        let mut d2 = SpecDelta::new();
        d2.add_order_edge(r, A, TupleId(0), TupleId(1))
            .remove_tuple(r, TupleId(2));
        let fx2 = spec.apply_delta(&d2).unwrap();
        assert!(fx2.touched_cells.contains(&(r, Eid(1))));
        assert!(fx2.touched_cells.contains(&(r, Eid(2))));
        assert!(spec.instance(r).order(A).contains(TupleId(0), TupleId(1)));
        assert!(!spec.instance(r).is_live(TupleId(2)));
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn edges_may_reference_tuples_inserted_in_the_same_delta() {
        let (mut spec, r, _) = spec_two_rels();
        spec.instance_mut(r).push_tuple(t(1, 1)).unwrap();
        let mut d = SpecDelta::new();
        d.insert_tuple(r, t(1, 2))
            .add_order_edge(r, A, TupleId(0), TupleId(1));
        assert!(spec.apply_delta(&d).is_ok());
        // Forward references (edge before the insert) are rejected.
        let mut bad = SpecDelta::new();
        bad.add_order_edge(r, A, TupleId(0), TupleId(2))
            .insert_tuple(r, t(1, 3));
        assert!(matches!(
            spec.apply_delta(&bad),
            Err(CurrencyError::UnknownTuple { .. })
        ));
        assert_eq!(spec.instance(r).len(), 2, "failed delta changed nothing");
    }

    #[test]
    fn invalid_deltas_are_rejected_atomically() {
        let (mut spec, r, _) = spec_two_rels();
        spec.instance_mut(r).push_tuple(t(1, 1)).unwrap();
        spec.instance_mut(r).push_tuple(t(2, 2)).unwrap();
        // Arity mismatch after a valid insert: nothing applies.
        let mut d = SpecDelta::new();
        d.insert_tuple(r, t(1, 5))
            .insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(1), Value::int(2)]));
        assert!(matches!(
            spec.apply_delta(&d),
            Err(CurrencyError::ArityMismatch { .. })
        ));
        assert_eq!(spec.instance(r).len(), 2);
        // Cross-entity edge.
        let mut d = SpecDelta::new();
        d.add_order_edge(r, A, TupleId(0), TupleId(1));
        assert!(matches!(
            spec.apply_delta(&d),
            Err(CurrencyError::CrossEntityOrder { .. })
        ));
        // Cyclic order (via two edges of one delta).
        let mut d = SpecDelta::new();
        d.insert_tuple(r, t(1, 5))
            .add_order_edge(r, A, TupleId(0), TupleId(2))
            .add_order_edge(r, A, TupleId(2), TupleId(0));
        assert!(matches!(
            spec.apply_delta(&d),
            Err(CurrencyError::CyclicOrder { .. })
        ));
        assert_eq!(spec.instance(r).len(), 2);
        // Removing an unknown tuple.
        let mut d = SpecDelta::new();
        d.remove_tuple(r, TupleId(9));
        assert!(matches!(
            spec.apply_delta(&d),
            Err(CurrencyError::UnknownTuple { .. })
        ));
    }

    #[test]
    fn constraint_touches_every_cell_of_its_relation() {
        let (mut spec, r, _) = spec_two_rels();
        spec.instance_mut(r).push_tuple(t(1, 1)).unwrap();
        spec.instance_mut(r).push_tuple(t(2, 2)).unwrap();
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        let mut d = SpecDelta::new();
        d.add_constraint(dc);
        let fx = spec.apply_delta(&d).unwrap();
        assert_eq!(fx.touched_cells.len(), 2);
        assert_eq!(spec.constraints().len(), 1);
    }

    #[test]
    fn copy_extension_checks_the_copying_condition() {
        let (mut spec, r, s) = spec_two_rels();
        let tr = spec.instance_mut(r).push_tuple(t(1, 7)).unwrap();
        let ts = spec.instance_mut(s).push_tuple(t(9, 7)).unwrap();
        let bad_ts = spec.instance_mut(s).push_tuple(t(9, 8)).unwrap();
        let sig = CopySignature::new(r, vec![A], s, vec![A]).unwrap();
        let mut d = SpecDelta::new();
        d.add_copy(CopyFunction::new(sig)).extend_copy(0, tr, ts);
        let fx = spec.apply_delta(&d).unwrap();
        assert!(fx.touched_cells.contains(&(r, Eid(1))));
        assert!(fx.touched_cells.contains(&(s, Eid(9))));
        assert_eq!(spec.copies()[0].mapping(tr), Some(ts));
        // Value-mismatched extension is rejected.
        let mut bad = SpecDelta::new();
        bad.extend_copy(0, tr, bad_ts);
        assert!(matches!(
            spec.apply_delta(&bad),
            Err(CurrencyError::CopyValueMismatch { .. })
        ));
        // Unknown copy index.
        let mut bad = SpecDelta::new();
        bad.extend_copy(5, tr, ts);
        assert!(matches!(
            spec.apply_delta(&bad),
            Err(CurrencyError::UnknownCopy { .. })
        ));
    }

    #[test]
    fn removing_a_copied_tuple_cascades_the_mapping() {
        let (mut spec, r, s) = spec_two_rels();
        let tr = spec.instance_mut(r).push_tuple(t(1, 7)).unwrap();
        let ts = spec.instance_mut(s).push_tuple(t(9, 7)).unwrap();
        let sig = CopySignature::new(r, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(tr, ts);
        spec.add_copy(cf).unwrap();
        let mut d = SpecDelta::new();
        d.remove_tuple(s, ts);
        let fx = spec.apply_delta(&d).unwrap();
        assert!(spec.copies()[0].is_empty(), "dangling mapping cascaded");
        assert!(
            fx.touched_cells.contains(&(r, Eid(1))),
            "target cell touched"
        );
        assert!(fx.touched_cells.contains(&(s, Eid(9))));
        assert!(spec.validate().is_ok());
    }
}
