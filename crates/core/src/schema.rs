//! Relation schemas and the catalog.

use crate::error::CurrencyError;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a relation within a [`Catalog`] (dense index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub u32);

impl RelId {
    /// The dense index of this relation id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a (non-EID) attribute within a relation schema.
///
/// Following the paper, the entity-id column `EID` is *not* an attribute:
/// currency orders, denial constraints and copy signatures only ever talk
/// about the proper attributes `A₁ … Aₙ`.  Attribute 0 is the first proper
/// attribute.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The dense index of this attribute id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A relation schema `R = (EID, A₁, …, Aₙ)`.
///
/// The EID column is implicit; `attrs` names the proper attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attrs: Vec<String>,
}

impl RelationSchema {
    /// Create a schema with the given relation and attribute names.
    pub fn new(name: impl Into<String>, attrs: &[&str]) -> RelationSchema {
        RelationSchema {
            name: name.into(),
            attrs: attrs.iter().map(|a| a.to_string()).collect(),
        }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of proper (non-EID) attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Look up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a == name)
            .map(|i| AttrId(i as u32))
    }

    /// Look up an attribute by name, failing with a descriptive error.
    pub fn attr_checked(&self, name: &str) -> Result<AttrId, CurrencyError> {
        self.attr(name)
            .ok_or_else(|| CurrencyError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: name.to_string(),
            })
    }

    /// The name of an attribute.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.attrs[attr.index()]
    }

    /// Iterate over `(AttrId, name)` pairs.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u32), a.as_str()))
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(EID", self.name)?;
        for a in &self.attrs {
            write!(f, ", {a}")?;
        }
        write!(f, ")")
    }
}

/// The set of relation schemas of a specification.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    rels: Vec<RelationSchema>,
    by_name: HashMap<String, RelId>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a schema, returning its id.
    ///
    /// Re-registering a name replaces nothing: duplicate names are rejected
    /// by [`Catalog::add_checked`]; `add` panics on duplicates to keep
    /// builder code terse.
    pub fn add(&mut self, schema: RelationSchema) -> RelId {
        self.add_checked(schema).expect("duplicate relation name")
    }

    /// Register a schema, rejecting duplicate relation names.
    pub fn add_checked(&mut self, schema: RelationSchema) -> Result<RelId, CurrencyError> {
        if self.by_name.contains_key(schema.name()) {
            return Err(CurrencyError::DuplicateRelation {
                relation: schema.name().to_string(),
            });
        }
        let id = RelId(self.rels.len() as u32);
        self.by_name.insert(schema.name().to_string(), id);
        self.rels.push(schema);
        Ok(id)
    }

    /// Look up a relation by name.
    pub fn rel(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// The schema of a relation.
    pub fn schema(&self, rel: RelId) -> &RelationSchema {
        &self.rels[rel.index()]
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// `true` if no relations are registered.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterate over `(RelId, schema)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.rels
            .iter()
            .enumerate()
            .map(|(i, s)| (RelId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = RelationSchema::new("Emp", &["FN", "LN", "address", "salary", "status"]);
        assert_eq!(s.name(), "Emp");
        assert_eq!(s.arity(), 5);
        assert_eq!(s.attr("salary"), Some(AttrId(3)));
        assert_eq!(s.attr("nope"), None);
        assert_eq!(s.attr_name(AttrId(0)), "FN");
        assert!(s.attr_checked("LN").is_ok());
        assert!(matches!(
            s.attr_checked("bogus"),
            Err(CurrencyError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn schema_display_includes_eid() {
        let s = RelationSchema::new("R", &["A", "B"]);
        assert_eq!(s.to_string(), "R(EID, A, B)");
    }

    #[test]
    fn catalog_registration_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let emp = c.add(RelationSchema::new("Emp", &["name"]));
        let dept = c.add(RelationSchema::new("Dept", &["dname"]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.rel("Emp"), Some(emp));
        assert_eq!(c.rel("Dept"), Some(dept));
        assert_eq!(c.rel("Missing"), None);
        assert_eq!(c.schema(emp).name(), "Emp");
        let names: Vec<&str> = c.iter().map(|(_, s)| s.name()).collect();
        assert_eq!(names, vec!["Emp", "Dept"]);
    }

    #[test]
    fn catalog_rejects_duplicates() {
        let mut c = Catalog::new();
        c.add(RelationSchema::new("R", &["A"]));
        assert!(matches!(
            c.add_checked(RelationSchema::new("R", &["B"])),
            Err(CurrencyError::DuplicateRelation { .. })
        ));
    }

    #[test]
    fn attrs_iterates_in_order() {
        let s = RelationSchema::new("R", &["A", "B", "C"]);
        let pairs: Vec<(u32, &str)> = s.attrs().map(|(id, n)| (id.0, n)).collect();
        assert_eq!(pairs, vec![(0, "A"), (1, "B"), (2, "C")]);
    }
}
