//! # currency-core
//!
//! The data-currency model of Fan, Geerts & Wijsen, *Determining the
//! Currency of Data* (PODS 2011 / ACM TODS 37(4), 2012), as a Rust library.
//!
//! The model answers a practical question: when a database holds several
//! values for the same entity — old addresses, superseded salaries — and no
//! reliable timestamps, *which value is current?*  The paper's formalism
//! (§2 of the paper) has four ingredients, all implemented here:
//!
//! * **Temporal instances** ([`TemporalInstance`]): ordinary relations whose
//!   tuples carry an entity id ([`Eid`]), plus one *partial currency order*
//!   per attribute.  `t₁ ≺_A t₂` states that `t₂`'s `A`-value is more
//!   current than `t₁`'s.  Orders are per-attribute: a tuple can be current
//!   in one column and stale in another.
//! * **Denial constraints** ([`DenialConstraint`]): universally quantified
//!   rules deriving currency from data semantics ("salaries never
//!   decrease", "a `married` status is more current than a `single` one").
//! * **Copy functions** ([`CopyFunction`]): partial mappings recording that
//!   tuples of one relation were imported from another, which transports
//!   currency orders from the source into the target (≺-compatibility).
//! * **Specifications** ([`Specification`]): a bundle of temporal
//!   instances, constraint sets and copy functions.  Its semantics is the
//!   set `Mod(S)` of **consistent completions** ([`Completion`]) — ways of
//!   extending every partial order to a total order per entity that satisfy
//!   all constraints.  Each completion induces a **current instance**
//!   ([`current_instance`]): one synthesized most-current tuple per entity.
//!
//! Specifications are *live*: a [`SpecDelta`] batches tuple inserts and
//! removals, new order edges, new constraints and copy-function
//! extensions, and [`Specification::apply_delta`] applies the batch
//! atomically (validate first, mutate only if everything is admissible),
//! reporting the touched `(relation, entity)` cells so incremental
//! consumers can invalidate precisely.
//!
//! Decision procedures over this model (consistency, certain orders,
//! certain current query answers, currency preservation) live in the
//! `currency-reason` crate; this crate is purely the model plus its local
//! validation and grounding machinery — including the stable binary
//! [`wire`] codec the durability layer (`currency-store`) persists
//! specifications and deltas with.
//!
//! ## Example: two stale records, one constraint
//!
//! ```
//! use currency_core::*;
//!
//! let mut catalog = Catalog::new();
//! let emp = catalog.add(RelationSchema::new("Emp", &["name", "salary"]));
//! let mut spec = Specification::new(catalog);
//!
//! // Two records for the same person (entity 0) with different salaries.
//! let mary = Eid(0);
//! let t0 = spec.instance_mut(emp).push_tuple(Tuple::new(mary, vec![Value::str("Mary"), Value::int(50)])).unwrap();
//! let t1 = spec.instance_mut(emp).push_tuple(Tuple::new(mary, vec![Value::str("Mary"), Value::int(80)])).unwrap();
//!
//! // "Salaries never decrease": higher salary ⇒ more current (paper's φ₁).
//! let salary = AttrId(1);
//! let dc = DenialConstraint::builder(emp, 2)
//!     .when_cmp(Term::attr(0, salary), CmpOp::Gt, Term::attr(1, salary))
//!     .then_order(1, salary, 0)
//!     .build()
//!     .unwrap();
//! spec.add_constraint(dc).unwrap();
//! assert!(spec.validate().is_ok());
//!
//! // Grounding the constraint on the instance yields t0 ≺ t1 (80 > 50).
//! let rules = spec.constraints()[0].ground(spec.instance(emp));
//! assert_eq!(rules.len(), 1);
//! assert_eq!(rules[0].conclusion, Some(OrderEdge { attr: salary, lesser: t0, greater: t1 }));
//! ```

mod completion;
mod copy;
mod current;
mod delta;
mod denial;
mod error;
mod instance;
mod order;
mod render;
mod schema;
mod spec;
mod temporal;
mod value;
pub mod wire;

pub use completion::{Completion, RelCompletion};
pub use copy::{CopyFunction, CopySignature};
pub use current::{current_instance, current_tuple, lst};
pub use delta::{DeltaEffects, DeltaOp, DeltaRouting, SpecDelta};
pub use denial::{
    CmpOp, DenialBuilder, DenialConstraint, EntityGrounder, GroundRule, OrderEdge, Predicate, Term,
    VarId,
};
pub use error::CurrencyError;
pub use instance::{NormalInstance, Tuple};
pub use order::{linear_extensions, OrderRelation};
pub use render::{render_instance, render_spec, render_temporal};
pub use schema::{AttrId, Catalog, RelId, RelationSchema};
pub use spec::{CompactReport, CompactSlice, CompactStepReport, Specification};
pub use temporal::TemporalInstance;
pub use value::{Eid, TupleId, Value};
