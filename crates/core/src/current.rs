//! Current tuples and current instances (`LST`, paper §2).
//!
//! Given a consistent completion, the *current tuple* of an entity `e`
//! collects, for each attribute `A`, the `A`-value of the greatest (most
//! current) tuple in the completed order `≺ᶜ_A` restricted to `e`'s tuples.
//! The *current instance* `LST(Dᶜ)` is the set of current tuples of all
//! entities — a plain [`NormalInstance`] carrying no orders, over which
//! queries are evaluated.

use crate::completion::{Completion, RelCompletion};
use crate::instance::{NormalInstance, Tuple};
use crate::schema::AttrId;
use crate::spec::Specification;
use crate::temporal::TemporalInstance;
use crate::value::Eid;

/// The current tuple `LST(e, Dᶜ)` of entity `eid`.
///
/// Different attributes may be contributed by different tuples — the
/// paper's Example 2.4 builds a current tuple whose first four attributes
/// come from one record and whose salary comes from another.
///
/// # Panics
///
/// Panics if `eid` has no tuples in `inst` (the paper only defines current
/// tuples for entities present in the instance).
pub fn current_tuple(inst: &TemporalInstance, rc: &RelCompletion, eid: Eid) -> Tuple {
    let group = inst.entity_group(eid);
    assert!(
        !group.is_empty(),
        "current_tuple: entity {eid} not present in relation {}",
        inst.rel_name()
    );
    let values = (0..inst.arity())
        .map(|a| {
            let attr = AttrId(a as u32);
            let top = rc
                .last(attr, eid)
                .expect("completion covers every entity of the instance");
            inst.tuple(top).value(attr).clone()
        })
        .collect();
    Tuple::new(eid, values)
}

/// The current instance `LST(Dᶜ)` of one relation.
pub fn current_instance(inst: &TemporalInstance, rc: &RelCompletion) -> NormalInstance {
    let mut out = NormalInstance::new(inst.rel());
    for eid in inst.entities() {
        out.push(current_tuple(inst, rc, eid));
    }
    out
}

/// The current instances of every relation of a specification under a
/// completion — `LST(Dᶜ)` lifted to the whole specification.
pub fn lst(spec: &Specification, completion: &Completion) -> Vec<NormalInstance> {
    spec.instances()
        .iter()
        .map(|inst| current_instance(inst, completion.rel(inst.rel())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completion::RelCompletion;
    use crate::schema::{Catalog, RelationSchema};
    use crate::value::{TupleId, Value};
    use std::collections::BTreeMap;

    /// Entity 1 has two tuples; attribute orders disagree about which is
    /// most current (as in the paper's Example 2.4).
    #[test]
    fn current_tuple_mixes_attributes() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["name", "salary"]));
        let mut spec = Specification::new(cat);
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(
                Eid(1),
                vec![Value::str("old-name"), Value::int(80)],
            ))
            .unwrap();
        let t1 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(
                Eid(1),
                vec![Value::str("new-name"), Value::int(55)],
            ))
            .unwrap();
        let inst = spec.instance(r);
        // name: t0 ≺ t1 (t1 current); salary: t1 ≺ t0 (t0 current).
        let mut name_chain = BTreeMap::new();
        name_chain.insert(Eid(1), vec![t0, t1]);
        let mut salary_chain = BTreeMap::new();
        salary_chain.insert(Eid(1), vec![t1, t0]);
        let rc = RelCompletion::new(inst, vec![name_chain, salary_chain]).unwrap();
        let cur = current_tuple(inst, &rc, Eid(1));
        assert_eq!(cur.values, vec![Value::str("new-name"), Value::int(80)]);
    }

    #[test]
    fn current_instance_has_one_tuple_per_entity() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        let a0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let a1 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(2)]))
            .unwrap();
        let b0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(2), vec![Value::int(3)]))
            .unwrap();
        let inst = spec.instance(r);
        let mut chain = BTreeMap::new();
        chain.insert(Eid(1), vec![a0, a1]);
        chain.insert(Eid(2), vec![b0]);
        let rc = RelCompletion::new(inst, vec![chain]).unwrap();
        let cur = current_instance(inst, &rc);
        assert_eq!(cur.len(), 2);
        assert!(cur.contains(&Tuple::new(Eid(1), vec![Value::int(2)])));
        assert!(cur.contains(&Tuple::new(Eid(2), vec![Value::int(3)])));
    }

    #[test]
    fn lst_covers_all_relations() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["X"]));
        let mut spec = Specification::new(cat);
        let tr = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let ts = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(5), vec![Value::str("x")]))
            .unwrap();
        let mut rc = BTreeMap::new();
        rc.insert(Eid(1), vec![tr]);
        let mut sc = BTreeMap::new();
        sc.insert(Eid(5), vec![ts]);
        let completion = Completion::new(vec![
            RelCompletion::new(spec.instance(r), vec![rc]).unwrap(),
            RelCompletion::new(spec.instance(s), vec![sc]).unwrap(),
        ]);
        let all = lst(&spec, &completion);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].len(), 1);
        assert_eq!(all[1].len(), 1);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn current_tuple_panics_on_unknown_entity() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let inst = spec.instance(r);
        let mut chain = BTreeMap::new();
        chain.insert(Eid(1), vec![t0]);
        let rc = RelCompletion::new(inst, vec![chain]).unwrap();
        let _ = current_tuple(inst, &rc, Eid(42));
    }

    // Silence unused warning for TupleId import used only in types above.
    #[allow(dead_code)]
    fn _t(_: TupleId) {}
}
