//! Denial constraints: syntax, a builder DSL, and grounding.
//!
//! A denial constraint (paper §2) is a universally quantified sentence
//!
//! ```text
//! ∀ t₁ … t_k : R ( ⋀ⱼ t₁[EID] = tⱼ[EID]  ∧  ψ  →  t_u ≺_{A_i} t_v )
//! ```
//!
//! where `ψ` conjoins *currency atoms* `tⱼ ≺_{A_ℓ} t_h` and *value atoms*
//! (equalities, inequalities and built-in comparisons over attribute values
//! and constants).  The same-entity premise is built in: all tuple
//! variables range over tuples of one entity.
//!
//! ## Grounding
//!
//! Reasoners consume constraints in *ground* form: for a concrete temporal
//! instance, [`DenialConstraint::ground`] enumerates the assignments of
//! tuple variables to same-entity tuples that satisfy every value atom, and
//! emits one [`GroundRule`] per assignment — a Horn-style implication from
//! currency premises to a currency conclusion (or to falsum, when the
//! conclusion instantiates to the irreflexive `t ≺ t`, the paper's idiom
//! for "reject").
//!
//! Naive grounding is `|group|^k`; the proofs' reduction gadgets use
//! constraints whose value atoms pin most variables to one or two
//! candidates, so the grounder backtracks over per-variable candidate
//! lists filtered by unary atoms and checks binary atoms as soon as both
//! endpoints are bound.  This keeps the hardness gadgets (DESIGN.md §5)
//! within reach.

use crate::error::CurrencyError;
use crate::schema::{AttrId, RelId};
use crate::temporal::TemporalInstance;
use crate::value::{Eid, TupleId, Value};
use std::collections::BTreeSet;

/// Index of a universally quantified tuple variable within a constraint.
pub type VarId = usize;

/// A term of a value atom: an attribute of a tuple variable, or a constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// `t_var[attr]`.
    Attr(VarId, AttrId),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Convenience constructor for `t_var[attr]`.
    pub fn attr(var: VarId, attr: AttrId) -> Term {
        Term::Attr(var, attr)
    }

    /// Convenience constructor for a constant term.
    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }
}

/// Comparison operators for value atoms.
///
/// `Lt`/`Le`/`Gt`/`Ge` use the total order on [`Value`]; they are
/// meaningful within one value kind, mirroring the paper's "built-in
/// predicates defined on particular domains".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on two values.
    pub fn eval(self, l: &Value, r: &Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

/// A premise of a denial constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Predicate {
    /// Currency atom `t_lesser ≺_attr t_greater`.
    Order {
        /// The less-current tuple variable.
        lesser: VarId,
        /// The attribute of the currency order.
        attr: AttrId,
        /// The more-current tuple variable.
        greater: VarId,
    },
    /// Value atom `left op right`.
    Cmp {
        /// Left term.
        left: Term,
        /// Comparison operator.
        op: CmpOp,
        /// Right term.
        right: Term,
    },
}

/// A ground currency fact `lesser ≺_attr greater` over concrete tuples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrderEdge {
    /// Attribute of the currency order.
    pub attr: AttrId,
    /// The less-current tuple.
    pub lesser: TupleId,
    /// The more-current tuple.
    pub greater: TupleId,
}

/// A grounded denial constraint: `⋀ premises → conclusion`.
///
/// `conclusion == None` encodes falsum — the constraint instantiated its
/// conclusion to the unsatisfiable `t ≺ t`, so the premises must never
/// jointly hold.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroundRule {
    /// Currency premises (value atoms have already been checked).
    pub premises: Vec<OrderEdge>,
    /// Currency conclusion, or `None` for falsum.
    pub conclusion: Option<OrderEdge>,
}

/// A denial constraint over one relation (see module docs).
#[derive(Clone, Debug)]
pub struct DenialConstraint {
    rel: RelId,
    num_vars: usize,
    premises: Vec<Predicate>,
    conclusion: (VarId, AttrId, VarId),
}

impl DenialConstraint {
    /// Start building a constraint over `rel` with `num_vars` tuple
    /// variables `t₀ … t_{num_vars−1}`.
    pub fn builder(rel: RelId, num_vars: usize) -> DenialBuilder {
        DenialBuilder {
            rel,
            num_vars,
            premises: Vec::new(),
            conclusion: None,
        }
    }

    /// The relation this constraint speaks about.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// Number of quantified tuple variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The premise list.
    pub fn premises(&self) -> &[Predicate] {
        &self.premises
    }

    /// The conclusion `(lesser, attr, greater)` over variable indices.
    pub fn conclusion(&self) -> (VarId, AttrId, VarId) {
        self.conclusion
    }

    /// Largest attribute index mentioned (for schema validation).
    pub fn max_attr_index(&self) -> usize {
        let mut m = self.conclusion.1.index();
        for p in &self.premises {
            match p {
                Predicate::Order { attr, .. } => m = m.max(attr.index()),
                Predicate::Cmp { left, right, .. } => {
                    if let Term::Attr(_, a) = left {
                        m = m.max(a.index());
                    }
                    if let Term::Attr(_, a) = right {
                        m = m.max(a.index());
                    }
                }
            }
        }
        m
    }

    /// Ground the constraint against an instance (see module docs).
    ///
    /// Rules are deduplicated and deterministically ordered.
    pub fn ground(&self, inst: &TemporalInstance) -> Vec<GroundRule> {
        debug_assert_eq!(inst.rel(), self.rel);
        let grounder = self.entity_grounder();
        let mut rules: BTreeSet<GroundRule> = BTreeSet::new();
        for (_eid, group) in inst.entity_groups() {
            grounder.ground_group(inst, group, &mut rules);
        }
        rules.into_iter().collect()
    }

    /// Ground the constraint against a **single entity** of the instance.
    ///
    /// Tuple variables range over one entity's tuples (the same-entity
    /// premise is built in), so full grounding is exactly the union of the
    /// per-entity groundings.  Grounding many entities of one constraint?
    /// Build one [`DenialConstraint::entity_grounder`] and reuse it — the
    /// value-atom analysis is then paid once, not per entity.
    pub fn ground_entity(&self, inst: &TemporalInstance, eid: Eid) -> Vec<GroundRule> {
        self.entity_grounder().ground_entity(inst, eid)
    }

    /// A reusable per-entity grounder: the constraint's value atoms are
    /// analyzed once (unary filters vs multi-variable atoms), after which
    /// each [`EntityGrounder::ground_entity`] call pays only for its own
    /// entity's backtracking — the entry point the incremental partition
    /// uses to re-derive a dirty region's rules.
    pub fn entity_grounder(&self) -> EntityGrounder<'_> {
        let (unary, rest) = self.split_value_atoms();
        EntityGrounder {
            dc: self,
            unary,
            rest,
        }
    }

    /// Split the value atoms into unary filters (per variable) and the
    /// rest, indexed by their deepest variable (see module docs).
    fn split_value_atoms(&self) -> (Vec<Vec<&Predicate>>, Vec<Vec<&Predicate>>) {
        let mut unary: Vec<Vec<&Predicate>> = vec![Vec::new(); self.num_vars];
        let mut rest: Vec<Vec<&Predicate>> = vec![Vec::new(); self.num_vars];
        for p in &self.premises {
            if let Predicate::Cmp { left, right, .. } = p {
                match (left, right) {
                    (Term::Attr(v, _), Term::Const(_)) | (Term::Const(_), Term::Attr(v, _)) => {
                        unary[*v].push(p);
                    }
                    (Term::Attr(v1, _), Term::Attr(v2, _)) => {
                        if v1 == v2 {
                            unary[*v1].push(p);
                        } else {
                            rest[(*v1).max(*v2)].push(p);
                        }
                    }
                    (Term::Const(_), Term::Const(_)) => {
                        // Constant-only atom: check once up front; if false
                        // the constraint grounds to nothing.
                        if let Some(v) = rest.first_mut() {
                            v.push(p);
                        }
                    }
                }
            }
        }
        (unary, rest)
    }

    // (Per-group backtracking lives on [`EntityGrounder`].)

    fn ground_rec(
        &self,
        inst: &TemporalInstance,
        candidates: &[Vec<TupleId>],
        rest: &[Vec<&Predicate>],
        assignment: &mut Vec<TupleId>,
        rules: &mut BTreeSet<GroundRule>,
    ) {
        let depth = assignment.len();
        if depth == self.num_vars {
            self.emit_rule(assignment, rules);
            return;
        }
        for &tid in &candidates[depth] {
            assignment.push(tid);
            let pairs: Vec<(VarId, TupleId)> = assignment.iter().copied().enumerate().collect();
            let ok = rest[depth]
                .iter()
                .all(|p| self.eval_cmp_partial(p, inst, &pairs));
            if ok {
                self.ground_rec(inst, candidates, rest, assignment, rules);
            }
            assignment.pop();
        }
    }

    /// Evaluate a value atom under a partial assignment; callers guarantee
    /// every variable the atom mentions is bound.
    fn eval_cmp_partial(
        &self,
        p: &Predicate,
        inst: &TemporalInstance,
        bound: &[(VarId, TupleId)],
    ) -> bool {
        let lookup = |v: VarId| -> TupleId {
            bound
                .iter()
                .find(|(w, _)| *w == v)
                .map(|(_, t)| *t)
                .expect("variable bound before atom evaluation")
        };
        match p {
            Predicate::Cmp { left, op, right } => {
                let lv = match left {
                    Term::Attr(v, a) => inst.tuple(lookup(*v)).value(*a).clone(),
                    Term::Const(c) => c.clone(),
                };
                let rv = match right {
                    Term::Attr(v, a) => inst.tuple(lookup(*v)).value(*a).clone(),
                    Term::Const(c) => c.clone(),
                };
                op.eval(&lv, &rv)
            }
            Predicate::Order { .. } => true,
        }
    }

    fn emit_rule(&self, assignment: &[TupleId], rules: &mut BTreeSet<GroundRule>) {
        let mut premises = Vec::new();
        for p in &self.premises {
            if let Predicate::Order {
                lesser,
                attr,
                greater,
            } = p
            {
                let (l, g) = (assignment[*lesser], assignment[*greater]);
                if l == g {
                    // Premise `t ≺ t` is false by irreflexivity: the whole
                    // instantiation is vacuously satisfied.
                    return;
                }
                premises.push(OrderEdge {
                    attr: *attr,
                    lesser: l,
                    greater: g,
                });
            }
        }
        let (cl, ca, cg) = self.conclusion;
        let (l, g) = (assignment[cl], assignment[cg]);
        let conclusion = if l == g {
            None // conclusion `t ≺ t`: falsum
        } else {
            Some(OrderEdge {
                attr: ca,
                lesser: l,
                greater: g,
            })
        };
        premises.sort_unstable();
        premises.dedup();
        rules.insert(GroundRule {
            premises,
            conclusion,
        });
    }

    /// Check satisfaction against a completed order oracle.
    ///
    /// `precedes(attr, u, v)` must report whether `u ≺ᶜ_attr v` holds in the
    /// completion; the constraint is satisfied iff every ground rule whose
    /// premises all hold has a holding conclusion.
    pub fn satisfied_by(
        &self,
        inst: &TemporalInstance,
        precedes: &dyn Fn(AttrId, TupleId, TupleId) -> bool,
    ) -> bool {
        self.ground(inst).iter().all(|rule| {
            let fire = rule
                .premises
                .iter()
                .all(|e| precedes(e.attr, e.lesser, e.greater));
            if !fire {
                return true;
            }
            match &rule.conclusion {
                Some(e) => precedes(e.attr, e.lesser, e.greater),
                None => false,
            }
        })
    }
}

/// A [`DenialConstraint`] with its value atoms pre-analyzed for repeated
/// per-entity grounding (see [`DenialConstraint::entity_grounder`]).
pub struct EntityGrounder<'c> {
    dc: &'c DenialConstraint,
    /// Unary filters per tuple variable.
    unary: Vec<Vec<&'c Predicate>>,
    /// Multi-variable atoms, indexed by their deepest variable.
    rest: Vec<Vec<&'c Predicate>>,
}

impl EntityGrounder<'_> {
    /// Ground the constraint against a single entity of the instance
    /// (equals the corresponding slice of [`DenialConstraint::ground`]).
    pub fn ground_entity(&self, inst: &TemporalInstance, eid: Eid) -> Vec<GroundRule> {
        debug_assert_eq!(inst.rel(), self.dc.rel);
        let mut rules: BTreeSet<GroundRule> = BTreeSet::new();
        self.ground_group(inst, inst.entity_group(eid), &mut rules);
        rules.into_iter().collect()
    }

    /// Backtracking grounding over one entity group.
    fn ground_group(
        &self,
        inst: &TemporalInstance,
        group: &[TupleId],
        rules: &mut BTreeSet<GroundRule>,
    ) {
        // Per-variable candidate lists after unary filtering.
        let candidates: Vec<Vec<TupleId>> = (0..self.dc.num_vars)
            .map(|v| {
                group
                    .iter()
                    .copied()
                    .filter(|&tid| {
                        self.unary[v]
                            .iter()
                            .all(|p| self.dc.eval_cmp_partial(p, inst, &[(v, tid)]))
                    })
                    .collect()
            })
            .collect();
        if candidates.iter().any(|c| c.is_empty()) {
            return;
        }
        let mut assignment: Vec<TupleId> = Vec::with_capacity(self.dc.num_vars);
        self.dc
            .ground_rec(inst, &candidates, &self.rest, &mut assignment, rules);
    }
}

/// Fluent builder for [`DenialConstraint`] (see [`DenialConstraint::builder`]).
#[derive(Clone, Debug)]
pub struct DenialBuilder {
    rel: RelId,
    num_vars: usize,
    premises: Vec<Predicate>,
    conclusion: Option<(VarId, AttrId, VarId)>,
}

impl DenialBuilder {
    /// Add a value atom `left op right` to the premise.
    pub fn when_cmp(mut self, left: Term, op: CmpOp, right: Term) -> Self {
        self.premises.push(Predicate::Cmp { left, op, right });
        self
    }

    /// Add a currency atom `t_lesser ≺_attr t_greater` to the premise.
    pub fn when_order(mut self, lesser: VarId, attr: AttrId, greater: VarId) -> Self {
        self.premises.push(Predicate::Order {
            lesser,
            attr,
            greater,
        });
        self
    }

    /// Set the conclusion `t_lesser ≺_attr t_greater`.
    ///
    /// Using the same variable on both sides (`t ≺ t`) makes the constraint
    /// a pure denial: the premises must never jointly hold.
    pub fn then_order(mut self, lesser: VarId, attr: AttrId, greater: VarId) -> Self {
        self.conclusion = Some((lesser, attr, greater));
        self
    }

    /// Set a falsum conclusion (`t₀ ≺ t₀`): premises must never hold.
    pub fn then_false(self) -> Self {
        let attr = AttrId(0);
        self.then_order(0, attr, 0)
    }

    /// Finish, validating variable indices.
    pub fn build(self) -> Result<DenialConstraint, CurrencyError> {
        let conclusion = self.conclusion.ok_or(CurrencyError::SignatureMismatch {
            detail: "denial constraint lacks a conclusion".to_string(),
        })?;
        let check_var = |v: VarId| -> Result<(), CurrencyError> {
            if v >= self.num_vars {
                Err(CurrencyError::BadVariable {
                    var: v,
                    num_vars: self.num_vars,
                })
            } else {
                Ok(())
            }
        };
        check_var(conclusion.0)?;
        check_var(conclusion.2)?;
        for p in &self.premises {
            match p {
                Predicate::Order {
                    lesser, greater, ..
                } => {
                    check_var(*lesser)?;
                    check_var(*greater)?;
                }
                Predicate::Cmp { left, right, .. } => {
                    if let Term::Attr(v, _) = left {
                        check_var(*v)?;
                    }
                    if let Term::Attr(v, _) = right {
                        check_var(*v)?;
                    }
                }
            }
        }
        Ok(DenialConstraint {
            rel: self.rel,
            num_vars: self.num_vars,
            premises: self.premises,
            conclusion,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Tuple;
    use crate::schema::RelationSchema;
    use crate::value::Eid;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);

    fn inst_with(rows: &[(u64, i64, i64)]) -> TemporalInstance {
        let schema = RelationSchema::new("R", &["A", "B"]);
        let mut d = TemporalInstance::new(RelId(0), &schema);
        for &(e, a, b) in rows {
            d.push_tuple(Tuple::new(Eid(e), vec![Value::int(a), Value::int(b)]))
                .unwrap();
        }
        d
    }

    /// "Higher A ⇒ more current in A" (the paper's φ₁ shape).
    fn monotone_a() -> DenialConstraint {
        DenialConstraint::builder(RelId(0), 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_variables() {
        let err = DenialConstraint::builder(RelId(0), 1)
            .then_order(0, A, 1)
            .build();
        assert!(matches!(err, Err(CurrencyError::BadVariable { .. })));
        let err = DenialConstraint::builder(RelId(0), 2)
            .when_cmp(Term::attr(5, A), CmpOp::Eq, Term::val(1))
            .then_order(0, A, 1)
            .build();
        assert!(matches!(err, Err(CurrencyError::BadVariable { .. })));
        let err = DenialConstraint::builder(RelId(0), 2).build();
        assert!(matches!(err, Err(CurrencyError::SignatureMismatch { .. })));
    }

    #[test]
    fn grounding_monotone_constraint() {
        // Entity 1: A-values 10 < 20; entity 2: single tuple.
        let d = inst_with(&[(1, 10, 0), (1, 20, 0), (2, 5, 0)]);
        let rules = monotone_a().ground(&d);
        assert_eq!(
            rules,
            vec![GroundRule {
                premises: vec![],
                conclusion: Some(OrderEdge {
                    attr: A,
                    lesser: TupleId(0),
                    greater: TupleId(1)
                }),
            }]
        );
    }

    #[test]
    fn grounding_does_not_cross_entities() {
        let d = inst_with(&[(1, 10, 0), (2, 20, 0)]);
        assert!(monotone_a().ground(&d).is_empty());
    }

    #[test]
    fn grounding_order_premises() {
        // "t ≺_A s ⇒ t ≺_B s" (the paper's φ₃ shape).
        let dc = DenialConstraint::builder(RelId(0), 2)
            .when_order(0, A, 1)
            .then_order(0, B, 1)
            .build()
            .unwrap();
        let d = inst_with(&[(1, 0, 0), (1, 1, 1)]);
        let rules = dc.ground(&d);
        // Two non-vacuous instantiations: (t0,t1) and (t1,t0).
        assert_eq!(rules.len(), 2);
        for r in &rules {
            assert_eq!(r.premises.len(), 1);
            assert_eq!(r.premises[0].attr, A);
            let c = r.conclusion.unwrap();
            assert_eq!(c.attr, B);
            assert_eq!(
                (r.premises[0].lesser, r.premises[0].greater),
                (c.lesser, c.greater)
            );
        }
    }

    #[test]
    fn reflexive_premise_instantiations_are_vacuous() {
        let dc = DenialConstraint::builder(RelId(0), 2)
            .when_order(0, A, 1)
            .then_order(0, B, 1)
            .build()
            .unwrap();
        let d = inst_with(&[(1, 0, 0)]); // single tuple: only t0,t0 binding
        assert!(dc.ground(&d).is_empty());
    }

    #[test]
    fn falsum_conclusion() {
        // "No two tuples of one entity may share an A value" — premises
        // must never hold (conclusion t₀ ≺ t₀).
        let dc = DenialConstraint::builder(RelId(0), 2)
            .when_cmp(Term::attr(0, A), CmpOp::Eq, Term::attr(1, A))
            .when_cmp(Term::attr(0, B), CmpOp::Ne, Term::attr(1, B))
            .then_false()
            .build()
            .unwrap();
        let d = inst_with(&[(1, 7, 0), (1, 7, 1)]);
        let rules = dc.ground(&d);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].conclusion, None);
        assert!(rules[0].premises.is_empty());
    }

    #[test]
    fn ground_entity_partitions_full_grounding() {
        // Two entities with in-group value spreads: the per-entity
        // groundings must union (disjointly) to the full grounding.
        let d = inst_with(&[(1, 10, 0), (1, 20, 0), (2, 5, 0), (2, 7, 0)]);
        let dc = monotone_a();
        let full = dc.ground(&d);
        let mut merged: Vec<GroundRule> = [Eid(1), Eid(2)]
            .into_iter()
            .flat_map(|e| dc.ground_entity(&d, e))
            .collect();
        merged.sort();
        assert_eq!(full, merged);
        assert!(dc.ground_entity(&d, Eid(9)).is_empty(), "unknown entity");
    }

    #[test]
    fn satisfied_by_oracle() {
        let d = inst_with(&[(1, 10, 0), (1, 20, 0)]);
        let dc = monotone_a();
        // Completion where t0 ≺ t1 in A: satisfied.
        let good =
            |attr: AttrId, l: TupleId, g: TupleId| attr == A && l == TupleId(0) && g == TupleId(1);
        assert!(dc.satisfied_by(&d, &good));
        // Completion with the opposite order: violated.
        let bad =
            |attr: AttrId, l: TupleId, g: TupleId| attr == A && l == TupleId(1) && g == TupleId(0);
        assert!(!dc.satisfied_by(&d, &bad));
    }

    #[test]
    fn status_style_constraint_with_constants() {
        // "married is more current than single in attribute B" (φ₂ shape),
        // written over string values.
        let schema = RelationSchema::new("R", &["status", "LN"]);
        let mut d = TemporalInstance::new(RelId(0), &schema);
        let t0 = d
            .push_tuple(Tuple::new(
                Eid(1),
                vec![Value::str("single"), Value::str("Smith")],
            ))
            .unwrap();
        let t1 = d
            .push_tuple(Tuple::new(
                Eid(1),
                vec![Value::str("married"), Value::str("Dupont")],
            ))
            .unwrap();
        let status = AttrId(0);
        let ln = AttrId(1);
        let dc = DenialConstraint::builder(RelId(0), 2)
            .when_cmp(Term::attr(0, status), CmpOp::Eq, Term::val("married"))
            .when_cmp(Term::attr(1, status), CmpOp::Eq, Term::val("single"))
            .then_order(1, ln, 0)
            .build()
            .unwrap();
        let rules = dc.ground(&d);
        assert_eq!(rules.len(), 1);
        assert_eq!(
            rules[0].conclusion,
            Some(OrderEdge {
                attr: ln,
                lesser: t0,
                greater: t1
            })
        );
    }

    #[test]
    fn max_attr_index_scans_everything() {
        let dc = DenialConstraint::builder(RelId(0), 2)
            .when_cmp(Term::attr(0, AttrId(4)), CmpOp::Eq, Term::val(1))
            .when_order(0, AttrId(2), 1)
            .then_order(0, AttrId(1), 1)
            .build()
            .unwrap();
        assert_eq!(dc.max_attr_index(), 4);
    }

    #[test]
    fn cmp_op_semantics() {
        let a = Value::int(1);
        let b = Value::int(2);
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Le.eval(&a, &a));
        assert!(CmpOp::Gt.eval(&b, &a));
        assert!(CmpOp::Ge.eval(&b, &b));
        assert!(CmpOp::Eq.eval(&a, &a));
        assert!(CmpOp::Ne.eval(&a, &b));
    }
}
