//! Temporal instances: relations with partial currency orders.

use crate::error::CurrencyError;
use crate::instance::{NormalInstance, Tuple};
use crate::order::OrderRelation;
use crate::schema::{AttrId, RelId, RelationSchema};
use crate::value::{Eid, TupleId, Value};
use std::collections::BTreeMap;

/// A temporal instance `Dₜ = (D, ≺_{A₁}, …, ≺_{Aₙ})` (paper §2).
///
/// A plain relation plus one partial currency order per proper attribute.
/// The invariants enforced here:
///
/// * tuples match the schema arity;
/// * order pairs relate tuples of the *same entity* (checked on insertion);
/// * the closure of every attribute order is acyclic (checked by
///   [`TemporalInstance::validate`], since a single insertion cannot see
///   future pairs).
///
/// ## Removal
///
/// Tuple ids are dense indices and must stay stable across updates (the
/// delta layer, copy functions and cached engines all hold ids), so
/// [`TemporalInstance::remove_tuple`] *tombstones*: the slot is kept but
/// the tuple leaves its entity group and sheds its order pairs.  Every
/// semantic consumer (grounding, encoding, completion enumeration) walks
/// entity groups, so a tombstoned tuple simply stops existing; only
/// [`TemporalInstance::len`] still counts the slot (it is the id
/// allocator's high-water mark).  Sustained insert/retract churn grows
/// the instance by one slot per removal; [`TemporalInstance::compact`]
/// reclaims the tombstone slots by remapping the surviving ids densely —
/// an explicitly invalidating operation every id holder must mirror
/// (see [`crate::Specification::compact`]).
#[derive(Clone, Debug)]
pub struct TemporalInstance {
    rel: RelId,
    rel_name: String,
    arity: usize,
    tuples: Vec<Tuple>,
    /// `removed[i]` — tuple `i` is a tombstone (see struct docs).
    removed: Vec<bool>,
    /// Number of `true` entries in `removed` (kept so liveness stats and
    /// the compaction no-op check are O(1)).
    tombstones: usize,
    orders: Vec<OrderRelation>,
    groups: BTreeMap<Eid, Vec<TupleId>>,
    /// Lowest tombstoned slot index (`usize::MAX` when there are none).
    /// Pure sweep-acceleration state for the incremental compactor —
    /// never serialized, always recomputable from `removed`.
    min_tombstone: usize,
    /// The contiguous dead block `[start, end)` bubbled up by the
    /// in-progress incremental sweep (valid only while `start` equals
    /// `min_tombstone`; see [`TemporalInstance::compact_step_bounds`]).
    /// Like `min_tombstone`, a non-serialized hint.
    sweep_block: Option<(u32, u32)>,
}

/// The instance-level outcome of one incremental-compaction slice (see
/// [`TemporalInstance::compact_slice_at`]).  Crate-internal: the
/// specification layer consumes it to fix up copy functions and build
/// the public [`crate::CompactSlice`] record.
#[derive(Clone, Debug)]
pub(crate) struct SliceOutcome {
    /// Live tuples moved down by the slice: `(old id, new id, entity)`.
    pub moved: Vec<(TupleId, TupleId, Eid)>,
    /// Dead slots scanned by the slice (candidates for orphan
    /// copy-mapping drops at the specification layer).
    pub dead: Vec<TupleId>,
    /// Translation table for slots `[write, write + remap.len())`:
    /// `Some(new)` for moved live tuples, `None` for dead slots.
    pub remap: Vec<Option<TupleId>>,
    /// Slots truncated off the end of the slot vector (nonzero only
    /// when the slice's scan reached the end).
    pub reclaimed: usize,
}

impl TemporalInstance {
    /// Create an empty temporal instance for `rel` with the given schema.
    pub fn new(rel: RelId, schema: &RelationSchema) -> TemporalInstance {
        TemporalInstance {
            rel,
            rel_name: schema.name().to_string(),
            arity: schema.arity(),
            tuples: Vec::new(),
            removed: Vec::new(),
            tombstones: 0,
            orders: vec![OrderRelation::new(); schema.arity()],
            groups: BTreeMap::new(),
            min_tombstone: usize::MAX,
            sweep_block: None,
        }
    }

    /// The relation id.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The relation name (for diagnostics).
    pub fn rel_name(&self) -> &str {
        &self.rel_name
    }

    /// Number of proper attributes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuple *slots* (tombstones included) — the exclusive upper
    /// bound on valid [`TupleId`]s.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Number of live (non-tombstoned) tuples.
    pub fn live_len(&self) -> usize {
        self.tuples.len() - self.tombstones
    }

    /// Number of tombstoned slots (reclaimable by
    /// [`TemporalInstance::compact`]).
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// `true` if the instance holds no tuple slots.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple, checking arity.  Returns the new tuple's id.
    pub fn push_tuple(&mut self, t: Tuple) -> Result<TupleId, CurrencyError> {
        if t.values.len() != self.arity {
            return Err(CurrencyError::ArityMismatch {
                relation: self.rel_name.clone(),
                expected: self.arity,
                got: t.values.len(),
            });
        }
        let id = TupleId(self.tuples.len() as u32);
        self.groups.entry(t.eid).or_default().push(id);
        self.tuples.push(t);
        self.removed.push(false);
        Ok(id)
    }

    /// Tombstone a tuple: it leaves its entity group and sheds every order
    /// pair mentioning it, but its id slot stays allocated (ids held by
    /// copy functions or cached engines never dangle — they resolve to
    /// "unknown tuple" through [`TemporalInstance::tuple_checked`]).
    ///
    /// Fails if the id is out of range or already removed.  Copy-function
    /// mappings referencing the tuple are the specification's concern; see
    /// `Specification::apply_delta`, which cascades them.
    pub fn remove_tuple(&mut self, id: TupleId) -> Result<(), CurrencyError> {
        if id.index() >= self.tuples.len() || self.removed[id.index()] {
            return Err(CurrencyError::UnknownTuple {
                rel: self.rel,
                tuple: id,
            });
        }
        self.removed[id.index()] = true;
        self.tombstones += 1;
        self.min_tombstone = self.min_tombstone.min(id.index());
        let eid = self.tuples[id.index()].eid;
        let group = self.groups.get_mut(&eid).expect("tuple was grouped");
        group.retain(|&t| t != id);
        if group.is_empty() {
            self.groups.remove(&eid);
        }
        for o in &mut self.orders {
            o.remove_involving(id);
        }
        Ok(())
    }

    /// `true` if the id names a live (non-tombstoned) tuple.
    pub fn is_live(&self, id: TupleId) -> bool {
        id.index() < self.tuples.len() && !self.removed[id.index()]
    }

    /// The tuple with the given id.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.index()]
    }

    /// The tuple with the given id, with bounds *and* liveness checking —
    /// tombstoned ids resolve to [`CurrencyError::UnknownTuple`].
    pub fn tuple_checked(&self, id: TupleId) -> Result<&Tuple, CurrencyError> {
        if self.is_live(id) {
            Ok(&self.tuples[id.index()])
        } else {
            Err(CurrencyError::UnknownTuple {
                rel: self.rel,
                tuple: id,
            })
        }
    }

    /// Iterate over the live `(TupleId, &Tuple)` pairs (tombstones skipped).
    pub fn tuples(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.removed[i])
            .map(|(i, t)| (TupleId(i as u32), t))
    }

    /// The tuple ids of an entity, in insertion order.
    pub fn entity_group(&self, eid: Eid) -> &[TupleId] {
        self.groups.get(&eid).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Iterate over `(Eid, group)` pairs, ordered by entity id.
    pub fn entity_groups(&self) -> impl Iterator<Item = (Eid, &[TupleId])> {
        self.groups.iter().map(|(e, g)| (*e, g.as_slice()))
    }

    /// The set of entities appearing in the instance.
    pub fn entities(&self) -> impl Iterator<Item = Eid> + '_ {
        self.groups.keys().copied()
    }

    /// Record the initial currency fact `lesser ≺_attr greater`.
    ///
    /// Fails if the tuples belong to different entities or the attribute is
    /// out of range.  Cycle freedom is a global property checked by
    /// [`TemporalInstance::validate`].
    pub fn add_order(
        &mut self,
        attr: AttrId,
        lesser: TupleId,
        greater: TupleId,
    ) -> Result<(), CurrencyError> {
        if attr.index() >= self.arity {
            return Err(CurrencyError::AttrOutOfRange {
                rel: self.rel,
                attr,
            });
        }
        let el = self.tuple_checked(lesser)?.eid;
        let eg = self.tuple_checked(greater)?.eid;
        if el != eg {
            return Err(CurrencyError::CrossEntityOrder {
                rel: self.rel,
                attr,
                entities: (el, eg),
            });
        }
        self.orders[attr.index()].add(lesser, greater);
        Ok(())
    }

    /// The partial currency order of an attribute (raw pairs, not closed).
    pub fn order(&self, attr: AttrId) -> &OrderRelation {
        &self.orders[attr.index()]
    }

    /// Check global invariants: every attribute order acyclic.
    pub fn validate(&self) -> Result<(), CurrencyError> {
        for (i, o) in self.orders.iter().enumerate() {
            if let Some(w) = o.find_cycle() {
                return Err(CurrencyError::CyclicOrder {
                    rel: self.rel,
                    attr: AttrId(i as u32),
                    witness: w,
                });
            }
        }
        Ok(())
    }

    /// Forget the orders: the embedded normal instance `D` (live tuples).
    pub fn as_normal(&self) -> NormalInstance {
        let mut n = NormalInstance::new(self.rel);
        for (_, t) in self.tuples() {
            n.push(t.clone());
        }
        n
    }

    /// `true` if an identical tuple (same entity, same values) exists.
    pub fn contains_tuple_value(&self, eid: Eid, values: &[Value]) -> bool {
        self.entity_group(eid)
            .iter()
            .any(|&tid| self.tuple(tid).values == values)
    }

    /// Reclaim every tombstone slot, remapping the surviving tuples onto
    /// dense ids (relative order preserved).  Returns the number of slots
    /// reclaimed and the translation table `old id → new id` (`None` for
    /// tombstones).  With no tombstones this is a free no-op: nothing is
    /// touched and the returned table is **empty, meaning identity** —
    /// the convention every remap consumer honors, so steady-state
    /// compaction ticks allocate nothing.
    ///
    /// **Every external holder of this instance's tuple ids is
    /// invalidated** — copy-function mappings, cached encodings, ids kept
    /// by applications.  Use [`crate::Specification::compact`] (which
    /// remaps the copy functions and hands back the tables) or
    /// `CurrencyEngine::compact` (which also rebuilds the compiled
    /// components) rather than calling this directly.
    pub fn compact(&mut self) -> (usize, Vec<Option<TupleId>>) {
        let slots = self.tuples.len();
        if self.tombstones == 0 {
            return (0, Vec::new());
        }
        let mut remap: Vec<Option<TupleId>> = vec![None; slots];
        let mut next = 0u32;
        for (i, slot) in remap.iter_mut().enumerate() {
            if !self.removed[i] {
                *slot = Some(TupleId(next));
                next += 1;
            }
        }
        let removed = std::mem::take(&mut self.removed);
        self.tuples = std::mem::take(&mut self.tuples)
            .into_iter()
            .zip(removed)
            .filter(|(_, dead)| !dead)
            .map(|(t, _)| t)
            .collect();
        self.removed = vec![false; self.tuples.len()];
        let reclaimed = slots - self.tuples.len();
        self.tombstones = 0;
        // Entity groups hold live ids only; the remap is monotonic, so
        // in-group insertion order survives.
        for group in self.groups.values_mut() {
            for id in group.iter_mut() {
                *id = remap[id.index()].expect("grouped ids are live");
            }
        }
        for order in &mut self.orders {
            order.remap(&remap);
        }
        self.min_tombstone = usize::MAX;
        self.sweep_block = None;
        (reclaimed, remap)
    }

    /// Bounds of the next canonical incremental-compaction slice, or
    /// `None` when there is nothing to reclaim.
    ///
    /// The incremental sweep bubbles one contiguous dead block upward:
    /// `write` is the lowest tombstoned slot, `[write, start)` is the
    /// dead block accumulated by earlier slices of this sweep (skipped,
    /// already processed), and `[start, end)` is the next scan window of
    /// at most `max_scan` slots.  A retraction below `write` between
    /// slices simply restarts the sweep at the new minimum — correctness
    /// never depends on the cached block, only the cost does.
    pub fn compact_step_bounds(&self, max_scan: usize) -> Option<(u32, u32, u32)> {
        if self.tombstones == 0 {
            return None;
        }
        let write = self.min_tombstone;
        debug_assert!(self.removed[write], "min_tombstone hint must be exact");
        let start = match self.sweep_block {
            Some((bs, be)) if bs as usize == write => be as usize,
            _ => write,
        };
        let end = (start + max_scan.max(1)).min(self.tuples.len());
        Some((write as u32, start as u32, end as u32))
    }

    /// Execute one incremental-compaction slice with explicit bounds:
    /// scan slots `[start, end)` in ascending order, moving every live
    /// tuple down onto the dead block that begins at `write`, and
    /// truncate the slot vector when the scan reaches its end.  The
    /// instance is a *valid* instance before and after every slice —
    /// entity groups and order pairs are rewritten in place for exactly
    /// the moved tuples, so the slice costs O(scan + affected pairs),
    /// never O(instance).
    ///
    /// Bounds are validated (`write ≤ start ≤ end ≤ len`, with
    /// `[write, start)` entirely dead), so replaying a logged slice
    /// against a diverged instance fails cleanly instead of corrupting
    /// slots.  Use [`crate::Specification::compact_slice`] /
    /// [`crate::Specification::compact_slice_at`] rather than calling
    /// this directly: like [`TemporalInstance::compact`], a slice
    /// invalidates external holders of the moved ids, and the
    /// specification layer keeps copy functions in lockstep.
    pub(crate) fn compact_slice_at(
        &mut self,
        write: u32,
        start: u32,
        end: u32,
    ) -> Result<SliceOutcome, CurrencyError> {
        let len = self.tuples.len();
        let (w0, s0, e0) = (write as usize, start as usize, end as usize);
        let bad_bounds = || CurrencyError::InvalidCompactSlice {
            rel: self.rel,
            write,
            start,
            end,
            slots: len,
        };
        if w0 > s0 || s0 > e0 || e0 > len {
            return Err(bad_bounds());
        }
        if self.removed[w0..s0].iter().any(|&dead| !dead) {
            return Err(bad_bounds());
        }

        // Pass 1: bubble live tuples down onto the dead block.  One dead
        // slot is consumed at `w` and one created at the vacated source,
        // so the tombstone count is conserved until truncation.
        let mut moved: Vec<(TupleId, TupleId, Eid)> = Vec::new();
        let mut dead: Vec<TupleId> = Vec::new();
        let mut remap: Vec<Option<TupleId>> = vec![None; s0 - w0];
        let mut w = w0;
        for i in s0..e0 {
            if self.removed[i] {
                dead.push(TupleId(i as u32));
                remap.push(None);
            } else {
                if !self.removed[w] {
                    // Only reachable through corrupt explicit bounds: a
                    // canonical sweep always starts on a tombstone.
                    return Err(bad_bounds());
                }
                let eid = self.tuples[i].eid;
                self.tuples.swap(w, i);
                self.removed[w] = false;
                self.removed[i] = true;
                moved.push((TupleId(i as u32), TupleId(w as u32), eid));
                remap.push(Some(TupleId(w as u32)));
                w += 1;
            }
        }

        // Pass 2: rewrite the order pairs touching a moved endpoint.
        // Orders only relate same-entity tuples, so walking the affected
        // entities' (pre-update) member lists via `pairs_from` finds
        // every such pair without an O(order) scan.  Fresh target ids
        // were dead (pairs shed on removal), so the re-adds cannot
        // collide with surviving pairs.
        if !moved.is_empty() {
            let moved_map: BTreeMap<TupleId, TupleId> =
                moved.iter().map(|&(old, new, _)| (old, new)).collect();
            let affected: std::collections::BTreeSet<Eid> =
                moved.iter().map(|&(_, _, eid)| eid).collect();
            for order in &mut self.orders {
                if order.is_empty() {
                    continue;
                }
                let mut changed: Vec<((TupleId, TupleId), (TupleId, TupleId))> = Vec::new();
                for &eid in &affected {
                    let Some(members) = self.groups.get(&eid) else {
                        continue;
                    };
                    for &m in members {
                        for (l, g) in order.pairs_from(m) {
                            let nl = moved_map.get(&l).copied().unwrap_or(l);
                            let ng = moved_map.get(&g).copied().unwrap_or(g);
                            if (nl, ng) != (l, g) {
                                changed.push(((l, g), (nl, ng)));
                            }
                        }
                    }
                }
                for &((l, g), _) in &changed {
                    order.remove(l, g);
                }
                for &(_, (nl, ng)) in &changed {
                    order.add(nl, ng);
                }
            }
            // Pass 3: entity groups, moved entries only (in-group
            // insertion order survives because moves are monotone).
            for &(old, new, eid) in &moved {
                let group = self.groups.get_mut(&eid).expect("moved tuple is grouped");
                let slot = group
                    .iter_mut()
                    .find(|t| **t == old)
                    .expect("moved tuple appears in its entity group");
                *slot = new;
            }
        }

        // Truncate once the scan has reached the end of the slot vector:
        // `[w, e0)` is then a trailing all-dead block.
        let reclaimed = if e0 == len {
            self.tuples.truncate(w);
            self.removed.truncate(w);
            let reclaimed = len - w;
            self.tombstones -= reclaimed;
            self.sweep_block = None;
            if self.tombstones == 0 {
                self.min_tombstone = usize::MAX;
            }
            debug_assert!(self.tombstones == 0 || self.min_tombstone < w);
            reclaimed
        } else {
            if self.min_tombstone >= w0 {
                self.min_tombstone = if w < e0 {
                    w
                } else {
                    // Degenerate all-live scan (unreachable through
                    // canonical bounds): recompute the hint exactly.
                    self.removed.iter().position(|&d| d).unwrap_or(usize::MAX)
                };
            }
            self.sweep_block = (w < e0).then_some((w as u32, e0 as u32));
            0
        };
        Ok(SliceOutcome {
            moved,
            dead,
            remap,
            reclaimed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;

    fn schema() -> RelationSchema {
        RelationSchema::new("R", &["A", "B"])
    }

    fn inst() -> TemporalInstance {
        TemporalInstance::new(RelId(0), &schema())
    }

    fn tup(eid: u64, a: i64, b: i64) -> Tuple {
        Tuple::new(Eid(eid), vec![Value::int(a), Value::int(b)])
    }

    #[test]
    fn push_assigns_dense_ids_and_groups() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 10, 20)).unwrap();
        let t1 = d.push_tuple(tup(1, 11, 21)).unwrap();
        let t2 = d.push_tuple(tup(2, 12, 22)).unwrap();
        assert_eq!((t0, t1, t2), (TupleId(0), TupleId(1), TupleId(2)));
        assert_eq!(d.entity_group(Eid(1)), &[t0, t1]);
        assert_eq!(d.entity_group(Eid(2)), &[t2]);
        assert_eq!(d.entity_group(Eid(9)), &[] as &[TupleId]);
        assert_eq!(d.entities().count(), 2);
    }

    #[test]
    fn arity_is_enforced() {
        let mut d = inst();
        let bad = Tuple::new(Eid(1), vec![Value::int(1)]);
        assert!(matches!(
            d.push_tuple(bad),
            Err(CurrencyError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn cross_entity_orders_are_rejected() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(2, 0, 0)).unwrap();
        assert!(matches!(
            d.add_order(AttrId(0), t0, t1),
            Err(CurrencyError::CrossEntityOrder { .. })
        ));
    }

    #[test]
    fn out_of_range_attribute_rejected() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(1, 1, 1)).unwrap();
        assert!(matches!(
            d.add_order(AttrId(5), t0, t1),
            Err(CurrencyError::AttrOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_detects_cycles_through_closure() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(1, 1, 1)).unwrap();
        let t2 = d.push_tuple(tup(1, 2, 2)).unwrap();
        d.add_order(AttrId(0), t0, t1).unwrap();
        d.add_order(AttrId(0), t1, t2).unwrap();
        assert!(d.validate().is_ok());
        d.add_order(AttrId(0), t2, t0).unwrap();
        assert!(matches!(
            d.validate(),
            Err(CurrencyError::CyclicOrder { .. })
        ));
    }

    #[test]
    fn orders_are_per_attribute() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(1, 1, 1)).unwrap();
        d.add_order(AttrId(0), t0, t1).unwrap();
        // Opposite direction on a different attribute is fine (paper §2:
        // a tuple may be current in one attribute and stale in another).
        d.add_order(AttrId(1), t1, t0).unwrap();
        assert!(d.validate().is_ok());
        assert!(d.order(AttrId(0)).contains(t0, t1));
        assert!(d.order(AttrId(1)).contains(t1, t0));
        assert!(!d.order(AttrId(0)).contains(t1, t0));
    }

    #[test]
    fn as_normal_strips_orders() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(1, 1, 1)).unwrap();
        d.add_order(AttrId(0), t0, t1).unwrap();
        let n = d.as_normal();
        assert_eq!(n.len(), 2);
        assert_eq!(n.rel(), RelId(0));
    }

    #[test]
    fn remove_tuple_tombstones_without_shifting_ids() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(1, 1, 1)).unwrap();
        let t2 = d.push_tuple(tup(2, 2, 2)).unwrap();
        d.add_order(AttrId(0), t0, t1).unwrap();
        d.remove_tuple(t1).unwrap();
        // Ids are stable; the tombstone is everywhere invisible.
        assert_eq!(d.len(), 3, "slot count keeps the id space");
        assert_eq!(d.live_len(), 2);
        assert!(!d.is_live(t1));
        assert!(d.tuple_checked(t1).is_err());
        assert_eq!(d.entity_group(Eid(1)), &[t0]);
        assert!(d.order(AttrId(0)).is_empty(), "orders shed the tuple");
        assert_eq!(d.tuples().count(), 2);
        assert!(d.as_normal().contains(&tup(2, 2, 2)));
        // Removing it again (or a bogus id) fails.
        assert!(d.remove_tuple(t1).is_err());
        assert!(d.remove_tuple(TupleId(99)).is_err());
        // Removing an entity's last tuple drops the entity.
        d.remove_tuple(t2).unwrap();
        assert_eq!(d.entities().count(), 1);
        // New pushes still get fresh ids past the tombstones.
        let t3 = d.push_tuple(tup(1, 3, 3)).unwrap();
        assert_eq!(t3, TupleId(3));
        assert_eq!(d.entity_group(Eid(1)), &[t0, t3]);
    }

    #[test]
    fn compact_reclaims_tombstones_and_remaps_densely() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(1, 1, 1)).unwrap();
        let t2 = d.push_tuple(tup(2, 2, 2)).unwrap();
        let t3 = d.push_tuple(tup(1, 3, 3)).unwrap();
        d.add_order(AttrId(0), t0, t1).unwrap();
        d.add_order(AttrId(0), t1, t3).unwrap();
        d.remove_tuple(t1).unwrap();
        d.remove_tuple(t2).unwrap();
        assert_eq!(d.tombstones(), 2);
        let (reclaimed, remap) = d.compact();
        assert_eq!(reclaimed, 2);
        assert_eq!(
            remap,
            vec![Some(TupleId(0)), None, None, Some(TupleId(1))],
            "survivors get dense ids in order"
        );
        // The tuple vector actually shrank and liveness is total.
        assert_eq!(d.len(), 2);
        assert_eq!(d.live_len(), 2);
        assert_eq!(d.tombstones(), 0);
        assert_eq!(d.entity_group(Eid(1)), &[TupleId(0), TupleId(1)]);
        assert_eq!(d.tuple(TupleId(1)).values, tup(1, 3, 3).values);
        // Orders survived the remap (t1's pairs had been shed on removal).
        assert!(d.order(AttrId(0)).is_empty());
        assert!(d.validate().is_ok());
        // Compacting again is a free no-op: the empty table is the
        // identity convention, so nothing is allocated.
        let (again, remap) = d.compact();
        assert_eq!(again, 0);
        assert!(remap.is_empty());
        // New pushes reuse the reclaimed id space.
        assert_eq!(d.push_tuple(tup(3, 9, 9)).unwrap(), TupleId(2));
    }

    #[test]
    fn compact_remaps_surviving_order_pairs() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(2, 1, 1)).unwrap();
        let t2 = d.push_tuple(tup(1, 2, 2)).unwrap();
        d.add_order(AttrId(1), t0, t2).unwrap();
        d.remove_tuple(t1).unwrap();
        let (reclaimed, _) = d.compact();
        assert_eq!(reclaimed, 1);
        assert!(d.order(AttrId(1)).contains(TupleId(0), TupleId(1)));
        assert!(d.validate().is_ok());
    }

    #[test]
    fn sliced_sweep_matches_monolithic_compact() {
        // Interleaved live/dead pattern, drained with a tiny quantum:
        // the slice path must land on exactly the state compact() builds.
        for quantum in 1..=5usize {
            let mut d = inst();
            let mut ids = Vec::new();
            for i in 0..12i64 {
                ids.push(d.push_tuple(tup(1 + (i % 3) as u64, i, i)).unwrap());
            }
            d.add_order(AttrId(0), ids[0], ids[3]).unwrap();
            d.add_order(AttrId(0), ids[3], ids[9]).unwrap();
            d.add_order(AttrId(1), ids[11], ids[2]).unwrap();
            for &i in &[1usize, 4, 5, 7, 10] {
                d.remove_tuple(ids[i]).unwrap();
            }
            let mut reference = d.clone();
            let (ref_reclaimed, _) = reference.compact();

            let mut sliced = 0;
            let mut steps = 0;
            while let Some((w, s, e)) = d.compact_step_bounds(quantum) {
                let out = d.compact_slice_at(w, s, e).unwrap();
                sliced += out.reclaimed;
                steps += 1;
                assert!(steps < 100, "sweep must terminate");
                assert!(d.validate().is_ok(), "valid between slices");
            }
            assert_eq!(sliced, ref_reclaimed);
            assert_eq!(d.len(), reference.len());
            assert_eq!(d.tombstones(), 0);
            let got: Vec<_> = d.tuples().map(|(i, t)| (i, t.clone())).collect();
            let want: Vec<_> = reference.tuples().map(|(i, t)| (i, t.clone())).collect();
            assert_eq!(got, want, "quantum {quantum}");
            for eid in [Eid(1), Eid(2), Eid(3)] {
                assert_eq!(d.entity_group(eid), reference.entity_group(eid));
            }
            for a in 0..2 {
                assert_eq!(
                    d.order(AttrId(a)).iter().collect::<Vec<_>>(),
                    reference.order(AttrId(a)).iter().collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn slice_sweep_survives_interleaved_churn() {
        // Retractions and inserts *between* slices restart or extend the
        // sweep but never corrupt it.
        let mut d = inst();
        for i in 0..10 {
            d.push_tuple(tup(1, i, i)).unwrap();
        }
        for i in [0u32, 2, 4, 6] {
            d.remove_tuple(TupleId(i)).unwrap();
        }
        let (w, s, e) = d.compact_step_bounds(2).unwrap();
        d.compact_slice_at(w, s, e).unwrap();
        // Retract below the sweep block (slot 0 now holds the moved
        // value-1 tuple) and push a fresh tuple.
        d.remove_tuple(TupleId(0)).unwrap();
        let t = d.push_tuple(tup(1, 99, 99)).unwrap();
        assert_eq!(t.index(), d.len() - 1);
        let mut steps = 0;
        while let Some((w, s, e)) = d.compact_step_bounds(3) {
            d.compact_slice_at(w, s, e).unwrap();
            assert!(d.validate().is_ok());
            steps += 1;
            assert!(steps < 50);
        }
        assert_eq!(d.tombstones(), 0);
        assert_eq!(d.live_len(), d.len());
        let values: Vec<i64> = d
            .tuples()
            .map(|(_, t)| t.values[0].clone())
            .map(|v| match v {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(values, vec![3, 5, 7, 8, 9, 99], "order preserved");
    }

    #[test]
    fn slice_with_corrupt_bounds_is_rejected() {
        let mut d = inst();
        for i in 0..6 {
            d.push_tuple(tup(1, i, i)).unwrap();
        }
        d.remove_tuple(TupleId(2)).unwrap();
        // write must not exceed start, scan must stay in range, and the
        // skipped block must be dead.
        assert!(d.compact_slice_at(3, 2, 5).is_err());
        assert!(d.compact_slice_at(2, 3, 99).is_err());
        assert!(d.compact_slice_at(0, 2, 5).is_err(), "live skipped block");
        // A live write cursor (claiming slot 0 is dead) is rejected too.
        assert!(d.compact_slice_at(0, 0, 2).is_err());
        // The instance is untouched by the rejections.
        assert_eq!(d.tombstones(), 1);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn contains_tuple_value_matches_exactly() {
        let mut d = inst();
        d.push_tuple(tup(1, 0, 0)).unwrap();
        assert!(d.contains_tuple_value(Eid(1), &[Value::int(0), Value::int(0)]));
        assert!(!d.contains_tuple_value(Eid(1), &[Value::int(0), Value::int(1)]));
        assert!(!d.contains_tuple_value(Eid(2), &[Value::int(0), Value::int(0)]));
    }
}
