//! Temporal instances: relations with partial currency orders.

use crate::error::CurrencyError;
use crate::instance::{NormalInstance, Tuple};
use crate::order::OrderRelation;
use crate::schema::{AttrId, RelId, RelationSchema};
use crate::value::{Eid, TupleId, Value};
use std::collections::BTreeMap;

/// A temporal instance `Dₜ = (D, ≺_{A₁}, …, ≺_{Aₙ})` (paper §2).
///
/// A plain relation plus one partial currency order per proper attribute.
/// The invariants enforced here:
///
/// * tuples match the schema arity;
/// * order pairs relate tuples of the *same entity* (checked on insertion);
/// * the closure of every attribute order is acyclic (checked by
///   [`TemporalInstance::validate`], since a single insertion cannot see
///   future pairs).
#[derive(Clone, Debug)]
pub struct TemporalInstance {
    rel: RelId,
    rel_name: String,
    arity: usize,
    tuples: Vec<Tuple>,
    orders: Vec<OrderRelation>,
    groups: BTreeMap<Eid, Vec<TupleId>>,
}

impl TemporalInstance {
    /// Create an empty temporal instance for `rel` with the given schema.
    pub fn new(rel: RelId, schema: &RelationSchema) -> TemporalInstance {
        TemporalInstance {
            rel,
            rel_name: schema.name().to_string(),
            arity: schema.arity(),
            tuples: Vec::new(),
            orders: vec![OrderRelation::new(); schema.arity()],
            groups: BTreeMap::new(),
        }
    }

    /// The relation id.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The relation name (for diagnostics).
    pub fn rel_name(&self) -> &str {
        &self.rel_name
    }

    /// Number of proper attributes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if the instance holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple, checking arity.  Returns the new tuple's id.
    pub fn push_tuple(&mut self, t: Tuple) -> Result<TupleId, CurrencyError> {
        if t.values.len() != self.arity {
            return Err(CurrencyError::ArityMismatch {
                relation: self.rel_name.clone(),
                expected: self.arity,
                got: t.values.len(),
            });
        }
        let id = TupleId(self.tuples.len() as u32);
        self.groups.entry(t.eid).or_default().push(id);
        self.tuples.push(t);
        Ok(id)
    }

    /// The tuple with the given id.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.index()]
    }

    /// The tuple with the given id, with bounds checking.
    pub fn tuple_checked(&self, id: TupleId) -> Result<&Tuple, CurrencyError> {
        self.tuples
            .get(id.index())
            .ok_or(CurrencyError::UnknownTuple {
                rel: self.rel,
                tuple: id,
            })
    }

    /// Iterate over `(TupleId, &Tuple)` pairs.
    pub fn tuples(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (TupleId(i as u32), t))
    }

    /// The tuple ids of an entity, in insertion order.
    pub fn entity_group(&self, eid: Eid) -> &[TupleId] {
        self.groups.get(&eid).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Iterate over `(Eid, group)` pairs, ordered by entity id.
    pub fn entity_groups(&self) -> impl Iterator<Item = (Eid, &[TupleId])> {
        self.groups.iter().map(|(e, g)| (*e, g.as_slice()))
    }

    /// The set of entities appearing in the instance.
    pub fn entities(&self) -> impl Iterator<Item = Eid> + '_ {
        self.groups.keys().copied()
    }

    /// Record the initial currency fact `lesser ≺_attr greater`.
    ///
    /// Fails if the tuples belong to different entities or the attribute is
    /// out of range.  Cycle freedom is a global property checked by
    /// [`TemporalInstance::validate`].
    pub fn add_order(
        &mut self,
        attr: AttrId,
        lesser: TupleId,
        greater: TupleId,
    ) -> Result<(), CurrencyError> {
        if attr.index() >= self.arity {
            return Err(CurrencyError::AttrOutOfRange {
                rel: self.rel,
                attr,
            });
        }
        let el = self.tuple_checked(lesser)?.eid;
        let eg = self.tuple_checked(greater)?.eid;
        if el != eg {
            return Err(CurrencyError::CrossEntityOrder {
                rel: self.rel,
                attr,
                entities: (el, eg),
            });
        }
        self.orders[attr.index()].add(lesser, greater);
        Ok(())
    }

    /// The partial currency order of an attribute (raw pairs, not closed).
    pub fn order(&self, attr: AttrId) -> &OrderRelation {
        &self.orders[attr.index()]
    }

    /// Check global invariants: every attribute order acyclic.
    pub fn validate(&self) -> Result<(), CurrencyError> {
        for (i, o) in self.orders.iter().enumerate() {
            if let Some(w) = o.find_cycle() {
                return Err(CurrencyError::CyclicOrder {
                    rel: self.rel,
                    attr: AttrId(i as u32),
                    witness: w,
                });
            }
        }
        Ok(())
    }

    /// Forget the orders: the embedded normal instance `D`.
    pub fn as_normal(&self) -> NormalInstance {
        let mut n = NormalInstance::new(self.rel);
        for t in &self.tuples {
            n.push(t.clone());
        }
        n
    }

    /// `true` if an identical tuple (same entity, same values) exists.
    pub fn contains_tuple_value(&self, eid: Eid, values: &[Value]) -> bool {
        self.entity_group(eid)
            .iter()
            .any(|&tid| self.tuple(tid).values == values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;

    fn schema() -> RelationSchema {
        RelationSchema::new("R", &["A", "B"])
    }

    fn inst() -> TemporalInstance {
        TemporalInstance::new(RelId(0), &schema())
    }

    fn tup(eid: u64, a: i64, b: i64) -> Tuple {
        Tuple::new(Eid(eid), vec![Value::int(a), Value::int(b)])
    }

    #[test]
    fn push_assigns_dense_ids_and_groups() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 10, 20)).unwrap();
        let t1 = d.push_tuple(tup(1, 11, 21)).unwrap();
        let t2 = d.push_tuple(tup(2, 12, 22)).unwrap();
        assert_eq!((t0, t1, t2), (TupleId(0), TupleId(1), TupleId(2)));
        assert_eq!(d.entity_group(Eid(1)), &[t0, t1]);
        assert_eq!(d.entity_group(Eid(2)), &[t2]);
        assert_eq!(d.entity_group(Eid(9)), &[] as &[TupleId]);
        assert_eq!(d.entities().count(), 2);
    }

    #[test]
    fn arity_is_enforced() {
        let mut d = inst();
        let bad = Tuple::new(Eid(1), vec![Value::int(1)]);
        assert!(matches!(
            d.push_tuple(bad),
            Err(CurrencyError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn cross_entity_orders_are_rejected() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(2, 0, 0)).unwrap();
        assert!(matches!(
            d.add_order(AttrId(0), t0, t1),
            Err(CurrencyError::CrossEntityOrder { .. })
        ));
    }

    #[test]
    fn out_of_range_attribute_rejected() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(1, 1, 1)).unwrap();
        assert!(matches!(
            d.add_order(AttrId(5), t0, t1),
            Err(CurrencyError::AttrOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_detects_cycles_through_closure() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(1, 1, 1)).unwrap();
        let t2 = d.push_tuple(tup(1, 2, 2)).unwrap();
        d.add_order(AttrId(0), t0, t1).unwrap();
        d.add_order(AttrId(0), t1, t2).unwrap();
        assert!(d.validate().is_ok());
        d.add_order(AttrId(0), t2, t0).unwrap();
        assert!(matches!(
            d.validate(),
            Err(CurrencyError::CyclicOrder { .. })
        ));
    }

    #[test]
    fn orders_are_per_attribute() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(1, 1, 1)).unwrap();
        d.add_order(AttrId(0), t0, t1).unwrap();
        // Opposite direction on a different attribute is fine (paper §2:
        // a tuple may be current in one attribute and stale in another).
        d.add_order(AttrId(1), t1, t0).unwrap();
        assert!(d.validate().is_ok());
        assert!(d.order(AttrId(0)).contains(t0, t1));
        assert!(d.order(AttrId(1)).contains(t1, t0));
        assert!(!d.order(AttrId(0)).contains(t1, t0));
    }

    #[test]
    fn as_normal_strips_orders() {
        let mut d = inst();
        let t0 = d.push_tuple(tup(1, 0, 0)).unwrap();
        let t1 = d.push_tuple(tup(1, 1, 1)).unwrap();
        d.add_order(AttrId(0), t0, t1).unwrap();
        let n = d.as_normal();
        assert_eq!(n.len(), 2);
        assert_eq!(n.rel(), RelId(0));
    }

    #[test]
    fn contains_tuple_value_matches_exactly() {
        let mut d = inst();
        d.push_tuple(tup(1, 0, 0)).unwrap();
        assert!(d.contains_tuple_value(Eid(1), &[Value::int(0), Value::int(0)]));
        assert!(!d.contains_tuple_value(Eid(1), &[Value::int(0), Value::int(1)]));
        assert!(!d.contains_tuple_value(Eid(2), &[Value::int(0), Value::int(0)]));
    }
}
