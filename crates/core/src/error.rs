//! Error type shared across the model crate.

use crate::schema::{AttrId, RelId};
use crate::value::{Eid, TupleId};
use std::fmt;

/// Errors raised while constructing or validating model objects.
///
/// Construction errors are raised eagerly (e.g. pushing a tuple of the
/// wrong arity); validation errors are raised by
/// [`crate::Specification::validate`], which re-checks the global
/// invariants that individual setters cannot see.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CurrencyError {
    /// A tuple's value count does not match its schema.
    ArityMismatch {
        /// Relation involved.
        relation: String,
        /// Arity required by the schema.
        expected: usize,
        /// Arity supplied.
        got: usize,
    },
    /// A currency-order pair relates tuples of different entities.
    CrossEntityOrder {
        /// Relation involved.
        rel: RelId,
        /// Attribute of the offending order pair.
        attr: AttrId,
        /// The two entities.
        entities: (Eid, Eid),
    },
    /// The transitive closure of a currency order contains a cycle.
    CyclicOrder {
        /// Relation involved.
        rel: RelId,
        /// Attribute whose order is cyclic.
        attr: AttrId,
        /// A tuple on the cycle.
        witness: TupleId,
    },
    /// Unknown relation name.
    UnknownRelation {
        /// The name that failed to resolve.
        relation: String,
    },
    /// Duplicate relation name registered in a catalog.
    DuplicateRelation {
        /// The duplicated name.
        relation: String,
    },
    /// Unknown attribute name.
    UnknownAttribute {
        /// Relation searched.
        relation: String,
        /// The attribute name that failed to resolve.
        attribute: String,
    },
    /// An id referred to an out-of-range tuple.
    UnknownTuple {
        /// Relation searched.
        rel: RelId,
        /// The out-of-range id.
        tuple: TupleId,
    },
    /// An incremental-compaction slice carried bounds that do not
    /// describe a valid sweep state of the instance (replaying a logged
    /// slice against a diverged instance fails here instead of
    /// corrupting slots).
    InvalidCompactSlice {
        /// Relation the slice addressed.
        rel: RelId,
        /// Claimed start of the slice's write region.
        write: u32,
        /// Claimed first scanned slot.
        start: u32,
        /// Claimed scan end (exclusive).
        end: u32,
        /// The instance's actual slot count.
        slots: usize,
    },
    /// An id referred to an out-of-range attribute.
    AttrOutOfRange {
        /// Relation involved.
        rel: RelId,
        /// The out-of-range id.
        attr: AttrId,
    },
    /// A copy function violates the copying condition `t[Aᵢ] = s[Bᵢ]`.
    CopyValueMismatch {
        /// Index of the copy function within the specification.
        copy: usize,
        /// Target tuple.
        target: TupleId,
        /// Source tuple.
        source: TupleId,
        /// Offending attribute position within the signature.
        position: usize,
    },
    /// A delta referred to a copy-function index that does not exist.
    UnknownCopy {
        /// The out-of-range copy index.
        copy: usize,
    },
    /// A copy signature has mismatched attribute lists.
    SignatureMismatch {
        /// Human-readable detail.
        detail: String,
    },
    /// A denial constraint refers to a tuple variable it does not quantify.
    BadVariable {
        /// The out-of-range variable index.
        var: usize,
        /// Number of quantified variables.
        num_vars: usize,
    },
    /// A completion does not enumerate exactly the tuples of each entity.
    MalformedCompletion {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for CurrencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurrencyError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for relation {relation}: expected {expected} values, got {got}"
            ),
            CurrencyError::CrossEntityOrder { rel, attr, entities } => write!(
                f,
                "currency order on relation {rel:?}, attribute {attr:?} relates distinct entities {} and {}",
                entities.0, entities.1
            ),
            CurrencyError::CyclicOrder { rel, attr, witness } => write!(
                f,
                "currency order on relation {rel:?}, attribute {attr:?} is cyclic (witness tuple {witness})"
            ),
            CurrencyError::UnknownRelation { relation } => {
                write!(f, "unknown relation {relation}")
            }
            CurrencyError::DuplicateRelation { relation } => {
                write!(f, "relation {relation} registered twice")
            }
            CurrencyError::UnknownAttribute { relation, attribute } => {
                write!(f, "relation {relation} has no attribute {attribute}")
            }
            CurrencyError::UnknownTuple { rel, tuple } => {
                write!(f, "relation {rel:?} has no tuple {tuple}")
            }
            CurrencyError::InvalidCompactSlice {
                rel,
                write,
                start,
                end,
                slots,
            } => {
                write!(
                    f,
                    "compaction slice [write {write}, scan {start}..{end}) does not \
                     describe a sweep state of relation {rel:?} ({slots} slots)"
                )
            }
            CurrencyError::AttrOutOfRange { rel, attr } => {
                write!(f, "relation {rel:?} has no attribute index {attr:?}")
            }
            CurrencyError::CopyValueMismatch {
                copy,
                target,
                source,
                position,
            } => write!(
                f,
                "copy function #{copy} violates the copying condition at signature position {position}: target {target} ≠ source {source}"
            ),
            CurrencyError::UnknownCopy { copy } => {
                write!(f, "specification has no copy function #{copy}")
            }
            CurrencyError::SignatureMismatch { detail } => {
                write!(f, "malformed copy signature: {detail}")
            }
            CurrencyError::BadVariable { var, num_vars } => write!(
                f,
                "denial constraint uses tuple variable t{var} but quantifies only {num_vars} variables"
            ),
            CurrencyError::MalformedCompletion { detail } => {
                write!(f, "malformed completion: {detail}")
            }
        }
    }
}

impl std::error::Error for CurrencyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_readably() {
        let e = CurrencyError::ArityMismatch {
            relation: "Emp".into(),
            expected: 5,
            got: 3,
        };
        assert!(e.to_string().contains("Emp"));
        assert!(e.to_string().contains("5"));
        let e = CurrencyError::CrossEntityOrder {
            rel: RelId(0),
            attr: AttrId(1),
            entities: (Eid(1), Eid(2)),
        };
        assert!(e.to_string().contains("e1"));
        assert!(e.to_string().contains("e2"));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(CurrencyError::UnknownRelation {
            relation: "X".into(),
        });
        assert!(e.to_string().contains("X"));
    }
}
