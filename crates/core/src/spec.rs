//! Specifications: the top-level bundle of the data-currency model.

use crate::copy::CopyFunction;
use crate::denial::DenialConstraint;
use crate::error::CurrencyError;
use crate::schema::{AttrId, Catalog, RelId};
use crate::temporal::TemporalInstance;
use crate::value::TupleId;

/// What [`Specification::compact`] reclaimed, and how to translate
/// externally held tuple ids onto the compacted id space.
///
/// Equality compares the full translation tables — the durability layer
/// logs compaction reports and verifies on recovery that replaying the
/// same history reproduces the same remap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// Total tombstone slots reclaimed across all instances.
    pub reclaimed: usize,
    /// Per-relation translation tables, indexed by [`RelId`]: entry `i`
    /// of table `r` is the new id of relation `r`'s old tuple `i`
    /// (`None` — the slot was a tombstone and is gone).  An **empty**
    /// table means the relation had no tombstones and its ids are
    /// unchanged (identity) — the tombstone-free fast path allocates no
    /// tables at all.
    pub remap: Vec<Vec<Option<TupleId>>>,
}

impl CompactReport {
    /// Translate an old tuple id (`None` if the tuple had been removed;
    /// an empty/absent table is the identity).
    pub fn new_id(&self, rel: RelId, old: TupleId) -> Option<TupleId> {
        match self.remap.get(rel.index()) {
            None => Some(old),
            Some(table) if table.is_empty() => Some(old),
            Some(table) => table.get(old.index()).copied().flatten(),
        }
    }
}

/// One bounded slice of an incremental compaction sweep over a single
/// relation (see [`Specification::compact_slice`]).
///
/// A sweep bubbles one contiguous dead block upward through the slot
/// vector: the slice scanned slots `[start, end)`, moved the live
/// tuples it found down onto `[write, …)`, and left the (grown) dead
/// block behind — or truncated it, if the scan reached the end of the
/// vector.  Slices are *logged and replayed verbatim* by the durability
/// layer, so equality compares every field including the translation
/// table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactSlice {
    /// The relation the slice ran over.
    pub rel: RelId,
    /// First slot of the write region: scanned live tuples moved down
    /// onto `[write, …)`.
    pub write: u32,
    /// First slot scanned (`[write, start)` is the dead block bubbled up
    /// by earlier slices of the same sweep).
    pub start: u32,
    /// One past the last slot scanned (`end - start` bounds the slice's
    /// work).
    pub end: u32,
    /// Translation table for slots `[write, write + remap.len())` —
    /// always exactly `end - write` entries: `Some(new)` for live tuples
    /// the slice moved, `None` for dead slots.  Ids below `write` or at
    /// `end` and beyond are untouched by this slice.
    pub remap: Vec<Option<TupleId>>,
    /// Slots reclaimed (truncated off the slot vector) by this slice —
    /// nonzero only for a slice whose scan reached the end.
    pub reclaimed: u32,
}

impl CompactSlice {
    /// Translate a tuple id of [`CompactSlice::rel`] through this slice
    /// (`None` — the slot was dead and its id is gone).
    pub fn new_id(&self, old: TupleId) -> Option<TupleId> {
        let i = old.index();
        let w = self.write as usize;
        if i < w || i >= w + self.remap.len() {
            Some(old)
        } else {
            self.remap[i - w]
        }
    }
}

/// The outcome of one bounded compaction step: the slices it executed,
/// in order, plus composed totals.  Produced by
/// `CurrencyEngine::compact_step` (and the auto-step policy); the
/// durability layer logs one report per step and re-executes the slices
/// on recovery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactStepReport {
    /// Total tombstone slots reclaimed by this step's slices.
    pub reclaimed: usize,
    /// The slices executed, in execution order.  Their translation
    /// tables compose left to right — [`CompactStepReport::new_id`]
    /// folds them for external id holders.
    pub slices: Vec<CompactSlice>,
    /// `true` when no tombstones remain anywhere in the specification
    /// after this step (the incremental sweep has fully drained).
    pub done: bool,
}

impl CompactStepReport {
    /// Translate an old tuple id through every slice of the step, in
    /// order (`None` — the tuple's slot was reclaimed).  Reports from
    /// consecutive steps compose the same way: feed each step's result
    /// into the next.
    pub fn new_id(&self, rel: RelId, old: TupleId) -> Option<TupleId> {
        let mut id = old;
        for slice in self.slices.iter().filter(|s| s.rel == rel) {
            id = slice.new_id(id)?;
        }
        Some(id)
    }

    /// Fold another step's outcome into this one (slices concatenate in
    /// execution order, totals add, `done` takes the later verdict).
    pub fn absorb(&mut self, other: CompactStepReport) {
        self.reclaimed += other.reclaimed;
        self.slices.extend(other.slices);
        self.done = other.done;
    }
}

/// A specification `S` of data currency (paper §2): one temporal instance
/// per relation of the catalog, a set of denial constraints, and a set of
/// copy functions between the instances.
///
/// The semantics of `S` is its set of consistent completions `Mod(S)` —
/// see [`crate::Completion`] and the solvers in `currency-reason`.  `S` is
/// *consistent* iff `Mod(S) ≠ ∅`; deciding that is the paper's CPS problem
/// (Σᵖ₂-complete in general).
#[derive(Clone, Debug)]
pub struct Specification {
    catalog: Catalog,
    instances: Vec<TemporalInstance>,
    constraints: Vec<DenialConstraint>,
    copies: Vec<CopyFunction>,
}

impl Specification {
    /// Create a specification with one empty temporal instance per
    /// relation of the catalog.
    pub fn new(catalog: Catalog) -> Specification {
        let instances = catalog
            .iter()
            .map(|(rel, schema)| TemporalInstance::new(rel, schema))
            .collect();
        Specification {
            catalog,
            instances,
            constraints: Vec::new(),
            copies: Vec::new(),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Resolve a relation name.
    pub fn rel(&self, name: &str) -> Result<RelId, CurrencyError> {
        self.catalog
            .rel(name)
            .ok_or_else(|| CurrencyError::UnknownRelation {
                relation: name.to_string(),
            })
    }

    /// Resolve an attribute name within a relation.
    pub fn attr(&self, rel: RelId, name: &str) -> Result<AttrId, CurrencyError> {
        self.catalog.schema(rel).attr_checked(name)
    }

    /// The temporal instance of a relation.
    pub fn instance(&self, rel: RelId) -> &TemporalInstance {
        &self.instances[rel.index()]
    }

    /// Mutable access to a relation's temporal instance (to add tuples and
    /// initial currency orders).
    pub fn instance_mut(&mut self, rel: RelId) -> &mut TemporalInstance {
        &mut self.instances[rel.index()]
    }

    /// All temporal instances, indexed by relation.
    pub fn instances(&self) -> &[TemporalInstance] {
        &self.instances
    }

    /// Add a denial constraint after validating its attribute references.
    pub fn add_constraint(&mut self, dc: DenialConstraint) -> Result<(), CurrencyError> {
        self.check_constraint_schema(&dc)?;
        self.constraints.push(dc);
        Ok(())
    }

    /// Schema admissibility of a denial constraint: relation registered,
    /// attribute indices within its arity.  Shared between
    /// [`Specification::add_constraint`] and delta validation so the two
    /// can never drift.
    pub(crate) fn check_constraint_schema(
        &self,
        dc: &DenialConstraint,
    ) -> Result<(), CurrencyError> {
        let rel = dc.rel();
        if rel.index() >= self.catalog.len() {
            return Err(CurrencyError::UnknownRelation {
                relation: format!("{rel:?}"),
            });
        }
        let arity = self.catalog.schema(rel).arity();
        if dc.max_attr_index() >= arity {
            return Err(CurrencyError::AttrOutOfRange {
                rel,
                attr: AttrId(dc.max_attr_index() as u32),
            });
        }
        Ok(())
    }

    /// All denial constraints.
    pub fn constraints(&self) -> &[DenialConstraint] {
        &self.constraints
    }

    /// Denial constraints over a particular relation.
    pub fn constraints_for(&self, rel: RelId) -> impl Iterator<Item = &DenialConstraint> {
        self.constraints.iter().filter(move |c| c.rel() == rel)
    }

    /// `true` if the specification carries no denial constraints — the
    /// tractable regime of paper §6.
    pub fn has_no_constraints(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Add a copy function after validating its signature and copying
    /// condition.  Returns the copy function's index.
    ///
    /// The copy's entity-keyed mapping index is (re)built here, so copies
    /// attached to a specification always start with a fresh index no
    /// matter how they were assembled.
    pub fn add_copy(&mut self, mut cf: CopyFunction) -> Result<usize, CurrencyError> {
        self.check_copy_schema(cf.signature())?;
        let (target, source) = (cf.signature().target, cf.signature().source);
        let idx = self.copies.len();
        cf.validate(idx, self.instance(target), self.instance(source))?;
        cf.rebuild_index(self.instance(target), self.instance(source));
        self.copies.push(cf);
        Ok(idx)
    }

    /// Schema admissibility of a copy signature: both relations
    /// registered, correlated attributes within their arities.  Shared
    /// between [`Specification::add_copy`] and delta validation so the
    /// two can never drift (the copying condition itself is checked
    /// separately — against live instances here, against the delta
    /// simulation there).
    pub(crate) fn check_copy_schema(
        &self,
        sig: &crate::copy::CopySignature,
    ) -> Result<(), CurrencyError> {
        for (rel, attrs) in [
            (sig.target, &sig.target_attrs),
            (sig.source, &sig.source_attrs),
        ] {
            if rel.index() >= self.catalog.len() {
                return Err(CurrencyError::UnknownRelation {
                    relation: format!("{rel:?}"),
                });
            }
            let arity = self.catalog.schema(rel).arity();
            if let Some(&a) = attrs.iter().find(|a| a.index() >= arity) {
                return Err(CurrencyError::AttrOutOfRange { rel, attr: a });
            }
        }
        Ok(())
    }

    /// All copy functions.
    pub fn copies(&self) -> &[CopyFunction] {
        &self.copies
    }

    /// Mutable access to a copy function (used when *extending* copy
    /// functions, paper §4).  [`Specification::validate`] re-checks the
    /// copying condition afterwards.
    pub fn copy_mut(&mut self, idx: usize) -> &mut CopyFunction {
        &mut self.copies[idx]
    }

    /// Total number of mappings across all copy functions (`|ρ̄|`, the size
    /// measure of the paper's bounded-copying problem BCP).
    pub fn total_copy_size(&self) -> usize {
        self.copies.iter().map(|c| c.len()).sum()
    }

    /// Reclaim every tombstone slot across all instances, remapping the
    /// surviving tuple ids densely and rewriting everything that holds
    /// ids — entity groups, initial currency orders, and copy-function
    /// mappings (whose entity-keyed indexes are rebuilt).
    ///
    /// Long-lived specifications under insert/retract churn grow one dead
    /// slot per removal ([`TemporalInstance::remove_tuple`] tombstones to
    /// keep ids stable); compaction is the explicit point where that
    /// memory is handed back.  **Every externally held [`TupleId`] is
    /// invalidated** — translate through the returned
    /// [`CompactReport::remap`] tables.  Cached reasoning state built
    /// over the old ids (compiled encodings, partitions) must be
    /// rebuilt; `CurrencyEngine::compact` does that automatically.
    pub fn compact(&mut self) -> CompactReport {
        let mut report = CompactReport {
            reclaimed: 0,
            remap: Vec::with_capacity(self.instances.len()),
        };
        for inst in &mut self.instances {
            let (reclaimed, remap) = inst.compact();
            report.reclaimed += reclaimed;
            report.remap.push(remap);
        }
        if report.reclaimed > 0 {
            let Specification {
                instances, copies, ..
            } = self;
            for cf in copies.iter_mut() {
                let (target, source) = (cf.signature().target, cf.signature().source);
                let (t_remap, s_remap) = (
                    report.remap[target.index()].as_slice(),
                    report.remap[source.index()].as_slice(),
                );
                if t_remap.is_empty() && s_remap.is_empty() {
                    continue; // both relations untouched: mapping ids stand
                }
                // `remap_tuples` keeps a fresh index fresh (entities are
                // untouched by compaction); only a copy that was already
                // stale pays the instance-walking rebuild.
                cf.remap_tuples(t_remap, s_remap);
                if !cf.is_indexed() {
                    cf.rebuild_index(&instances[target.index()], &instances[source.index()]);
                }
            }
        }
        debug_assert!(self.validate().is_ok(), "compaction preserves invariants");
        report
    }

    /// Total tombstoned slots across all instances (what a full
    /// compaction sweep would reclaim).
    pub fn total_tombstones(&self) -> usize {
        self.instances.iter().map(|i| i.tombstones()).sum()
    }

    /// Execute the next canonical slice of an incremental compaction
    /// sweep, scanning at most `max_scan` slots: the bounded counterpart
    /// of [`Specification::compact`], costing O(scan + moved region)
    /// instead of O(specification).  Returns `None` when there is
    /// nothing left to reclaim.
    ///
    /// Relations drain lowest [`RelId`] first.  Between slices the
    /// specification is a *valid* specification over a dense-enough id
    /// space — entity groups, order pairs and copy mappings are
    /// rewritten in lockstep for exactly the moved tuples — so deltas
    /// and queries interleave freely with slices.  Once every slice has
    /// run (`slices` drain to `None`), the specification is
    /// byte-identical to what one [`Specification::compact`] call would
    /// have produced; `compact` stays the reference implementation the
    /// incremental path is differentially tested against.
    ///
    /// **The moved ids invalidate external holders** exactly like a
    /// monolithic compaction — translate through the returned slice's
    /// table ([`CompactSlice::new_id`], or fold a whole step with
    /// [`CompactStepReport::new_id`]).
    pub fn compact_slice(&mut self, max_scan: usize) -> Option<CompactSlice> {
        let inst = self.instances.iter().find(|i| i.tombstones() > 0)?;
        let rel = inst.rel();
        let (write, start, end) = inst.compact_step_bounds(max_scan)?;
        Some(
            self.compact_slice_at(rel, write, start, end)
                .expect("canonical bounds describe a valid slice"),
        )
    }

    /// Execute one compaction slice with explicit bounds — the replay
    /// path for slices logged by the durability layer.  Validates that
    /// the bounds describe a real sweep state of `rel`'s instance
    /// ([`CurrencyError::InvalidCompactSlice`] otherwise), so replaying
    /// against a diverged specification fails cleanly.
    pub fn compact_slice_at(
        &mut self,
        rel: RelId,
        write: u32,
        start: u32,
        end: u32,
    ) -> Result<CompactSlice, CurrencyError> {
        if rel.index() >= self.instances.len() {
            return Err(CurrencyError::InvalidCompactSlice {
                rel,
                write,
                start,
                end,
                slots: 0,
            });
        }
        let outcome = self.instances[rel.index()].compact_slice_at(write, start, end)?;
        if !outcome.moved.is_empty() || !outcome.dead.is_empty() {
            let moved_map: std::collections::BTreeMap<TupleId, TupleId> = outcome
                .moved
                .iter()
                .map(|&(old, new, _)| (old, new))
                .collect();
            for cf in &mut self.copies {
                cf.remap_slice(rel, &moved_map, &outcome.dead);
            }
        }
        debug_assert!(self.validate().is_ok(), "slices preserve invariants");
        Ok(CompactSlice {
            rel,
            write,
            start,
            end,
            remap: outcome.remap,
            reclaimed: outcome.reclaimed as u32,
        })
    }

    /// Re-check every global invariant: instance orders acyclic and
    /// entity-local, constraints within schema, copying conditions hold.
    pub fn validate(&self) -> Result<(), CurrencyError> {
        for inst in &self.instances {
            inst.validate()?;
        }
        for dc in &self.constraints {
            let arity = self.catalog.schema(dc.rel()).arity();
            if dc.max_attr_index() >= arity {
                return Err(CurrencyError::AttrOutOfRange {
                    rel: dc.rel(),
                    attr: AttrId(dc.max_attr_index() as u32),
                });
            }
        }
        for (i, cf) in self.copies.iter().enumerate() {
            let sig = cf.signature();
            cf.validate(i, self.instance(sig.target), self.instance(sig.source))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy::CopySignature;
    use crate::denial::{CmpOp, DenialConstraint, Term};
    use crate::instance::Tuple;
    use crate::schema::RelationSchema;
    use crate::value::{Eid, Value};

    fn two_rel_spec() -> (Specification, RelId, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A", "B"]));
        let s = cat.add(RelationSchema::new("S", &["X"]));
        (Specification::new(cat), r, s)
    }

    #[test]
    fn new_spec_has_empty_instances() {
        let (spec, r, s) = two_rel_spec();
        assert!(spec.instance(r).is_empty());
        assert!(spec.instance(s).is_empty());
        assert!(spec.has_no_constraints());
        assert_eq!(spec.total_copy_size(), 0);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn name_resolution() {
        let (spec, r, _) = two_rel_spec();
        assert_eq!(spec.rel("R").unwrap(), r);
        assert!(spec.rel("Q").is_err());
        assert_eq!(spec.attr(r, "B").unwrap(), AttrId(1));
        assert!(spec.attr(r, "Z").is_err());
    }

    #[test]
    fn constraint_attribute_ranges_checked() {
        let (mut spec, r, _) = two_rel_spec();
        let ok = DenialConstraint::builder(r, 2)
            .when_cmp(
                Term::attr(0, AttrId(1)),
                CmpOp::Gt,
                Term::attr(1, AttrId(1)),
            )
            .then_order(1, AttrId(1), 0)
            .build()
            .unwrap();
        assert!(spec.add_constraint(ok).is_ok());
        let bad = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, AttrId(9)), CmpOp::Eq, Term::val(1))
            .then_order(0, AttrId(0), 1)
            .build()
            .unwrap();
        assert!(matches!(
            spec.add_constraint(bad),
            Err(CurrencyError::AttrOutOfRange { .. })
        ));
        assert_eq!(spec.constraints().len(), 1);
        assert_eq!(spec.constraints_for(r).count(), 1);
    }

    #[test]
    fn copy_function_validated_on_add() {
        let (mut spec, r, s) = two_rel_spec();
        let tr = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(2)]))
            .unwrap();
        let ts = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let sig = CopySignature::new(r, vec![AttrId(0)], s, vec![AttrId(0)]).unwrap();
        let mut cf = CopyFunction::new(sig.clone());
        cf.set_mapping(tr, ts);
        assert!(spec.add_copy(cf).is_ok());
        // Value-mismatched mapping is rejected.
        let mut bad =
            CopyFunction::new(CopySignature::new(r, vec![AttrId(1)], s, vec![AttrId(0)]).unwrap());
        bad.set_mapping(tr, ts); // 2 ≠ 1
        assert!(matches!(
            spec.add_copy(bad),
            Err(CurrencyError::CopyValueMismatch { .. })
        ));
        assert_eq!(spec.copies().len(), 1);
        assert_eq!(spec.total_copy_size(), 1);
    }

    #[test]
    fn compact_remaps_copy_mappings_and_reports_tables() {
        let (mut spec, r, s) = two_rel_spec();
        let pad = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(5), vec![Value::int(9), Value::int(9)]))
            .unwrap();
        let tr = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(2)]))
            .unwrap();
        let dead_s = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(9), vec![Value::int(7)]))
            .unwrap();
        let ts = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let sig = CopySignature::new(r, vec![AttrId(0)], s, vec![AttrId(0)]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(tr, ts);
        spec.add_copy(cf).unwrap();
        assert!(spec.copies()[0].is_indexed(), "add_copy builds the index");
        // Tombstone one tuple on each side of the copy's relations.
        spec.instance_mut(r).remove_tuple(pad).unwrap();
        spec.instance_mut(s).remove_tuple(dead_s).unwrap();
        let report = spec.compact();
        assert_eq!(report.reclaimed, 2);
        assert_eq!(report.new_id(r, tr), Some(TupleId(0)));
        assert_eq!(report.new_id(r, pad), None);
        assert_eq!(report.new_id(s, ts), Some(TupleId(0)));
        // The mapping followed both remaps and the index is fresh again.
        assert_eq!(spec.copies()[0].mapping(TupleId(0)), Some(TupleId(0)));
        assert!(spec.copies()[0].is_indexed());
        assert!(spec.validate().is_ok());
        // No tombstones left: compact is now a pure no-op.
        assert_eq!(spec.compact().reclaimed, 0);
    }

    #[test]
    fn compact_sheds_mappings_orphaned_by_direct_removal() {
        // `remove_tuple` documents that cascading copy mappings is the
        // caller's concern; a caller who skips the cascade must get a
        // clean compaction (mapping dropped), not a panic.
        let (mut spec, r, s) = two_rel_spec();
        let tr = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(2)]))
            .unwrap();
        let ts = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let sig = CopySignature::new(r, vec![AttrId(0)], s, vec![AttrId(0)]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(tr, ts);
        spec.add_copy(cf).unwrap();
        spec.instance_mut(s).remove_tuple(ts).unwrap(); // no cascade
        let report = spec.compact();
        assert_eq!(report.reclaimed, 1);
        assert!(spec.copies()[0].is_empty(), "orphaned mapping shed");
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn compact_keeps_live_indexes_live_and_rebuilds_stale_ones() {
        // Regression (PR 5): compaction used to stale every copy's
        // entity-keyed index and pay a full rebuild; now a fresh index is
        // translated in place and must still answer region queries
        // exactly like a from-scratch rebuild.
        let (mut spec, r, s) = two_rel_spec();
        let mut ids = Vec::new();
        for v in 0..3i64 {
            let tr = spec
                .instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(v), Value::int(v)]))
                .unwrap();
            let ts = spec
                .instance_mut(s)
                .push_tuple(Tuple::new(Eid(7), vec![Value::int(v)]))
                .unwrap();
            ids.push((tr, ts));
        }
        let sig = CopySignature::new(r, vec![AttrId(0)], s, vec![AttrId(0)]).unwrap();
        let mut cf = CopyFunction::new(sig);
        for &(tr, ts) in &ids {
            cf.set_mapping(tr, ts);
        }
        spec.add_copy(cf).unwrap();
        // Stale the index (fresh state), then make one copy stale and one
        // fresh across two compactions to cover both paths.
        spec.instance_mut(r).remove_tuple(ids[0].0).unwrap();
        spec.copy_mut(0).remove_target_mapping(ids[0].0);
        assert!(spec.copies()[0].is_indexed());
        spec.compact();
        assert!(
            spec.copies()[0].is_indexed(),
            "fresh index survives compaction in place"
        );
        let mut rebuilt = spec.copies()[0].clone();
        rebuilt.rebuild_index(spec.instance(r), spec.instance(s));
        assert_eq!(
            spec.copies()[0].obligations_for_region(
                spec.instance(r),
                spec.instance(s),
                &std::collections::BTreeSet::from([Eid(1)]),
                &std::collections::BTreeSet::new(),
            ),
            rebuilt.obligations_for_region(
                spec.instance(r),
                spec.instance(s),
                &std::collections::BTreeSet::from([Eid(1)]),
                &std::collections::BTreeSet::new(),
            ),
            "in-place translated index answers like a rebuilt one"
        );
        assert!(spec.validate().is_ok());
        // Stale path: an entity-blind mutation (re-writing an existing
        // pair) stales the index; the next compaction falls back to the
        // rebuild and re-freshens it.
        let ts = spec.copies()[0].mapping(TupleId(0)).unwrap();
        spec.copy_mut(0).set_mapping(TupleId(0), ts);
        assert!(!spec.copies()[0].is_indexed());
        spec.copy_mut(0).remove_target_mapping(TupleId(1));
        spec.instance_mut(s).remove_tuple(TupleId(2)).unwrap();
        spec.compact();
        assert!(
            spec.copies()[0].is_indexed(),
            "stale index rebuilt by compaction"
        );
        assert!(spec.validate().is_ok());
    }

    /// A two-relation spec with a copy function, mirrored churn
    /// tombstones on both sides, and a few order pairs — the fixture the
    /// incremental-compaction differentials run over.
    fn churned_copy_spec() -> (Specification, RelId, RelId) {
        let (mut spec, r, s) = two_rel_spec();
        let mut pairs = Vec::new();
        for v in 0..10i64 {
            let tr = spec
                .instance_mut(r)
                .push_tuple(Tuple::new(
                    Eid(1 + (v as u64 % 3)),
                    vec![Value::int(v), Value::int(v)],
                ))
                .unwrap();
            let ts = spec
                .instance_mut(s)
                .push_tuple(Tuple::new(Eid(20 + (v as u64 % 3)), vec![Value::int(v)]))
                .unwrap();
            pairs.push((tr, ts));
        }
        spec.instance_mut(r)
            .add_order(AttrId(0), pairs[0].0, pairs[3].0)
            .unwrap();
        spec.instance_mut(r)
            .add_order(AttrId(1), pairs[6].0, pairs[9].0)
            .unwrap();
        spec.instance_mut(s)
            .add_order(AttrId(0), pairs[2].1, pairs[8].1)
            .unwrap();
        let sig = CopySignature::new(r, vec![AttrId(0)], s, vec![AttrId(0)]).unwrap();
        let mut cf = CopyFunction::new(sig);
        for &(tr, ts) in &pairs {
            cf.set_mapping(tr, ts);
        }
        spec.add_copy(cf).unwrap();
        // Tombstone a scattered subset on both relations, cascading the
        // copy mappings like the delta layer would.
        for &i in &[1usize, 4, 5, 7] {
            let (tr, ts) = pairs[i];
            spec.copy_mut(0).remove_target_mapping(tr);
            spec.instance_mut(r).remove_tuple(tr).unwrap();
            spec.instance_mut(s).remove_tuple(ts).unwrap();
        }
        (spec, r, s)
    }

    #[test]
    fn sliced_compaction_is_byte_identical_to_monolithic() {
        for quantum in [1usize, 2, 3, 7, 64] {
            let (mut spec, _, _) = churned_copy_spec();
            let mut reference = spec.clone();
            let ref_report = reference.compact();

            let mut step = CompactStepReport::default();
            while let Some(slice) = spec.compact_slice(quantum) {
                step.reclaimed += slice.reclaimed as usize;
                step.slices.push(slice);
                assert!(spec.validate().is_ok(), "valid between slices");
                assert!(step.slices.len() < 200, "sweep terminates");
            }
            step.done = spec.total_tombstones() == 0;
            assert!(step.done);
            assert_eq!(step.reclaimed, ref_report.reclaimed, "quantum {quantum}");
            assert_eq!(
                crate::wire::encode_spec(&spec),
                crate::wire::encode_spec(&reference),
                "drained spec byte-identical to compact(), quantum {quantum}"
            );
            // The composed slice tables agree with the monolithic
            // translation on every old id of both relations.
            for rel in [RelId(0), RelId(1)] {
                for old in 0..10u32 {
                    assert_eq!(
                        step.new_id(rel, TupleId(old)),
                        ref_report.new_id(rel, TupleId(old)),
                        "rel {rel:?} id {old} quantum {quantum}"
                    );
                }
            }
        }
    }

    #[test]
    fn logged_slices_replay_to_the_same_state() {
        // Re-executing a sweep's logged bounds via compact_slice_at must
        // reproduce the slices (and the state) exactly — the durability
        // layer's recovery contract.
        let (mut spec, _, _) = churned_copy_spec();
        let mut replayed = spec.clone();
        let mut log = Vec::new();
        while let Some(slice) = spec.compact_slice(3) {
            log.push(slice);
        }
        for slice in &log {
            let got = replayed
                .compact_slice_at(slice.rel, slice.write, slice.start, slice.end)
                .unwrap();
            assert_eq!(&got, slice, "replayed slice identical");
        }
        assert_eq!(
            crate::wire::encode_spec(&spec),
            crate::wire::encode_spec(&replayed)
        );
    }

    #[test]
    fn slices_shed_orphaned_mappings_like_compact() {
        let (mut spec, r, s) = two_rel_spec();
        let tr = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(2)]))
            .unwrap();
        let ts = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let sig = CopySignature::new(r, vec![AttrId(0)], s, vec![AttrId(0)]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(tr, ts);
        spec.add_copy(cf).unwrap();
        spec.instance_mut(s).remove_tuple(ts).unwrap(); // no cascade
        while spec.compact_slice(4).is_some() {}
        assert!(spec.copies()[0].is_empty(), "orphaned mapping shed");
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn slice_replay_against_diverged_spec_fails_cleanly() {
        let (mut spec, _, _) = churned_copy_spec();
        let slice = spec.clone().compact_slice(4).unwrap();
        // Diverge: reclaim everything first, then replay the stale slice.
        spec.compact();
        assert!(matches!(
            spec.compact_slice_at(slice.rel, slice.write, slice.start, slice.end),
            Err(CurrencyError::InvalidCompactSlice { .. })
        ));
        // Unknown relation is rejected, not a panic.
        assert!(spec.compact_slice_at(RelId(99), 0, 0, 0).is_err());
    }

    #[test]
    fn validate_catches_late_order_cycles() {
        let (mut spec, r, _) = two_rel_spec();
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(0), Value::int(0)]))
            .unwrap();
        let t1 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(1)]))
            .unwrap();
        spec.instance_mut(r).add_order(AttrId(0), t0, t1).unwrap();
        spec.instance_mut(r).add_order(AttrId(0), t1, t0).unwrap();
        assert!(matches!(
            spec.validate(),
            Err(CurrencyError::CyclicOrder { .. })
        ));
    }
}
