//! Specifications: the top-level bundle of the data-currency model.

use crate::copy::CopyFunction;
use crate::denial::DenialConstraint;
use crate::error::CurrencyError;
use crate::schema::{AttrId, Catalog, RelId};
use crate::temporal::TemporalInstance;

/// A specification `S` of data currency (paper §2): one temporal instance
/// per relation of the catalog, a set of denial constraints, and a set of
/// copy functions between the instances.
///
/// The semantics of `S` is its set of consistent completions `Mod(S)` —
/// see [`crate::Completion`] and the solvers in `currency-reason`.  `S` is
/// *consistent* iff `Mod(S) ≠ ∅`; deciding that is the paper's CPS problem
/// (Σᵖ₂-complete in general).
#[derive(Clone, Debug)]
pub struct Specification {
    catalog: Catalog,
    instances: Vec<TemporalInstance>,
    constraints: Vec<DenialConstraint>,
    copies: Vec<CopyFunction>,
}

impl Specification {
    /// Create a specification with one empty temporal instance per
    /// relation of the catalog.
    pub fn new(catalog: Catalog) -> Specification {
        let instances = catalog
            .iter()
            .map(|(rel, schema)| TemporalInstance::new(rel, schema))
            .collect();
        Specification {
            catalog,
            instances,
            constraints: Vec::new(),
            copies: Vec::new(),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Resolve a relation name.
    pub fn rel(&self, name: &str) -> Result<RelId, CurrencyError> {
        self.catalog
            .rel(name)
            .ok_or_else(|| CurrencyError::UnknownRelation {
                relation: name.to_string(),
            })
    }

    /// Resolve an attribute name within a relation.
    pub fn attr(&self, rel: RelId, name: &str) -> Result<AttrId, CurrencyError> {
        self.catalog.schema(rel).attr_checked(name)
    }

    /// The temporal instance of a relation.
    pub fn instance(&self, rel: RelId) -> &TemporalInstance {
        &self.instances[rel.index()]
    }

    /// Mutable access to a relation's temporal instance (to add tuples and
    /// initial currency orders).
    pub fn instance_mut(&mut self, rel: RelId) -> &mut TemporalInstance {
        &mut self.instances[rel.index()]
    }

    /// All temporal instances, indexed by relation.
    pub fn instances(&self) -> &[TemporalInstance] {
        &self.instances
    }

    /// Add a denial constraint after validating its attribute references.
    pub fn add_constraint(&mut self, dc: DenialConstraint) -> Result<(), CurrencyError> {
        self.check_constraint_schema(&dc)?;
        self.constraints.push(dc);
        Ok(())
    }

    /// Schema admissibility of a denial constraint: relation registered,
    /// attribute indices within its arity.  Shared between
    /// [`Specification::add_constraint`] and delta validation so the two
    /// can never drift.
    pub(crate) fn check_constraint_schema(
        &self,
        dc: &DenialConstraint,
    ) -> Result<(), CurrencyError> {
        let rel = dc.rel();
        if rel.index() >= self.catalog.len() {
            return Err(CurrencyError::UnknownRelation {
                relation: format!("{rel:?}"),
            });
        }
        let arity = self.catalog.schema(rel).arity();
        if dc.max_attr_index() >= arity {
            return Err(CurrencyError::AttrOutOfRange {
                rel,
                attr: AttrId(dc.max_attr_index() as u32),
            });
        }
        Ok(())
    }

    /// All denial constraints.
    pub fn constraints(&self) -> &[DenialConstraint] {
        &self.constraints
    }

    /// Denial constraints over a particular relation.
    pub fn constraints_for(&self, rel: RelId) -> impl Iterator<Item = &DenialConstraint> {
        self.constraints.iter().filter(move |c| c.rel() == rel)
    }

    /// `true` if the specification carries no denial constraints — the
    /// tractable regime of paper §6.
    pub fn has_no_constraints(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Add a copy function after validating its signature and copying
    /// condition.  Returns the copy function's index.
    pub fn add_copy(&mut self, cf: CopyFunction) -> Result<usize, CurrencyError> {
        self.check_copy_schema(cf.signature())?;
        let sig = cf.signature();
        let idx = self.copies.len();
        cf.validate(idx, self.instance(sig.target), self.instance(sig.source))?;
        self.copies.push(cf);
        Ok(idx)
    }

    /// Schema admissibility of a copy signature: both relations
    /// registered, correlated attributes within their arities.  Shared
    /// between [`Specification::add_copy`] and delta validation so the
    /// two can never drift (the copying condition itself is checked
    /// separately — against live instances here, against the delta
    /// simulation there).
    pub(crate) fn check_copy_schema(
        &self,
        sig: &crate::copy::CopySignature,
    ) -> Result<(), CurrencyError> {
        for (rel, attrs) in [
            (sig.target, &sig.target_attrs),
            (sig.source, &sig.source_attrs),
        ] {
            if rel.index() >= self.catalog.len() {
                return Err(CurrencyError::UnknownRelation {
                    relation: format!("{rel:?}"),
                });
            }
            let arity = self.catalog.schema(rel).arity();
            if let Some(&a) = attrs.iter().find(|a| a.index() >= arity) {
                return Err(CurrencyError::AttrOutOfRange { rel, attr: a });
            }
        }
        Ok(())
    }

    /// All copy functions.
    pub fn copies(&self) -> &[CopyFunction] {
        &self.copies
    }

    /// Mutable access to a copy function (used when *extending* copy
    /// functions, paper §4).  [`Specification::validate`] re-checks the
    /// copying condition afterwards.
    pub fn copy_mut(&mut self, idx: usize) -> &mut CopyFunction {
        &mut self.copies[idx]
    }

    /// Total number of mappings across all copy functions (`|ρ̄|`, the size
    /// measure of the paper's bounded-copying problem BCP).
    pub fn total_copy_size(&self) -> usize {
        self.copies.iter().map(|c| c.len()).sum()
    }

    /// Re-check every global invariant: instance orders acyclic and
    /// entity-local, constraints within schema, copying conditions hold.
    pub fn validate(&self) -> Result<(), CurrencyError> {
        for inst in &self.instances {
            inst.validate()?;
        }
        for dc in &self.constraints {
            let arity = self.catalog.schema(dc.rel()).arity();
            if dc.max_attr_index() >= arity {
                return Err(CurrencyError::AttrOutOfRange {
                    rel: dc.rel(),
                    attr: AttrId(dc.max_attr_index() as u32),
                });
            }
        }
        for (i, cf) in self.copies.iter().enumerate() {
            let sig = cf.signature();
            cf.validate(i, self.instance(sig.target), self.instance(sig.source))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy::CopySignature;
    use crate::denial::{CmpOp, DenialConstraint, Term};
    use crate::instance::Tuple;
    use crate::schema::RelationSchema;
    use crate::value::{Eid, Value};

    fn two_rel_spec() -> (Specification, RelId, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A", "B"]));
        let s = cat.add(RelationSchema::new("S", &["X"]));
        (Specification::new(cat), r, s)
    }

    #[test]
    fn new_spec_has_empty_instances() {
        let (spec, r, s) = two_rel_spec();
        assert!(spec.instance(r).is_empty());
        assert!(spec.instance(s).is_empty());
        assert!(spec.has_no_constraints());
        assert_eq!(spec.total_copy_size(), 0);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn name_resolution() {
        let (spec, r, _) = two_rel_spec();
        assert_eq!(spec.rel("R").unwrap(), r);
        assert!(spec.rel("Q").is_err());
        assert_eq!(spec.attr(r, "B").unwrap(), AttrId(1));
        assert!(spec.attr(r, "Z").is_err());
    }

    #[test]
    fn constraint_attribute_ranges_checked() {
        let (mut spec, r, _) = two_rel_spec();
        let ok = DenialConstraint::builder(r, 2)
            .when_cmp(
                Term::attr(0, AttrId(1)),
                CmpOp::Gt,
                Term::attr(1, AttrId(1)),
            )
            .then_order(1, AttrId(1), 0)
            .build()
            .unwrap();
        assert!(spec.add_constraint(ok).is_ok());
        let bad = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, AttrId(9)), CmpOp::Eq, Term::val(1))
            .then_order(0, AttrId(0), 1)
            .build()
            .unwrap();
        assert!(matches!(
            spec.add_constraint(bad),
            Err(CurrencyError::AttrOutOfRange { .. })
        ));
        assert_eq!(spec.constraints().len(), 1);
        assert_eq!(spec.constraints_for(r).count(), 1);
    }

    #[test]
    fn copy_function_validated_on_add() {
        let (mut spec, r, s) = two_rel_spec();
        let tr = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(2)]))
            .unwrap();
        let ts = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let sig = CopySignature::new(r, vec![AttrId(0)], s, vec![AttrId(0)]).unwrap();
        let mut cf = CopyFunction::new(sig.clone());
        cf.set_mapping(tr, ts);
        assert!(spec.add_copy(cf).is_ok());
        // Value-mismatched mapping is rejected.
        let mut bad =
            CopyFunction::new(CopySignature::new(r, vec![AttrId(1)], s, vec![AttrId(0)]).unwrap());
        bad.set_mapping(tr, ts); // 2 ≠ 1
        assert!(matches!(
            spec.add_copy(bad),
            Err(CurrencyError::CopyValueMismatch { .. })
        ));
        assert_eq!(spec.copies().len(), 1);
        assert_eq!(spec.total_copy_size(), 1);
    }

    #[test]
    fn validate_catches_late_order_cycles() {
        let (mut spec, r, _) = two_rel_spec();
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(0), Value::int(0)]))
            .unwrap();
        let t1 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(1)]))
            .unwrap();
        spec.instance_mut(r).add_order(AttrId(0), t0, t1).unwrap();
        spec.instance_mut(r).add_order(AttrId(0), t1, t0).unwrap();
        assert!(matches!(
            spec.validate(),
            Err(CurrencyError::CyclicOrder { .. })
        ));
    }
}
