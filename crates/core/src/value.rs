//! Attribute values, entity ids and tuple ids.

use std::fmt;

/// An attribute value.
///
/// The model is untyped in the paper; we provide the value kinds its
/// examples and reductions use: integers, strings, booleans, and *fresh
/// constants*.  Fresh constants implement the `poss(S)` construction of the
/// paper's Proposition 6.3 (the PTIME algorithm for certain current answers
/// to SP queries): a fresh constant is distinct from every ordinary value
/// and from every other fresh constant.
///
/// `Value` has a total order (variant rank, then payload) so that values can
/// live in ordered collections and so the built-in comparison predicates
/// (`<`, `≤`, …) of denial constraints are well-defined.  Cross-kind
/// comparisons are permitted but are only meaningful within a kind, exactly
/// as in the paper where built-ins are "defined on particular domains".
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean; used by the reduction gadgets for truth values.
    Bool(bool),
    /// A 64-bit integer (salaries, budgets, positions, …).
    Int(i64),
    /// A string (names, addresses, statuses, the `#`/`$` marker symbols of
    /// the paper's reductions, …).
    Str(String),
    /// A fresh constant `c_{e,ℓ}`, distinct from all other values.
    Fresh(u64),
}

impl Value {
    /// Convenience constructor for integers.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// Convenience constructor for strings.
    pub fn str(v: impl Into<String>) -> Value {
        Value::Str(v.into())
    }

    /// Convenience constructor for booleans.
    pub fn bool(v: bool) -> Value {
        Value::Bool(v)
    }

    /// `true` iff this is a fresh constant (see [`Value::Fresh`]).
    pub fn is_fresh(&self) -> bool {
        matches!(self, Value::Fresh(_))
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Fresh(n) => write!(f, "⟨fresh#{n}⟩"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Fresh(n) => write!(f, "⟨fresh#{n}⟩"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// An entity id.
///
/// The paper assumes entity resolution has already grouped tuples by the
/// real-world entity they describe (the `EID` column, after Codd 1979);
/// currency orders only ever compare tuples of the same entity.  Entity ids
/// are plain integers here; mapping external keys to dense ids is the
/// caller's concern (`currency-datagen` does this for the paper scenarios).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Eid(pub u64);

impl fmt::Display for Eid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A tuple id, unique *within one temporal instance*.
///
/// Ids are dense indices assigned by
/// [`crate::TemporalInstance::push_tuple`] in insertion order, which lets
/// per-tuple state (orders, copy mappings, SAT variables) live in flat
/// structures keyed by `(RelId, TupleId)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The dense index of this tuple id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_constructors_and_accessors() {
        assert_eq!(Value::int(42).as_int(), Some(42));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::bool(true), Value::Bool(true));
        assert!(Value::Fresh(0).is_fresh());
        assert!(!Value::int(0).is_fresh());
        assert_eq!(Value::int(1).as_str(), None);
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn fresh_constants_are_pairwise_distinct() {
        assert_ne!(Value::Fresh(0), Value::Fresh(1));
        assert_ne!(Value::Fresh(0), Value::int(0));
        assert_ne!(Value::Fresh(0), Value::str("fresh"));
        assert_eq!(Value::Fresh(3), Value::Fresh(3));
    }

    #[test]
    fn ordering_is_total_and_consistent_within_kinds() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::bool(false) < Value::bool(true));
        // A total order exists across kinds (arbitrary but fixed).
        let mut vals = vec![
            Value::str("z"),
            Value::int(5),
            Value::bool(true),
            Value::Fresh(1),
        ];
        vals.sort();
        vals.dedup();
        assert_eq!(vals.len(), 4);
    }

    #[test]
    fn conversions_from_primitives() {
        let v: Value = 7i64.into();
        assert_eq!(v, Value::int(7));
        let v: Value = "hi".into();
        assert_eq!(v, Value::str("hi"));
        let v: Value = true.into();
        assert_eq!(v, Value::bool(true));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::int(3).to_string(), "3");
        assert_eq!(Value::str("a b").to_string(), "a b");
        assert_eq!(Eid(4).to_string(), "e4");
        assert_eq!(TupleId(9).to_string(), "t9");
    }
}
