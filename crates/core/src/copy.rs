//! Copy functions: provenance links that transport currency orders.
//!
//! A copy function `ρ` of signature `R₁[Ā] ⇐ R₂[B̄]` (paper §2) is a partial
//! mapping from the tuples of a *target* instance of `R₁` to tuples of a
//! *source* instance of `R₂`, recording that the `Ā`-attributes of a target
//! tuple were imported from the `B̄`-attributes of its source tuple.  Two
//! conditions give copy functions their semantics:
//!
//! * the **copying condition** — mapped tuples agree on the copied
//!   attributes (`t[Aᵢ] = s[Bᵢ]`), checked by [`CopyFunction::validate`];
//! * **≺-compatibility** — completed currency orders of the source carry
//!   over to the target: if `ρ(t₁) = s₁`, `ρ(t₂) = s₂`, the `t`s share an
//!   entity and the `s`s share an entity, then `s₁ ≺_{Bᵢ} s₂` forces
//!   `t₁ ≺_{Aᵢ} t₂`.  This is a property of completions, enforced by the
//!   reasoners; [`CopyFunction::compatibility_obligations`] enumerates the
//!   ground implications.

use crate::denial::OrderEdge;
use crate::error::CurrencyError;
use crate::schema::{AttrId, RelId};
use crate::temporal::TemporalInstance;
use crate::value::{Eid, TupleId};
use std::collections::BTreeMap;

/// The signature `target[Ā] ⇐ source[B̄]` of a copy function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CopySignature {
    /// Relation whose tuples received values (the importing side, `R₁`).
    pub target: RelId,
    /// Relation the values came from (`R₂`).
    pub source: RelId,
    /// Correlated attribute list `Ā` on the target.
    pub target_attrs: Vec<AttrId>,
    /// Correlated attribute list `B̄` on the source (same length as `Ā`).
    pub source_attrs: Vec<AttrId>,
}

impl CopySignature {
    /// Build a signature, checking the attribute lists have equal length
    /// and are duplicate-free on the target side.
    pub fn new(
        target: RelId,
        target_attrs: Vec<AttrId>,
        source: RelId,
        source_attrs: Vec<AttrId>,
    ) -> Result<CopySignature, CurrencyError> {
        if target_attrs.len() != source_attrs.len() {
            return Err(CurrencyError::SignatureMismatch {
                detail: format!(
                    "target lists {} attributes but source lists {}",
                    target_attrs.len(),
                    source_attrs.len()
                ),
            });
        }
        let mut seen = target_attrs.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != target_attrs.len() {
            return Err(CurrencyError::SignatureMismatch {
                detail: "duplicate target attribute in copy signature".to_string(),
            });
        }
        Ok(CopySignature {
            target,
            source,
            target_attrs,
            source_attrs,
        })
    }

    /// Number of correlated attribute pairs.
    pub fn width(&self) -> usize {
        self.target_attrs.len()
    }

    /// `true` if the signature covers every proper attribute of the target
    /// relation.  Only such functions may import *new* tuples when extended
    /// (paper §4: "only copy functions that cover all attributes but EID
    /// of `Rᵢ` can be extended" with fresh tuples).
    pub fn covers_all_target_attrs(&self, target_arity: usize) -> bool {
        let mut covered = vec![false; target_arity];
        for a in &self.target_attrs {
            if a.index() < target_arity {
                covered[a.index()] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }
}

/// A copy function: a signature plus the partial tuple mapping.
#[derive(Clone, Debug)]
pub struct CopyFunction {
    sig: CopySignature,
    map: BTreeMap<TupleId, TupleId>,
}

impl CopyFunction {
    /// Create an empty copy function with the given signature.
    pub fn new(sig: CopySignature) -> CopyFunction {
        CopyFunction {
            sig,
            map: BTreeMap::new(),
        }
    }

    /// The signature.
    pub fn signature(&self) -> &CopySignature {
        &self.sig
    }

    /// Record `ρ(target) = source`.  Last write wins; the copying condition
    /// is checked by [`CopyFunction::validate`] against concrete instances.
    pub fn set_mapping(&mut self, target: TupleId, source: TupleId) {
        self.map.insert(target, source);
    }

    /// `ρ(target)`, if defined.
    pub fn mapping(&self, target: TupleId) -> Option<TupleId> {
        self.map.get(&target).copied()
    }

    /// Keep only the mappings `f(target, source)` accepts, returning the
    /// dropped pairs.  Used to cascade tuple removals: a mapping whose
    /// endpoint is gone must go with it.
    pub fn retain_mappings(
        &mut self,
        mut f: impl FnMut(TupleId, TupleId) -> bool,
    ) -> Vec<(TupleId, TupleId)> {
        let mut dropped = Vec::new();
        self.map.retain(|&t, &mut s| {
            let keep = f(t, s);
            if !keep {
                dropped.push((t, s));
            }
            keep
        });
        dropped
    }

    /// Iterate over `(target, source)` pairs.
    pub fn mappings(&self) -> impl Iterator<Item = (TupleId, TupleId)> + '_ {
        self.map.iter().map(|(t, s)| (*t, *s))
    }

    /// Number of mapped tuples (the `|ρ|` of the paper's BCP problem).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no tuple is mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Check the copying condition against concrete target and source
    /// instances: every mapped pair agrees on the correlated attributes.
    ///
    /// `copy_index` is only used to label errors.
    pub fn validate(
        &self,
        copy_index: usize,
        target: &TemporalInstance,
        source: &TemporalInstance,
    ) -> Result<(), CurrencyError> {
        for (&t, &s) in &self.map {
            let tt = target.tuple_checked(t)?;
            let st = source.tuple_checked(s)?;
            for (pos, (ta, sa)) in self
                .sig
                .target_attrs
                .iter()
                .zip(&self.sig.source_attrs)
                .enumerate()
            {
                if tt.value(*ta) != st.value(*sa) {
                    return Err(CurrencyError::CopyValueMismatch {
                        copy: copy_index,
                        target: t,
                        source: s,
                        position: pos,
                    });
                }
            }
        }
        Ok(())
    }

    /// Enumerate the ground ≺-compatibility obligations.
    ///
    /// Each returned pair `(source_edge, target_edge)` reads: *if* the
    /// completed source order contains `source_edge`, *then* the completed
    /// target order must contain `target_edge`.  Obligations are generated
    /// for every ordered pair of mapped target tuples sharing an entity
    /// whose sources also share an entity, and for every correlated
    /// attribute position.
    pub fn compatibility_obligations(
        &self,
        target: &TemporalInstance,
        source: &TemporalInstance,
    ) -> Vec<(OrderEdge, OrderEdge)> {
        self.compatibility_obligations_filtered(target, source, |_, _| true)
    }

    /// [`CopyFunction::compatibility_obligations`] restricted to the
    /// obligations `keep(target_entity, source_entity)` accepts.
    ///
    /// Mapped pairs are grouped by their `(target entity, source entity)`
    /// cell pair first, so the quadratic pair enumeration runs only within
    /// accepted groups — this is what lets the incremental partition
    /// re-derive the obligations of a few dirty cells without paying for
    /// the whole mapping.
    pub fn compatibility_obligations_filtered(
        &self,
        target: &TemporalInstance,
        source: &TemporalInstance,
        keep: impl Fn(Eid, Eid) -> bool,
    ) -> Vec<(OrderEdge, OrderEdge)> {
        let mut groups: BTreeMap<(Eid, Eid), Vec<(TupleId, TupleId)>> = BTreeMap::new();
        for (&t, &s) in &self.map {
            groups
                .entry((target.tuple(t).eid, source.tuple(s).eid))
                .or_default()
                .push((t, s));
        }
        let mut out = Vec::new();
        for ((te, se), pairs) in groups {
            if !keep(te, se) {
                continue;
            }
            for &(t1, s1) in &pairs {
                for &(t2, s2) in &pairs {
                    if t1 == t2 || s1 == s2 {
                        continue;
                    }
                    for (ta, sa) in self.sig.target_attrs.iter().zip(&self.sig.source_attrs) {
                        out.push((
                            OrderEdge {
                                attr: *sa,
                                lesser: s1,
                                greater: s2,
                            },
                            OrderEdge {
                                attr: *ta,
                                lesser: t1,
                                greater: t2,
                            },
                        ));
                    }
                }
            }
        }
        out
    }

    /// Check ≺-compatibility against completed-order oracles.
    ///
    /// `source_precedes` / `target_precedes` report membership in the
    /// respective completed currency orders.
    pub fn compatible_with(
        &self,
        target: &TemporalInstance,
        source: &TemporalInstance,
        source_precedes: &dyn Fn(AttrId, TupleId, TupleId) -> bool,
        target_precedes: &dyn Fn(AttrId, TupleId, TupleId) -> bool,
    ) -> bool {
        self.compatibility_obligations(target, source)
            .into_iter()
            .all(|(se, te)| {
                !source_precedes(se.attr, se.lesser, se.greater)
                    || target_precedes(te.attr, te.lesser, te.greater)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Tuple;
    use crate::schema::RelationSchema;
    use crate::value::{Eid, Value};

    fn target_inst() -> TemporalInstance {
        let schema = RelationSchema::new("Dept", &["mgrAddr", "budget"]);
        let mut d = TemporalInstance::new(RelId(0), &schema);
        d.push_tuple(Tuple::new(
            Eid(1),
            vec![Value::str("2 Small St"), Value::int(6500)],
        ))
        .unwrap();
        d.push_tuple(Tuple::new(
            Eid(1),
            vec![Value::str("6 Main St"), Value::int(6000)],
        ))
        .unwrap();
        d
    }

    fn source_inst() -> TemporalInstance {
        let schema = RelationSchema::new("Emp", &["address", "salary"]);
        let mut d = TemporalInstance::new(RelId(1), &schema);
        d.push_tuple(Tuple::new(
            Eid(7),
            vec![Value::str("2 Small St"), Value::int(50)],
        ))
        .unwrap();
        d.push_tuple(Tuple::new(
            Eid(7),
            vec![Value::str("6 Main St"), Value::int(80)],
        ))
        .unwrap();
        d
    }

    fn addr_sig() -> CopySignature {
        CopySignature::new(RelId(0), vec![AttrId(0)], RelId(1), vec![AttrId(0)]).unwrap()
    }

    #[test]
    fn signature_validation() {
        assert!(CopySignature::new(RelId(0), vec![AttrId(0)], RelId(1), vec![]).is_err());
        assert!(CopySignature::new(
            RelId(0),
            vec![AttrId(0), AttrId(0)],
            RelId(1),
            vec![AttrId(0), AttrId(1)]
        )
        .is_err());
        let sig = addr_sig();
        assert_eq!(sig.width(), 1);
        assert!(!sig.covers_all_target_attrs(2));
        let full = CopySignature::new(
            RelId(0),
            vec![AttrId(0), AttrId(1)],
            RelId(1),
            vec![AttrId(0), AttrId(1)],
        )
        .unwrap();
        assert!(full.covers_all_target_attrs(2));
    }

    #[test]
    fn copying_condition_enforced() {
        let (tgt, src) = (target_inst(), source_inst());
        let mut rho = CopyFunction::new(addr_sig());
        rho.set_mapping(TupleId(0), TupleId(0)); // both "2 Small St": ok
        assert!(rho.validate(0, &tgt, &src).is_ok());
        rho.set_mapping(TupleId(1), TupleId(0)); // "6 Main St" ≠ "2 Small St"
        assert!(matches!(
            rho.validate(0, &tgt, &src),
            Err(CurrencyError::CopyValueMismatch { .. })
        ));
    }

    #[test]
    fn obligations_require_shared_entities_on_both_sides() {
        let (tgt, src) = (target_inst(), source_inst());
        let mut rho = CopyFunction::new(addr_sig());
        rho.set_mapping(TupleId(0), TupleId(0));
        rho.set_mapping(TupleId(1), TupleId(1));
        let obs = rho.compatibility_obligations(&tgt, &src);
        // Both directions of the single same-entity pair.
        assert_eq!(obs.len(), 2);
        for (se, te) in &obs {
            assert_eq!(se.attr, AttrId(0));
            assert_eq!(te.attr, AttrId(0));
        }
    }

    #[test]
    fn no_obligations_when_sources_share_a_tuple() {
        // Example 2.2 of the paper: t1 and t2 both copied from s1 — the
        // obligation is vacuous because s ≺ s never holds.
        let (tgt, src) = (target_inst(), source_inst());
        let mut rho = CopyFunction::new(addr_sig());
        rho.set_mapping(TupleId(0), TupleId(0));
        rho.set_mapping(TupleId(1), TupleId(0));
        assert!(rho.compatibility_obligations(&tgt, &src).is_empty());
    }

    #[test]
    fn compatibility_oracle_check() {
        let (tgt, src) = (target_inst(), source_inst());
        let mut rho = CopyFunction::new(addr_sig());
        rho.set_mapping(TupleId(0), TupleId(0));
        rho.set_mapping(TupleId(1), TupleId(1));
        // Source completion says s0 ≺ s1.
        let src_prec = |_a: AttrId, l: TupleId, g: TupleId| l == TupleId(0) && g == TupleId(1);
        // Target completion agreeing: t0 ≺ t1.
        let tgt_good = |_a: AttrId, l: TupleId, g: TupleId| l == TupleId(0) && g == TupleId(1);
        // Target completion disagreeing: t1 ≺ t0.
        let tgt_bad = |_a: AttrId, l: TupleId, g: TupleId| l == TupleId(1) && g == TupleId(0);
        assert!(rho.compatible_with(&tgt, &src, &src_prec, &tgt_good));
        assert!(!rho.compatible_with(&tgt, &src, &src_prec, &tgt_bad));
    }

    #[test]
    fn mapping_accessors() {
        let mut rho = CopyFunction::new(addr_sig());
        assert!(rho.is_empty());
        rho.set_mapping(TupleId(3), TupleId(5));
        assert_eq!(rho.len(), 1);
        assert_eq!(rho.mapping(TupleId(3)), Some(TupleId(5)));
        assert_eq!(rho.mapping(TupleId(4)), None);
        let pairs: Vec<_> = rho.mappings().collect();
        assert_eq!(pairs, vec![(TupleId(3), TupleId(5))]);
    }
}
