//! Copy functions: provenance links that transport currency orders.
//!
//! A copy function `ρ` of signature `R₁[Ā] ⇐ R₂[B̄]` (paper §2) is a partial
//! mapping from the tuples of a *target* instance of `R₁` to tuples of a
//! *source* instance of `R₂`, recording that the `Ā`-attributes of a target
//! tuple were imported from the `B̄`-attributes of its source tuple.  Two
//! conditions give copy functions their semantics:
//!
//! * the **copying condition** — mapped tuples agree on the copied
//!   attributes (`t[Aᵢ] = s[Bᵢ]`), checked by [`CopyFunction::validate`];
//! * **≺-compatibility** — completed currency orders of the source carry
//!   over to the target: if `ρ(t₁) = s₁`, `ρ(t₂) = s₂`, the `t`s share an
//!   entity and the `s`s share an entity, then `s₁ ≺_{Bᵢ} s₂` forces
//!   `t₁ ≺_{Aᵢ} t₂`.  This is a property of completions, enforced by the
//!   reasoners; [`CopyFunction::compatibility_obligations`] enumerates the
//!   ground implications.

use crate::denial::OrderEdge;
use crate::error::CurrencyError;
use crate::schema::{AttrId, RelId};
use crate::temporal::TemporalInstance;
use crate::value::{Eid, TupleId};
use std::collections::{BTreeMap, BTreeSet};

/// The signature `target[Ā] ⇐ source[B̄]` of a copy function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CopySignature {
    /// Relation whose tuples received values (the importing side, `R₁`).
    pub target: RelId,
    /// Relation the values came from (`R₂`).
    pub source: RelId,
    /// Correlated attribute list `Ā` on the target.
    pub target_attrs: Vec<AttrId>,
    /// Correlated attribute list `B̄` on the source (same length as `Ā`).
    pub source_attrs: Vec<AttrId>,
}

impl CopySignature {
    /// Build a signature, checking the attribute lists have equal length
    /// and are duplicate-free on the target side.
    pub fn new(
        target: RelId,
        target_attrs: Vec<AttrId>,
        source: RelId,
        source_attrs: Vec<AttrId>,
    ) -> Result<CopySignature, CurrencyError> {
        if target_attrs.len() != source_attrs.len() {
            return Err(CurrencyError::SignatureMismatch {
                detail: format!(
                    "target lists {} attributes but source lists {}",
                    target_attrs.len(),
                    source_attrs.len()
                ),
            });
        }
        let mut seen = target_attrs.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != target_attrs.len() {
            return Err(CurrencyError::SignatureMismatch {
                detail: "duplicate target attribute in copy signature".to_string(),
            });
        }
        Ok(CopySignature {
            target,
            source,
            target_attrs,
            source_attrs,
        })
    }

    /// Number of correlated attribute pairs.
    pub fn width(&self) -> usize {
        self.target_attrs.len()
    }

    /// `true` if the signature covers every proper attribute of the target
    /// relation.  Only such functions may import *new* tuples when extended
    /// (paper §4: "only copy functions that cover all attributes but EID
    /// of `Rᵢ` can be extended" with fresh tuples).
    pub fn covers_all_target_attrs(&self, target_arity: usize) -> bool {
        let mut covered = vec![false; target_arity];
        for a in &self.target_attrs {
            if a.index() < target_arity {
                covered[a.index()] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }
}

/// Entity-keyed indexes over a copy function's mapping set, maintained
/// incrementally by the id-aware mutators ([`CopyFunction::insert_mapping`],
/// [`CopyFunction::remove_target_mapping`],
/// [`CopyFunction::remove_source_mappings`]).
///
/// The indexes exist so that the two hot paths of the incremental engine
/// cost O(region), not O(|ρ|):
///
/// * obligation enumeration for a dirty set of entities walks only the
///   groups those entities participate in
///   ([`CopyFunction::obligations_for_region`]), and
/// * a tuple removal sheds every mapping touching the tuple in one
///   indexed lookup instead of a scan of the whole mapping set.
#[derive(Clone, Debug, Default)]
struct MappingIndex {
    /// Target tuple → the `(target_entity, source_entity)` group key of
    /// its mapping (the reverse `TupleId → mapping` index).
    group_of: BTreeMap<TupleId, (Eid, Eid)>,
    /// Source tuple → the target tuples mapped to it.
    by_source: BTreeMap<TupleId, BTreeSet<TupleId>>,
    /// `(target_entity, source_entity)` → the group's mapped pairs.
    /// Group keys lead with the target entity, so a target entity's
    /// groups are a contiguous range of this map — no separate
    /// target-entity index is needed (see [`MappingIndex::target_keys`]).
    groups: BTreeMap<(Eid, Eid), BTreeSet<(TupleId, TupleId)>>,
    /// Source entity → group keys it participates in (the source entity
    /// is the *second* key component, so this one does need its own
    /// index).
    source_groups: BTreeMap<Eid, BTreeSet<(Eid, Eid)>>,
}

impl MappingIndex {
    fn insert(&mut self, target: TupleId, source: TupleId, te: Eid, se: Eid) {
        let key = (te, se);
        self.group_of.insert(target, key);
        self.by_source.entry(source).or_default().insert(target);
        self.groups.entry(key).or_default().insert((target, source));
        self.source_groups.entry(se).or_default().insert(key);
    }

    /// Drop `ρ(target) = source` from every index.
    fn remove(&mut self, target: TupleId, source: TupleId) {
        let key = self.group_of.remove(&target).expect("indexed mapping");
        if let Some(ts) = self.by_source.get_mut(&source) {
            ts.remove(&target);
            if ts.is_empty() {
                self.by_source.remove(&source);
            }
        }
        let group = self.groups.get_mut(&key).expect("indexed group");
        group.remove(&(target, source));
        if group.is_empty() {
            self.groups.remove(&key);
            let keys = self.source_groups.get_mut(&key.1).expect("indexed entity");
            keys.remove(&key);
            if keys.is_empty() {
                self.source_groups.remove(&key.1);
            }
        }
    }

    /// The group keys of a target entity: a range scan over the sorted
    /// group map (keys lead with the target entity).
    fn target_keys(&self, te: Eid) -> impl Iterator<Item = (Eid, Eid)> + '_ {
        self.groups
            .range((te, Eid(u64::MIN))..=(te, Eid(u64::MAX)))
            .map(|(&key, _)| key)
    }
}

/// A copy function: a signature plus the partial tuple mapping.
///
/// The mapping set (`map`) is the source of truth.  Alongside it the
/// function keeps an optional entity-keyed `MappingIndex`; it is built by
/// [`CopyFunction::rebuild_index`] (which [`crate::Specification::add_copy`]
/// calls) and maintained incrementally by the id-aware mutators the delta
/// layer uses.  The legacy mutator [`CopyFunction::set_mapping`] has no
/// access to entity ids and therefore *invalidates* the index; every
/// consumer falls back to an on-the-fly grouping in that case, so direct
/// mutation stays correct — just not O(region).
#[derive(Clone, Debug)]
pub struct CopyFunction {
    sig: CopySignature,
    map: BTreeMap<TupleId, TupleId>,
    /// `None` = stale (a non-indexed mutation happened); rebuilt by
    /// [`CopyFunction::rebuild_index`].
    index: Option<MappingIndex>,
}

impl CopyFunction {
    /// Create an empty copy function with the given signature.
    pub fn new(sig: CopySignature) -> CopyFunction {
        CopyFunction {
            sig,
            map: BTreeMap::new(),
            index: Some(MappingIndex::default()),
        }
    }

    /// The signature.
    pub fn signature(&self) -> &CopySignature {
        &self.sig
    }

    /// Record `ρ(target) = source`.  Last write wins; the copying condition
    /// is checked by [`CopyFunction::validate`] against concrete instances.
    ///
    /// This mutator has no access to the endpoint entities, so it marks
    /// the entity-keyed mapping index stale; prefer
    /// [`CopyFunction::insert_mapping`] when the entities are at hand.
    pub fn set_mapping(&mut self, target: TupleId, source: TupleId) {
        self.map.insert(target, source);
        self.index = None;
    }

    /// Record `ρ(target) = source` with the endpoints' entities, keeping
    /// the entity-keyed index fresh.  Returns the previously mapped
    /// source, if the target was already mapped.
    pub fn insert_mapping(
        &mut self,
        target: TupleId,
        source: TupleId,
        target_entity: Eid,
        source_entity: Eid,
    ) -> Option<TupleId> {
        let old = self.map.insert(target, source);
        if let Some(ix) = &mut self.index {
            if let Some(old_source) = old {
                ix.remove(target, old_source);
            }
            ix.insert(target, source, target_entity, source_entity);
        }
        old
    }

    /// Drop the mapping of `target`, returning the dropped pair.  One
    /// indexed lookup when the index is fresh.
    pub fn remove_target_mapping(&mut self, target: TupleId) -> Option<(TupleId, TupleId)> {
        let source = self.map.remove(&target)?;
        if let Some(ix) = &mut self.index {
            ix.remove(target, source);
        }
        Some((target, source))
    }

    /// Drop every mapping whose source is `source`, returning the dropped
    /// pairs.  One indexed lookup plus O(dropped) when the index is
    /// fresh; a k-tuple removal delta therefore sheds all its mappings in
    /// one pass instead of k scans of the mapping set.
    pub fn remove_source_mappings(&mut self, source: TupleId) -> Vec<(TupleId, TupleId)> {
        match &mut self.index {
            Some(ix) => {
                let targets: Vec<TupleId> = ix
                    .by_source
                    .get(&source)
                    .map(|ts| ts.iter().copied().collect())
                    .unwrap_or_default();
                let mut dropped = Vec::with_capacity(targets.len());
                for t in targets {
                    let s = self.map.remove(&t).expect("indexed mapping in map");
                    self.index.as_mut().expect("checked").remove(t, s);
                    dropped.push((t, s));
                }
                dropped
            }
            None => {
                let mut dropped = Vec::new();
                self.map.retain(|&t, &mut s| {
                    if s == source {
                        dropped.push((t, s));
                        false
                    } else {
                        true
                    }
                });
                dropped
            }
        }
    }

    /// `ρ(target)`, if defined.
    pub fn mapping(&self, target: TupleId) -> Option<TupleId> {
        self.map.get(&target).copied()
    }

    /// Keep only the mappings `f(target, source)` accepts, returning the
    /// dropped pairs.  Used to cascade tuple removals: a mapping whose
    /// endpoint is gone must go with it.  Keeps a fresh index fresh (the
    /// dropped pairs' group keys are known); scans the whole mapping set
    /// either way.
    pub fn retain_mappings(
        &mut self,
        mut f: impl FnMut(TupleId, TupleId) -> bool,
    ) -> Vec<(TupleId, TupleId)> {
        let mut dropped = Vec::new();
        self.map.retain(|&t, &mut s| {
            let keep = f(t, s);
            if !keep {
                dropped.push((t, s));
            }
            keep
        });
        if let Some(ix) = &mut self.index {
            for &(t, s) in &dropped {
                ix.remove(t, s);
            }
        }
        dropped
    }

    /// Rebuild the entity-keyed mapping index from the mapping set.
    /// Mapped tuples must resolve in the given instances (tombstoned
    /// slots still resolve; the cascade keeps mappings live anyway).
    pub fn rebuild_index(&mut self, target: &TemporalInstance, source: &TemporalInstance) {
        let mut ix = MappingIndex::default();
        for (&t, &s) in &self.map {
            ix.insert(t, s, target.tuple(t).eid, source.tuple(s).eid);
        }
        self.index = Some(ix);
    }

    /// `true` while the entity-keyed index mirrors the mapping set (no
    /// non-indexed mutation since the last [`CopyFunction::rebuild_index`]).
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    /// Remap every mapped tuple id through per-relation translation
    /// tables (old id → new id), as produced by specification compaction;
    /// an **empty** table is the identity (that relation had no
    /// tombstones).  A mapping whose endpoint did not survive the
    /// compaction is **dropped**, mirroring the delta layer's removal
    /// cascade — the delta path never leaves such a mapping behind, but a
    /// caller who tombstoned an endpoint directly through
    /// `instance_mut().remove_tuple()` must not turn a later compaction
    /// into a panic.  A no-op when both tables are the identity.
    ///
    /// A fresh entity-keyed index stays fresh: compaction moves ids but
    /// never changes which entity a tuple describes, so the index is
    /// translated in the same pass (group keys survive verbatim) instead
    /// of being staled and rebuilt from the instances.  A stale index
    /// stays stale — the caller re-derives it with
    /// [`CopyFunction::rebuild_index`] as before.
    pub fn remap_tuples(
        &mut self,
        target_remap: &[Option<TupleId>],
        source_remap: &[Option<TupleId>],
    ) {
        if target_remap.is_empty() && source_remap.is_empty() {
            return;
        }
        let translate = |table: &[Option<TupleId>], id: TupleId| -> Option<TupleId> {
            if table.is_empty() {
                Some(id)
            } else {
                table.get(id.index()).copied().flatten()
            }
        };
        let old_index = self.index.take();
        let mut new_index = old_index.as_ref().map(|_| MappingIndex::default());
        for (t, s) in std::mem::take(&mut self.map) {
            let (Some(nt), Some(ns)) = (translate(target_remap, t), translate(source_remap, s))
            else {
                continue; // endpoint died before compaction: mapping goes
            };
            self.map.insert(nt, ns);
            if let (Some(ix), Some(old)) = (&mut new_index, &old_index) {
                let &(te, se) = old.group_of.get(&t).expect("indexed mapping");
                ix.insert(nt, ns, te, se);
            }
        }
        self.index = new_index;
    }

    /// Apply one incremental-compaction slice of relation `rel` to the
    /// mapping set: drop the (orphan) mappings whose endpoint is one of
    /// the `dead` slots, then re-key the endpoints that `moved`
    /// (old id → new id).  Returns the number of mappings dropped.
    ///
    /// The bounded counterpart of [`CopyFunction::remap_tuples`]: with a
    /// fresh entity-keyed index the cost is O(slice) — per dead slot and
    /// per moved endpoint an indexed lookup, never a scan of the mapping
    /// set — and the index is maintained in place (entities never change
    /// on a move).  With a stale index the source side degrades to one
    /// full pass over the map, exactly like the monolithic path.
    ///
    /// Moved target keys are processed in ascending old-id order; the
    /// sweep moves tuples strictly downward onto slots whose mappings
    /// (if any) were dropped when the slot died, so a re-keyed entry
    /// never collides with a surviving one.
    pub fn remap_slice(
        &mut self,
        rel: RelId,
        moved: &BTreeMap<TupleId, TupleId>,
        dead: &[TupleId],
    ) -> usize {
        let on_target = self.sig.target == rel;
        let on_source = self.sig.source == rel;
        if !on_target && !on_source {
            return 0;
        }
        let mut dropped = 0;
        // Orphan mappings referencing a dead slot go first (mirrors the
        // monolithic remap's drop semantics and frees the slot's key for
        // the re-keys below).
        if on_target {
            for &d in dead {
                if self.remove_target_mapping(d).is_some() {
                    dropped += 1;
                }
            }
        }
        if on_source {
            for &d in dead {
                dropped += self.remove_source_mappings(d).len();
            }
        }
        // Target-side re-keys (map keys are target ids).
        if on_target {
            for (&old, &new) in moved {
                let Some(src) = self.map.remove(&old) else {
                    continue;
                };
                let prev = self.map.insert(new, src);
                debug_assert!(prev.is_none(), "moved onto a surviving mapping key");
                if let Some(ix) = &mut self.index {
                    let key = ix.group_of.remove(&old).expect("indexed mapping");
                    ix.group_of.insert(new, key);
                    let ts = ix.by_source.get_mut(&src).expect("indexed source");
                    ts.remove(&old);
                    ts.insert(new);
                    let group = ix.groups.get_mut(&key).expect("indexed group");
                    group.remove(&(old, src));
                    group.insert((new, src));
                }
            }
        }
        // Source-side re-keys (map values are source ids).
        if on_source {
            match &mut self.index {
                Some(ix) => {
                    for (&old, &new) in moved {
                        let Some(targets) = ix.by_source.remove(&old) else {
                            continue;
                        };
                        for &t in &targets {
                            *self.map.get_mut(&t).expect("indexed mapping in map") = new;
                            let key = *ix.group_of.get(&t).expect("indexed mapping");
                            let group = ix.groups.get_mut(&key).expect("indexed group");
                            group.remove(&(t, old));
                            group.insert((t, new));
                        }
                        let prev = ix.by_source.insert(new, targets);
                        debug_assert!(prev.is_none(), "moved onto a surviving source id");
                    }
                }
                None => {
                    for (_, s) in self.map.iter_mut() {
                        if let Some(&ns) = moved.get(s) {
                            *s = ns;
                        }
                    }
                }
            }
        }
        dropped
    }

    /// Iterate over `(target, source)` pairs.
    pub fn mappings(&self) -> impl Iterator<Item = (TupleId, TupleId)> + '_ {
        self.map.iter().map(|(t, s)| (*t, *s))
    }

    /// Number of mapped tuples (the `|ρ|` of the paper's BCP problem).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no tuple is mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Check the copying condition against concrete target and source
    /// instances: every mapped pair agrees on the correlated attributes.
    ///
    /// `copy_index` is only used to label errors.
    pub fn validate(
        &self,
        copy_index: usize,
        target: &TemporalInstance,
        source: &TemporalInstance,
    ) -> Result<(), CurrencyError> {
        for (&t, &s) in &self.map {
            let tt = target.tuple_checked(t)?;
            let st = source.tuple_checked(s)?;
            for (pos, (ta, sa)) in self
                .sig
                .target_attrs
                .iter()
                .zip(&self.sig.source_attrs)
                .enumerate()
            {
                if tt.value(*ta) != st.value(*sa) {
                    return Err(CurrencyError::CopyValueMismatch {
                        copy: copy_index,
                        target: t,
                        source: s,
                        position: pos,
                    });
                }
            }
        }
        Ok(())
    }

    /// Enumerate the ground ≺-compatibility obligations.
    ///
    /// Each returned pair `(source_edge, target_edge)` reads: *if* the
    /// completed source order contains `source_edge`, *then* the completed
    /// target order must contain `target_edge`.  Obligations are generated
    /// for every ordered pair of mapped target tuples sharing an entity
    /// whose sources also share an entity, and for every correlated
    /// attribute position.
    pub fn compatibility_obligations(
        &self,
        target: &TemporalInstance,
        source: &TemporalInstance,
    ) -> Vec<(OrderEdge, OrderEdge)> {
        self.compatibility_obligations_filtered(target, source, |_, _| true)
    }

    /// [`CopyFunction::compatibility_obligations`] restricted to the
    /// obligations `keep(target_entity, source_entity)` accepts.
    ///
    /// Mapped pairs are grouped by their `(target entity, source entity)`
    /// cell pair, so the quadratic pair enumeration runs only within
    /// accepted groups.  With a fresh index the persisted groups are used
    /// directly; otherwise they are derived on the fly from the mapping
    /// set.  Callers that already know the dirty *entities* should prefer
    /// [`CopyFunction::obligations_for_region`], which skips the rejected
    /// groups without visiting them.
    pub fn compatibility_obligations_filtered(
        &self,
        target: &TemporalInstance,
        source: &TemporalInstance,
        keep: impl Fn(Eid, Eid) -> bool,
    ) -> Vec<(OrderEdge, OrderEdge)> {
        if let Some(ix) = &self.index {
            let mut out = Vec::new();
            for (&(te, se), pairs) in &ix.groups {
                if keep(te, se) {
                    self.emit_group_obligations(pairs, &mut out);
                }
            }
            return out;
        }
        let mut groups: BTreeMap<(Eid, Eid), BTreeSet<(TupleId, TupleId)>> = BTreeMap::new();
        for (&t, &s) in &self.map {
            groups
                .entry((target.tuple(t).eid, source.tuple(s).eid))
                .or_default()
                .insert((t, s));
        }
        let mut out = Vec::new();
        for ((te, se), pairs) in groups {
            if keep(te, se) {
                self.emit_group_obligations(&pairs, &mut out);
            }
        }
        out
    }

    /// The obligations of every group touching a dirty region: groups
    /// whose target entity is in `dirty_targets` *or* whose source entity
    /// is in `dirty_sources`.
    ///
    /// With a fresh index this enumerates only the accepted groups (via
    /// the per-entity group-key indexes), so the cost scales with the
    /// dirty region and its obligations — never with `|ρ|`.  On a stale
    /// index it falls back to the filtered full grouping.
    pub fn obligations_for_region(
        &self,
        target: &TemporalInstance,
        source: &TemporalInstance,
        dirty_targets: &BTreeSet<Eid>,
        dirty_sources: &BTreeSet<Eid>,
    ) -> Vec<(OrderEdge, OrderEdge)> {
        let Some(ix) = &self.index else {
            return self.compatibility_obligations_filtered(target, source, |te, se| {
                dirty_targets.contains(&te) || dirty_sources.contains(&se)
            });
        };
        // Keys in sorted order so the emission order matches the full
        // enumeration's (component clause order must be deterministic).
        let mut keys: BTreeSet<(Eid, Eid)> = BTreeSet::new();
        for &te in dirty_targets {
            keys.extend(ix.target_keys(te));
        }
        for se in dirty_sources {
            if let Some(ks) = ix.source_groups.get(se) {
                keys.extend(ks.iter().copied());
            }
        }
        let mut out = Vec::new();
        for key in keys {
            self.emit_group_obligations(&ix.groups[&key], &mut out);
        }
        out
    }

    /// Emit one group's obligations (every ordered pair of distinct
    /// mappings with distinct sources, per correlated attribute).
    fn emit_group_obligations(
        &self,
        pairs: &BTreeSet<(TupleId, TupleId)>,
        out: &mut Vec<(OrderEdge, OrderEdge)>,
    ) {
        // Upper bound: |pairs|² ordered pairs × correlated attributes.
        out.reserve(pairs.len() * pairs.len() * self.sig.width());
        for &(t1, s1) in pairs {
            for &(t2, s2) in pairs {
                if t1 == t2 || s1 == s2 {
                    continue;
                }
                for (ta, sa) in self.sig.target_attrs.iter().zip(&self.sig.source_attrs) {
                    out.push((
                        OrderEdge {
                            attr: *sa,
                            lesser: s1,
                            greater: s2,
                        },
                        OrderEdge {
                            attr: *ta,
                            lesser: t1,
                            greater: t2,
                        },
                    ));
                }
            }
        }
    }

    /// Check ≺-compatibility against completed-order oracles.
    ///
    /// `source_precedes` / `target_precedes` report membership in the
    /// respective completed currency orders.
    pub fn compatible_with(
        &self,
        target: &TemporalInstance,
        source: &TemporalInstance,
        source_precedes: &dyn Fn(AttrId, TupleId, TupleId) -> bool,
        target_precedes: &dyn Fn(AttrId, TupleId, TupleId) -> bool,
    ) -> bool {
        self.compatibility_obligations(target, source)
            .into_iter()
            .all(|(se, te)| {
                !source_precedes(se.attr, se.lesser, se.greater)
                    || target_precedes(te.attr, te.lesser, te.greater)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Tuple;
    use crate::schema::RelationSchema;
    use crate::value::{Eid, Value};

    fn target_inst() -> TemporalInstance {
        let schema = RelationSchema::new("Dept", &["mgrAddr", "budget"]);
        let mut d = TemporalInstance::new(RelId(0), &schema);
        d.push_tuple(Tuple::new(
            Eid(1),
            vec![Value::str("2 Small St"), Value::int(6500)],
        ))
        .unwrap();
        d.push_tuple(Tuple::new(
            Eid(1),
            vec![Value::str("6 Main St"), Value::int(6000)],
        ))
        .unwrap();
        d
    }

    fn source_inst() -> TemporalInstance {
        let schema = RelationSchema::new("Emp", &["address", "salary"]);
        let mut d = TemporalInstance::new(RelId(1), &schema);
        d.push_tuple(Tuple::new(
            Eid(7),
            vec![Value::str("2 Small St"), Value::int(50)],
        ))
        .unwrap();
        d.push_tuple(Tuple::new(
            Eid(7),
            vec![Value::str("6 Main St"), Value::int(80)],
        ))
        .unwrap();
        d
    }

    fn addr_sig() -> CopySignature {
        CopySignature::new(RelId(0), vec![AttrId(0)], RelId(1), vec![AttrId(0)]).unwrap()
    }

    #[test]
    fn signature_validation() {
        assert!(CopySignature::new(RelId(0), vec![AttrId(0)], RelId(1), vec![]).is_err());
        assert!(CopySignature::new(
            RelId(0),
            vec![AttrId(0), AttrId(0)],
            RelId(1),
            vec![AttrId(0), AttrId(1)]
        )
        .is_err());
        let sig = addr_sig();
        assert_eq!(sig.width(), 1);
        assert!(!sig.covers_all_target_attrs(2));
        let full = CopySignature::new(
            RelId(0),
            vec![AttrId(0), AttrId(1)],
            RelId(1),
            vec![AttrId(0), AttrId(1)],
        )
        .unwrap();
        assert!(full.covers_all_target_attrs(2));
    }

    #[test]
    fn copying_condition_enforced() {
        let (tgt, src) = (target_inst(), source_inst());
        let mut rho = CopyFunction::new(addr_sig());
        rho.set_mapping(TupleId(0), TupleId(0)); // both "2 Small St": ok
        assert!(rho.validate(0, &tgt, &src).is_ok());
        rho.set_mapping(TupleId(1), TupleId(0)); // "6 Main St" ≠ "2 Small St"
        assert!(matches!(
            rho.validate(0, &tgt, &src),
            Err(CurrencyError::CopyValueMismatch { .. })
        ));
    }

    #[test]
    fn obligations_require_shared_entities_on_both_sides() {
        let (tgt, src) = (target_inst(), source_inst());
        let mut rho = CopyFunction::new(addr_sig());
        rho.set_mapping(TupleId(0), TupleId(0));
        rho.set_mapping(TupleId(1), TupleId(1));
        let obs = rho.compatibility_obligations(&tgt, &src);
        // Both directions of the single same-entity pair.
        assert_eq!(obs.len(), 2);
        for (se, te) in &obs {
            assert_eq!(se.attr, AttrId(0));
            assert_eq!(te.attr, AttrId(0));
        }
    }

    #[test]
    fn no_obligations_when_sources_share_a_tuple() {
        // Example 2.2 of the paper: t1 and t2 both copied from s1 — the
        // obligation is vacuous because s ≺ s never holds.
        let (tgt, src) = (target_inst(), source_inst());
        let mut rho = CopyFunction::new(addr_sig());
        rho.set_mapping(TupleId(0), TupleId(0));
        rho.set_mapping(TupleId(1), TupleId(0));
        assert!(rho.compatibility_obligations(&tgt, &src).is_empty());
    }

    #[test]
    fn compatibility_oracle_check() {
        let (tgt, src) = (target_inst(), source_inst());
        let mut rho = CopyFunction::new(addr_sig());
        rho.set_mapping(TupleId(0), TupleId(0));
        rho.set_mapping(TupleId(1), TupleId(1));
        // Source completion says s0 ≺ s1.
        let src_prec = |_a: AttrId, l: TupleId, g: TupleId| l == TupleId(0) && g == TupleId(1);
        // Target completion agreeing: t0 ≺ t1.
        let tgt_good = |_a: AttrId, l: TupleId, g: TupleId| l == TupleId(0) && g == TupleId(1);
        // Target completion disagreeing: t1 ≺ t0.
        let tgt_bad = |_a: AttrId, l: TupleId, g: TupleId| l == TupleId(1) && g == TupleId(0);
        assert!(rho.compatible_with(&tgt, &src, &src_prec, &tgt_good));
        assert!(!rho.compatible_with(&tgt, &src, &src_prec, &tgt_bad));
    }

    #[test]
    fn mapping_accessors() {
        let mut rho = CopyFunction::new(addr_sig());
        assert!(rho.is_empty());
        rho.set_mapping(TupleId(3), TupleId(5));
        assert_eq!(rho.len(), 1);
        assert_eq!(rho.mapping(TupleId(3)), Some(TupleId(5)));
        assert_eq!(rho.mapping(TupleId(4)), None);
        let pairs: Vec<_> = rho.mappings().collect();
        assert_eq!(pairs, vec![(TupleId(3), TupleId(5))]);
    }

    #[test]
    fn set_mapping_stales_the_index_and_rebuild_restores_it() {
        let (tgt, src) = (target_inst(), source_inst());
        let mut rho = CopyFunction::new(addr_sig());
        assert!(rho.is_indexed(), "fresh copy starts indexed");
        rho.set_mapping(TupleId(0), TupleId(0));
        assert!(!rho.is_indexed(), "entity-blind mutation stales the index");
        rho.rebuild_index(&tgt, &src);
        assert!(rho.is_indexed());
        // Stale and fresh enumeration agree.
        rho.set_mapping(TupleId(1), TupleId(1));
        let stale = rho.compatibility_obligations(&tgt, &src);
        rho.rebuild_index(&tgt, &src);
        let fresh = rho.compatibility_obligations(&tgt, &src);
        assert_eq!(stale, fresh);
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn indexed_mutators_match_a_rebuilt_index() {
        let (tgt, src) = (target_inst(), source_inst());
        let mut incremental = CopyFunction::new(addr_sig());
        incremental.insert_mapping(TupleId(0), TupleId(0), Eid(1), Eid(7));
        incremental.insert_mapping(TupleId(1), TupleId(1), Eid(1), Eid(7));
        assert!(incremental.is_indexed(), "id-aware mutation keeps it fresh");
        // Overwrite: the old pair must leave every index.
        let old = incremental.insert_mapping(TupleId(1), TupleId(0), Eid(1), Eid(7));
        assert_eq!(old, Some(TupleId(1)));
        let mut rebuilt = incremental.clone();
        rebuilt.rebuild_index(&tgt, &src);
        assert_eq!(
            incremental.compatibility_obligations(&tgt, &src),
            rebuilt.compatibility_obligations(&tgt, &src)
        );
        // Both sources now share tuple 0: no obligations (Example 2.2).
        assert!(incremental.compatibility_obligations(&tgt, &src).is_empty());
    }

    #[test]
    fn removal_mutators_shed_mappings_by_either_endpoint() {
        let mut rho = CopyFunction::new(addr_sig());
        rho.insert_mapping(TupleId(0), TupleId(0), Eid(1), Eid(7));
        rho.insert_mapping(TupleId(1), TupleId(0), Eid(1), Eid(7));
        rho.insert_mapping(TupleId(2), TupleId(1), Eid(2), Eid(7));
        // By source: both targets of source 0 go in one pass.
        let dropped = rho.remove_source_mappings(TupleId(0));
        assert_eq!(
            dropped,
            vec![(TupleId(0), TupleId(0)), (TupleId(1), TupleId(0))]
        );
        assert_eq!(rho.len(), 1);
        // By target.
        assert_eq!(
            rho.remove_target_mapping(TupleId(2)),
            Some((TupleId(2), TupleId(1)))
        );
        assert!(rho.is_empty());
        assert!(rho.is_indexed());
        assert_eq!(rho.remove_target_mapping(TupleId(2)), None);
        assert!(rho.remove_source_mappings(TupleId(9)).is_empty());
    }

    #[test]
    fn obligations_for_region_enumerates_only_dirty_groups() {
        // Two independent groups: entities (1, 7) and (2, 8).
        let schema_t = RelationSchema::new("T", &["A"]);
        let mut tgt = TemporalInstance::new(RelId(0), &schema_t);
        let schema_s = RelationSchema::new("S", &["A"]);
        let mut src = TemporalInstance::new(RelId(1), &schema_s);
        let mut rho = CopyFunction::new(addr_sig());
        for (e, se) in [(1u64, 7u64), (2, 8)] {
            for v in 0..2i64 {
                let t = tgt
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v)]))
                    .unwrap();
                let s = src
                    .push_tuple(Tuple::new(Eid(se), vec![Value::int(v)]))
                    .unwrap();
                rho.insert_mapping(t, s, Eid(e), Eid(se));
            }
        }
        let all = rho.compatibility_obligations(&tgt, &src);
        assert_eq!(all.len(), 4, "two obligations per group");
        // Region = target entity 1 only: just that group's obligations.
        let only_e1 =
            rho.obligations_for_region(&tgt, &src, &BTreeSet::from([Eid(1)]), &BTreeSet::new());
        assert_eq!(only_e1.len(), 2);
        assert!(only_e1.iter().all(|(_, te)| {
            tgt.tuple(te.lesser).eid == Eid(1) && tgt.tuple(te.greater).eid == Eid(1)
        }));
        // Same region addressed through the source side.
        let via_source =
            rho.obligations_for_region(&tgt, &src, &BTreeSet::new(), &BTreeSet::from([Eid(7)]));
        assert_eq!(only_e1, via_source);
        // Stale index falls back to the filtered scan with equal output.
        let mut stale = rho.clone();
        stale.set_mapping(TupleId(0), TupleId(0)); // no-op write, stales it
        assert!(!stale.is_indexed());
        assert_eq!(
            stale.obligations_for_region(&tgt, &src, &BTreeSet::from([Eid(1)]), &BTreeSet::new()),
            only_e1
        );
    }

    #[test]
    fn remap_tuples_translates_both_sides_and_drops_dead_endpoints() {
        let mut rho = CopyFunction::new(addr_sig());
        rho.insert_mapping(TupleId(0), TupleId(2), Eid(1), Eid(7));
        rho.insert_mapping(TupleId(3), TupleId(0), Eid(1), Eid(7));
        // A mapping whose target was tombstoned outside the delta cascade:
        // compaction must shed it, not panic.
        rho.insert_mapping(TupleId(1), TupleId(1), Eid(1), Eid(7));
        // Target slots 1–2 and source slot 1 were tombstones.
        let target_remap = vec![Some(TupleId(0)), None, None, Some(TupleId(1))];
        let source_remap = vec![Some(TupleId(0)), None, Some(TupleId(1))];
        rho.remap_tuples(&target_remap, &source_remap);
        assert!(rho.is_indexed(), "remap maintains a fresh index in place");
        let pairs: Vec<_> = rho.mappings().collect();
        assert_eq!(
            pairs,
            vec![(TupleId(0), TupleId(1)), (TupleId(1), TupleId(0))]
        );
    }

    #[test]
    fn remap_keeps_the_index_equivalent_to_a_rebuilt_one() {
        // Two groups; compaction shifts ids on both sides.  The in-place
        // translated index must behave exactly like a from-scratch
        // rebuild: same region lookups, same obligations.
        let schema_t = RelationSchema::new("T", &["A"]);
        let mut tgt = TemporalInstance::new(RelId(0), &schema_t);
        let schema_s = RelationSchema::new("S", &["A"]);
        let mut src = TemporalInstance::new(RelId(1), &schema_s);
        let mut rho = CopyFunction::new(addr_sig());
        for (e, se) in [(1u64, 7u64), (2, 8)] {
            for v in 0..2i64 {
                let t = tgt
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v)]))
                    .unwrap();
                let s = src
                    .push_tuple(Tuple::new(Eid(se), vec![Value::int(v)]))
                    .unwrap();
                rho.insert_mapping(t, s, Eid(e), Eid(se));
            }
        }
        // Tombstone and compact target slot 1 and source slot 2; the
        // removal cascade sheds their mappings first (as the delta layer
        // would).
        rho.remove_target_mapping(TupleId(1));
        rho.remove_source_mappings(TupleId(2));
        tgt.remove_tuple(TupleId(1)).unwrap();
        tgt.remove_tuple(TupleId(2)).unwrap(); // its mapping went with s2
        src.remove_tuple(TupleId(2)).unwrap();
        let (_, t_remap) = tgt.compact();
        let (_, s_remap) = src.compact();
        rho.remap_tuples(&t_remap, &s_remap);
        assert!(rho.is_indexed());
        let mut rebuilt = rho.clone();
        rebuilt.rebuild_index(&tgt, &src);
        for e in [1u64, 2, 9] {
            assert_eq!(
                rho.obligations_for_region(&tgt, &src, &BTreeSet::from([Eid(e)]), &BTreeSet::new()),
                rebuilt.obligations_for_region(
                    &tgt,
                    &src,
                    &BTreeSet::from([Eid(e)]),
                    &BTreeSet::new()
                ),
                "region lookup for entity {e}"
            );
        }
        for se in [7u64, 8] {
            assert_eq!(
                rho.obligations_for_region(
                    &tgt,
                    &src,
                    &BTreeSet::new(),
                    &BTreeSet::from([Eid(se)])
                ),
                rebuilt.obligations_for_region(
                    &tgt,
                    &src,
                    &BTreeSet::new(),
                    &BTreeSet::from([Eid(se)])
                ),
                "region lookup for source entity {se}"
            );
        }
        assert_eq!(
            rho.compatibility_obligations(&tgt, &src),
            rebuilt.compatibility_obligations(&tgt, &src)
        );
        // A stale index stays stale through a remap (caller rebuilds).
        let mut stale = rebuilt.clone();
        stale.set_mapping(TupleId(0), TupleId(0));
        stale.remap_tuples(&[Some(TupleId(0))], &[]);
        assert!(!stale.is_indexed());
    }
}
