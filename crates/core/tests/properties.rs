//! Property tests for the model crate's order algebra and completion
//! semantics.

use currency_core::{
    linear_extensions, AttrId, Catalog, Completion, Eid, OrderRelation, RelCompletion,
    RelationSchema, Specification, Tuple, TupleId, Value,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Random DAG edges over `n` nodes (oriented low → high, hence acyclic).
fn dag_edges(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    let pairs: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
        .collect();
    proptest::sample::subsequence(pairs.clone(), 0..=pairs.len())
}

fn relation(edges: &[(u32, u32)]) -> OrderRelation {
    edges
        .iter()
        .map(|&(a, b)| (TupleId(a), TupleId(b)))
        .collect()
}

proptest! {
    #[test]
    fn closure_is_idempotent(edges in dag_edges(6)) {
        let o = relation(&edges);
        let once = o.transitive_closure();
        let twice = once.transitive_closure();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn closure_contains_original(edges in dag_edges(6)) {
        let o = relation(&edges);
        prop_assert!(o.subset_of(&o.transitive_closure()));
    }

    #[test]
    fn dag_oriented_edges_are_acyclic(edges in dag_edges(6)) {
        prop_assert!(relation(&edges).is_acyclic());
    }

    #[test]
    fn reversing_an_edge_of_a_chain_creates_a_cycle(n in 2usize..6) {
        let mut o = OrderRelation::new();
        for i in 0..(n as u32 - 1) {
            o.add(TupleId(i), TupleId(i + 1));
        }
        o.add(TupleId(n as u32 - 1), TupleId(0));
        prop_assert!(!o.is_acyclic());
    }

    #[test]
    fn linear_extensions_respect_the_order(edges in dag_edges(5)) {
        let o = relation(&edges);
        let elems: Vec<TupleId> = (0..5).map(TupleId).collect();
        let closed = o.transitive_closure();
        let exts = linear_extensions(&elems, &o);
        prop_assert!(!exts.is_empty(), "acyclic order has an extension");
        for ext in &exts {
            prop_assert_eq!(ext.len(), elems.len());
            for (i, &u) in ext.iter().enumerate() {
                for &v in &ext[i + 1..] {
                    // v comes after u, so v must never be below u.
                    prop_assert!(!closed.contains(v, u));
                }
            }
        }
    }

    #[test]
    fn linear_extensions_are_distinct(edges in dag_edges(5)) {
        let o = relation(&edges);
        let elems: Vec<TupleId> = (0..5).map(TupleId).collect();
        let exts = linear_extensions(&elems, &o);
        let set: BTreeSet<Vec<TupleId>> = exts.iter().cloned().collect();
        prop_assert_eq!(set.len(), exts.len());
    }

    #[test]
    fn extension_count_matches_brute_force(edges in dag_edges(4)) {
        let o = relation(&edges).transitive_closure();
        let elems: Vec<TupleId> = (0..4).map(TupleId).collect();
        let exts = linear_extensions(&elems, &o);
        // Brute force: filter all permutations.
        let mut count = 0;
        let mut perm = elems.clone();
        permute(&mut perm, 0, &mut |p| {
            let ok = (0..p.len()).all(|i| {
                (i + 1..p.len()).all(|j| !o.contains(p[j], p[i]))
            });
            if ok {
                count += 1;
            }
        });
        prop_assert_eq!(exts.len(), count);
    }

    #[test]
    fn sinks_are_exactly_the_maximal_elements(edges in dag_edges(6)) {
        let o = relation(&edges).transitive_closure();
        let elems: Vec<TupleId> = (0..6).map(TupleId).collect();
        let sinks: BTreeSet<TupleId> = o.sinks(&elems).into_iter().collect();
        for &e in &elems {
            let has_successor = elems.iter().any(|&f| f != e && o.contains(e, f));
            prop_assert_eq!(!has_successor, sinks.contains(&e));
        }
    }

    #[test]
    fn completions_built_from_extensions_are_consistent(edges in dag_edges(4)) {
        // A spec with one relation, one entity, one attribute whose initial
        // order is the DAG; every linear extension must pass the membership
        // check, and the last element must supply the current value.
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for i in 0..4i64 {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(i)]))
                .unwrap();
        }
        for &(a, b) in &edges {
            spec.instance_mut(r)
                .add_order(AttrId(0), TupleId(a), TupleId(b))
                .unwrap();
        }
        let elems: Vec<TupleId> = (0..4).map(TupleId).collect();
        let o = relation(&edges);
        for ext in linear_extensions(&elems, &o) {
            let mut chains = BTreeMap::new();
            chains.insert(Eid(1), ext.clone());
            let rc = RelCompletion::new(spec.instance(r), vec![chains]).unwrap();
            let completion = Completion::new(vec![rc]);
            prop_assert!(completion.is_consistent_for(&spec));
            let cur = currency_core::current_tuple(
                spec.instance(r),
                completion.rel(r),
                Eid(1),
            );
            let last = *ext.last().unwrap();
            prop_assert_eq!(
                cur.values[0].clone(),
                spec.instance(r).tuple(last).values[0].clone()
            );
        }
    }
}

fn permute(items: &mut Vec<TupleId>, k: usize, f: &mut impl FnMut(&[TupleId])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[test]
fn fresh_values_never_collide_with_pool_values() {
    for i in 0..100u64 {
        let f = Value::Fresh(i);
        for v in [
            Value::int(i as i64),
            Value::str(format!("{i}")),
            Value::bool(i % 2 == 0),
        ] {
            assert_ne!(f, v);
        }
    }
}
