//! # currency-query
//!
//! The query-language family of Fan, Geerts & Wijsen's data-currency paper,
//! with evaluators over normal instances.
//!
//! The paper analyses the certain-current-query-answering problem for a
//! tower of languages:
//!
//! ```text
//! SP ⊂ CQ ⊂ UCQ ⊂ ∃FO⁺ ⊂ FO
//! ```
//!
//! * **SP** — selection/projection queries over a single relation atom
//!   (no join); the language of the paper's tractable cases (§6).
//! * **CQ** — conjunctive queries (relation atoms + equality, closed under
//!   `∧`, `∃`).
//! * **UCQ** — unions of conjunctive queries.
//! * **∃FO⁺** — existential positive FO (adds `∨` everywhere).
//! * **FO** — full first-order logic (adds `¬`, `∀`).
//!
//! This crate provides the shared AST ([`Formula`], [`Query`]), structural
//! classification into the tower ([`QueryClass`], [`classify`]), a
//! dedicated SP representation ([`SpQuery`]) used by the PTIME algorithms
//! in `currency-reason`, and two evaluators:
//!
//! * a bottom-up relational evaluator for positive formulas (joins,
//!   unions, projections) — used for CQ/UCQ/∃FO⁺ workloads where
//!   active-domain enumeration would be hopeless;
//! * an active-domain evaluator for full FO (the paper's FO queries are
//!   evaluated under active-domain semantics, as usual for certain-answer
//!   analyses).
//!
//! Queries are posed over [`Database`]s of normal instances — in the
//! currency setting these are the *current instances* `LST(Dᶜ)` produced
//! by `currency-core`.

mod ast;
mod classify;
mod eval;
mod parser;
mod sp;

pub use ast::{Atom, Formula, QVar, Query, QueryBuilder, Term};
pub use classify::{classify, QueryClass};
pub use currency_core::CmpOp;
pub use eval::{Database, EvalError};
pub use parser::{parse_query, ParseError};
pub use sp::{as_sp, SpCondition, SpQuery};
