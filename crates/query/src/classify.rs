//! Structural classification of queries into the paper's language tower.

use crate::ast::{Formula, Query};
use crate::sp::as_sp;
use currency_core::CmpOp;
use std::fmt;

/// The query-language tower of the paper: `SP ⊂ CQ ⊂ UCQ ⊂ ∃FO⁺ ⊂ FO`.
///
/// [`classify`] returns the *most specific* class a query syntactically
/// belongs to.  Classification is structural (no semantic minimisation):
/// the class drives which decision procedures and complexity regimes apply
/// (paper Tables II/III).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum QueryClass {
    /// Selection + projection over one atom (no join).
    Sp,
    /// Conjunctive query.
    Cq,
    /// Union of conjunctive queries.
    Ucq,
    /// Existential positive FO.
    ExistsPositiveFo,
    /// Full first-order logic.
    Fo,
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryClass::Sp => "SP",
            QueryClass::Cq => "CQ",
            QueryClass::Ucq => "UCQ",
            QueryClass::ExistsPositiveFo => "∃FO⁺",
            QueryClass::Fo => "FO",
        };
        write!(f, "{s}")
    }
}

/// `true` if the formula is a CQ body: atoms and equality comparisons
/// closed under conjunction and existential quantification.
fn is_cq_body(f: &Formula) -> bool {
    match f {
        Formula::Atom(_) => true,
        Formula::Cmp { op, .. } => *op == CmpOp::Eq,
        Formula::And(fs) => fs.iter().all(is_cq_body),
        Formula::Exists(_, g) => is_cq_body(g),
        _ => false,
    }
}

/// `true` if the formula is a UCQ body: a disjunction (possibly nested
/// under ∃) of CQ bodies.
fn is_ucq_body(f: &Formula) -> bool {
    match f {
        Formula::Or(fs) => fs.iter().all(is_ucq_body),
        Formula::Exists(_, g) => is_ucq_body(g),
        other => is_cq_body(other),
    }
}

/// Classify a query into the most specific language of the tower.
pub fn classify(q: &Query) -> QueryClass {
    if as_sp(q).is_some() {
        return QueryClass::Sp;
    }
    if is_cq_body(q.body()) {
        return QueryClass::Cq;
    }
    if is_ucq_body(q.body()) {
        return QueryClass::Ucq;
    }
    if q.body().is_positive() {
        return QueryClass::ExistsPositiveFo;
    }
    QueryClass::Fo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, QueryBuilder, Term};
    use currency_core::RelId;

    const R: RelId = RelId(0);
    const S: RelId = RelId(1);

    fn atom(rel: RelId, args: Vec<Term>) -> Formula {
        Formula::Atom(Atom::new(rel, args))
    }

    #[test]
    fn sp_query_is_sp() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let q = b.build(vec![x], atom(R, vec![Term::Var(x), Term::val(1)]));
        assert_eq!(classify(&q), QueryClass::Sp);
    }

    #[test]
    fn join_is_cq_not_sp() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let q = b.build(
            vec![x],
            Formula::And(vec![
                atom(R, vec![Term::Var(x)]),
                atom(S, vec![Term::Var(x)]),
            ]),
        );
        assert_eq!(classify(&q), QueryClass::Cq);
    }

    #[test]
    fn disjunction_of_cqs_is_ucq() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let q = b.build(
            vec![x],
            Formula::Or(vec![
                atom(R, vec![Term::Var(x)]),
                atom(S, vec![Term::Var(x)]),
            ]),
        );
        assert_eq!(classify(&q), QueryClass::Ucq);
    }

    #[test]
    fn disjunction_under_conjunction_is_epfo() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let q = b.build(
            vec![x],
            Formula::And(vec![
                atom(R, vec![Term::Var(x)]),
                Formula::Or(vec![
                    atom(S, vec![Term::Var(x)]),
                    atom(R, vec![Term::Var(x)]),
                ]),
            ]),
        );
        assert_eq!(classify(&q), QueryClass::ExistsPositiveFo);
    }

    #[test]
    fn non_equality_comparison_is_epfo_not_cq() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let y = b.var();
        let q = b.build(
            vec![x],
            Formula::And(vec![
                atom(R, vec![Term::Var(x), Term::Var(y)]),
                Formula::Cmp {
                    left: Term::Var(x),
                    op: CmpOp::Gt,
                    right: Term::val(5),
                },
            ]),
        );
        // Not SP (comparison is >), not CQ (CQ allows only equality).
        assert_eq!(classify(&q), QueryClass::ExistsPositiveFo);
    }

    #[test]
    fn negation_is_fo() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let q = b.build(
            vec![x],
            Formula::And(vec![
                atom(R, vec![Term::Var(x)]),
                Formula::Not(Box::new(atom(S, vec![Term::Var(x)]))),
            ]),
        );
        assert_eq!(classify(&q), QueryClass::Fo);
    }

    #[test]
    fn class_ordering_matches_tower() {
        assert!(QueryClass::Sp < QueryClass::Cq);
        assert!(QueryClass::Cq < QueryClass::Ucq);
        assert!(QueryClass::Ucq < QueryClass::ExistsPositiveFo);
        assert!(QueryClass::ExistsPositiveFo < QueryClass::Fo);
        assert_eq!(QueryClass::Cq.to_string(), "CQ");
    }
}
