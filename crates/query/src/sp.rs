//! SP queries: selection + projection over one relation atom.
//!
//! The paper singles out *SP queries* — CQ queries of the form
//!
//! ```text
//! Q(x̄) = ∃ e ȳ ( R(e, x̄, ȳ) ∧ ψ )
//! ```
//!
//! with `ψ` a conjunction of equality atoms and no variable repeated in the
//! atom — i.e. plain selection and projection, no join.  In the absence of
//! denial constraints, certain current answering, currency preservation and
//! bounded copying are all PTIME for SP queries (paper §6); the algorithms
//! in `currency-reason` take this normal form as input.

use crate::ast::{Atom, Formula, QVar, Query, QueryBuilder, Term};
use crate::eval::Database;
use currency_core::{AttrId, CmpOp, NormalInstance, RelId, Tuple, Value};
use std::collections::BTreeSet;

/// A selection condition of an SP query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpCondition {
    /// `σ_{A = c}`: attribute equals a constant.
    AttrConst(AttrId, Value),
    /// `σ_{A = A'}`: two attributes are equal.
    AttrAttr(AttrId, AttrId),
}

/// An SP query in normal form: projected attributes plus equality
/// selections over a single relation.
///
/// The entity id is always projected *implicitly out* (queries return
/// attribute values only), matching the paper's `∃e` in the SP normal form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpQuery {
    /// The single relation scanned.
    pub rel: RelId,
    /// Projected attributes, in output order.
    pub projection: Vec<AttrId>,
    /// Equality selections.
    pub conditions: Vec<SpCondition>,
}

impl SpQuery {
    /// The *identity query* on `rel` — project every attribute, no
    /// selection (the paper's Corollary 3.7 uses these).
    pub fn identity(rel: RelId, arity: usize) -> SpQuery {
        SpQuery {
            rel,
            projection: (0..arity).map(|i| AttrId(i as u32)).collect(),
            conditions: Vec::new(),
        }
    }

    /// `true` iff `tuple` passes every selection condition.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.conditions.iter().all(|c| match c {
            SpCondition::AttrConst(a, v) => tuple.value(*a) == v,
            SpCondition::AttrAttr(a, b) => tuple.value(*a) == tuple.value(*b),
        })
    }

    /// Project a matching tuple to the output row.
    pub fn project(&self, tuple: &Tuple) -> Vec<Value> {
        self.projection
            .iter()
            .map(|a| tuple.value(*a).clone())
            .collect()
    }

    /// Direct evaluation over one instance: scan, filter, project, dedup.
    pub fn eval(&self, inst: &NormalInstance) -> Vec<Vec<Value>> {
        let set: BTreeSet<Vec<Value>> = inst
            .iter()
            .filter(|t| self.matches(t))
            .map(|t| self.project(t))
            .collect();
        set.into_iter().collect()
    }

    /// Attributes that are projected or mentioned by a selection — the
    /// attributes whose current value can influence the query answer
    /// (the `LWit` analysis of the paper's Theorem 6.4 keys on these).
    pub fn relevant_attrs(&self) -> BTreeSet<AttrId> {
        let mut out: BTreeSet<AttrId> = self.projection.iter().copied().collect();
        for c in &self.conditions {
            match c {
                SpCondition::AttrConst(a, _) => {
                    out.insert(*a);
                }
                SpCondition::AttrAttr(a, b) => {
                    out.insert(*a);
                    out.insert(*b);
                }
            }
        }
        out
    }

    /// Convert to a generic [`Query`] (for cross-validation against the
    /// generic evaluator and the exact certain-answer solver).
    pub fn to_query(&self, arity: usize) -> Query {
        let mut b = QueryBuilder::new();
        let attr_vars: Vec<QVar> = b.vars(arity);
        let args: Vec<Term> = attr_vars.iter().map(|&v| Term::Var(v)).collect();
        let mut conjuncts = vec![Formula::Atom(Atom::new(self.rel, args))];
        for c in &self.conditions {
            match c {
                SpCondition::AttrConst(a, v) => conjuncts.push(Formula::Cmp {
                    left: Term::Var(attr_vars[a.index()]),
                    op: CmpOp::Eq,
                    right: Term::Const(v.clone()),
                }),
                SpCondition::AttrAttr(a, bb) => conjuncts.push(Formula::Cmp {
                    left: Term::Var(attr_vars[a.index()]),
                    op: CmpOp::Eq,
                    right: Term::Var(attr_vars[bb.index()]),
                }),
            }
        }
        let head: Vec<QVar> = self
            .projection
            .iter()
            .map(|a| attr_vars[a.index()])
            .collect();
        let existential: Vec<QVar> = attr_vars
            .iter()
            .copied()
            .filter(|v| !head.contains(v))
            .collect();
        let body = Formula::Exists(existential, Box::new(Formula::And(conjuncts)));
        b.build(head, body)
    }

    /// Evaluate through the generic engine (test helper / cross-check).
    pub fn eval_via_query(&self, arity: usize, db: &Database) -> Vec<Vec<Value>> {
        self.to_query(arity).eval(db)
    }
}

/// Recognise the SP normal form of a generic query, if it has one.
///
/// Accepts bodies of the shape `∃ȳ (R(ē?, t̄) ∧ ψ)` where the atom's
/// argument terms are distinct variables or constants (constants become
/// `AttrConst` selections), `ψ` is a conjunction of equalities between
/// atom variables or between an atom variable and a constant, and every
/// head variable occurs in the atom.  Returns `None` when the query is not
/// SP (e.g. joins, disjunction, repeated variables in the atom used as a
/// hidden join, negation).
pub fn as_sp(q: &Query) -> Option<SpQuery> {
    // Strip one layer of ∃ and collect conjuncts.
    let (bound, conjuncts): (Vec<QVar>, Vec<&Formula>) = match q.body() {
        Formula::Exists(vs, inner) => match inner.as_ref() {
            Formula::And(fs) => (vs.clone(), fs.iter().collect()),
            other => (vs.clone(), vec![other]),
        },
        Formula::And(fs) => (Vec::new(), fs.iter().collect()),
        other => (Vec::new(), vec![other]),
    };
    let _ = bound;
    // Exactly one atom; the rest must be equality comparisons.
    let mut atom: Option<&Atom> = None;
    let mut cmps: Vec<(&Term, &Term)> = Vec::new();
    for c in conjuncts {
        match c {
            Formula::Atom(a) => {
                if atom.is_some() {
                    return None; // join
                }
                atom = Some(a);
            }
            Formula::Cmp {
                left,
                op: CmpOp::Eq,
                right,
            } => cmps.push((left, right)),
            _ => return None,
        }
    }
    let atom = atom?;
    // EID position must be unconstrained or a variable not used elsewhere.
    if let Some(Term::Const(_)) = atom.eid {
        return None;
    }
    // Atom argument terms: variables must be distinct (no hidden
    // self-join); constants become selections.
    let mut var_attr: Vec<(QVar, AttrId)> = Vec::new();
    let mut conditions: Vec<SpCondition> = Vec::new();
    for (i, t) in atom.args.iter().enumerate() {
        let attr = AttrId(i as u32);
        match t {
            Term::Var(v) => {
                if var_attr.iter().any(|(w, _)| w == v) {
                    return None; // repeated variable: implicit equality join
                }
                if let Some(Term::Var(e)) = &atom.eid {
                    if e == v {
                        return None;
                    }
                }
                var_attr.push((*v, attr));
            }
            Term::Const(c) => conditions.push(SpCondition::AttrConst(attr, c.clone())),
        }
    }
    let attr_of = |v: &QVar| var_attr.iter().find(|(w, _)| w == v).map(|(_, a)| *a);
    for (l, r) in cmps {
        match (l, r) {
            (Term::Var(a), Term::Var(b)) => {
                conditions.push(SpCondition::AttrAttr(attr_of(a)?, attr_of(b)?));
            }
            (Term::Var(a), Term::Const(c)) | (Term::Const(c), Term::Var(a)) => {
                conditions.push(SpCondition::AttrConst(attr_of(a)?, c.clone()));
            }
            (Term::Const(a), Term::Const(b)) => {
                if a != b {
                    return None; // constantly false: not representable
                }
            }
        }
    }
    // Head variables must come from the atom.
    let mut projection = Vec::new();
    for h in q.head() {
        projection.push(attr_of(h)?);
    }
    Some(SpQuery {
        rel: atom.rel,
        projection,
        conditions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::Eid;

    const R: RelId = RelId(0);

    fn inst(rows: &[(u64, &[&str])]) -> NormalInstance {
        let mut n = NormalInstance::new(R);
        for (e, vals) in rows {
            n.push(Tuple::new(
                Eid(*e),
                vals.iter().map(|v| Value::str(*v)).collect(),
            ));
        }
        n
    }

    #[test]
    fn identity_query_returns_all_rows() {
        let data = inst(&[(1, &["a", "x"]), (2, &["b", "y"])]);
        let q = SpQuery::identity(R, 2);
        assert_eq!(q.eval(&data).len(), 2);
    }

    #[test]
    fn selection_and_projection() {
        let data = inst(&[
            (1, &["mary", "old"]),
            (1, &["mary", "new"]),
            (2, &["bob", "z"]),
        ]);
        let q = SpQuery {
            rel: R,
            projection: vec![AttrId(1)],
            conditions: vec![SpCondition::AttrConst(AttrId(0), Value::str("mary"))],
        };
        assert_eq!(
            q.eval(&data),
            vec![vec![Value::str("new")], vec![Value::str("old")]]
        );
    }

    #[test]
    fn attr_attr_selection() {
        let data = inst(&[(1, &["x", "x"]), (2, &["x", "y"])]);
        let q = SpQuery {
            rel: R,
            projection: vec![AttrId(0)],
            conditions: vec![SpCondition::AttrAttr(AttrId(0), AttrId(1))],
        };
        assert_eq!(q.eval(&data), vec![vec![Value::str("x")]]);
    }

    #[test]
    fn sp_evaluation_agrees_with_generic_engine() {
        let data = vec![inst(&[
            (1, &["mary", "old"]),
            (1, &["mary", "new"]),
            (2, &["bob", "z"]),
        ])];
        let db = Database::new(&data);
        let q = SpQuery {
            rel: R,
            projection: vec![AttrId(1), AttrId(0)],
            conditions: vec![SpCondition::AttrConst(AttrId(0), Value::str("mary"))],
        };
        assert_eq!(q.eval(&data[0]), q.eval_via_query(2, &db));
    }

    #[test]
    fn round_trip_through_as_sp() {
        let q = SpQuery {
            rel: R,
            projection: vec![AttrId(1)],
            conditions: vec![
                SpCondition::AttrConst(AttrId(0), Value::str("mary")),
                SpCondition::AttrAttr(AttrId(1), AttrId(1)),
            ],
        };
        let generic = q.to_query(3);
        let back = as_sp(&generic).expect("SP recognisable");
        assert_eq!(back.rel, q.rel);
        assert_eq!(back.projection, q.projection);
    }

    #[test]
    fn join_queries_are_not_sp() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let body = Formula::And(vec![
            Formula::Atom(Atom::new(R, vec![Term::Var(x)])),
            Formula::Atom(Atom::new(RelId(1), vec![Term::Var(x)])),
        ]);
        let q = b.build(vec![x], body);
        assert!(as_sp(&q).is_none());
    }

    #[test]
    fn repeated_atom_variables_are_not_sp() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let body = Formula::Atom(Atom::new(R, vec![Term::Var(x), Term::Var(x)]));
        let q = b.build(vec![x], body);
        assert!(as_sp(&q).is_none());
    }

    #[test]
    fn constant_in_atom_becomes_selection() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let body = Formula::Atom(Atom::new(R, vec![Term::val("mary"), Term::Var(x)]));
        let q = b.build(vec![x], body);
        let sp = as_sp(&q).expect("SP with constant selection");
        assert_eq!(
            sp.conditions,
            vec![SpCondition::AttrConst(AttrId(0), Value::str("mary"))]
        );
        assert_eq!(sp.projection, vec![AttrId(1)]);
    }

    #[test]
    fn relevant_attrs_cover_projection_and_selections() {
        let q = SpQuery {
            rel: R,
            projection: vec![AttrId(2)],
            conditions: vec![
                SpCondition::AttrConst(AttrId(0), Value::str("c")),
                SpCondition::AttrAttr(AttrId(1), AttrId(3)),
            ],
        };
        let rel: Vec<u32> = q.relevant_attrs().into_iter().map(|a| a.0).collect();
        assert_eq!(rel, vec![0, 1, 2, 3]);
    }
}
