//! Query evaluation over normal instances.
//!
//! Two engines, chosen automatically by [`Query::eval`]:
//!
//! * **Relational** (positive formulas): bottom-up evaluation producing
//!   sets of bindings — atoms scan instances, conjunction is a hash join
//!   (smallest intermediate first), disjunction is a padded union,
//!   existential quantification is projection.  This is what makes the
//!   CQ-based reduction gadgets of the paper tractable to *evaluate* even
//!   when the surrounding decision problem is hard.
//! * **Active domain** (full FO): the standard recursive
//!   satisfaction check with quantifiers ranging over the active domain
//!   (all database values, entity ids, and query constants), as usual in
//!   certain-answer analyses.

use crate::ast::{Atom, Formula, QVar, Query, Term};
use currency_core::{NormalInstance, RelId, Value};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Errors from query evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The database does not bind the relation the query mentions.
    UnknownRelation(RelId),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation(r) => {
                write!(f, "database holds no instance for relation {r:?}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// A database: one normal instance per relation.
///
/// In the currency setting this is a current instance family `LST(Dᶜ)`.
pub struct Database<'a> {
    by_rel: HashMap<RelId, &'a NormalInstance>,
}

impl<'a> Database<'a> {
    /// Index the given instances by their relation ids.
    pub fn new(instances: &'a [NormalInstance]) -> Database<'a> {
        Database {
            by_rel: instances.iter().map(|i| (i.rel(), i)).collect(),
        }
    }

    /// Index instances given as references.
    pub fn from_refs(instances: &[&'a NormalInstance]) -> Database<'a> {
        Database {
            by_rel: instances.iter().map(|i| (i.rel(), *i)).collect(),
        }
    }

    /// The instance of a relation, if bound.
    pub fn instance(&self, rel: RelId) -> Option<&'a NormalInstance> {
        self.by_rel.get(&rel).copied()
    }

    /// The active domain: every attribute value and every entity id
    /// (entity ids surface as [`Value::Int`]).
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for inst in self.by_rel.values() {
            for t in inst.iter() {
                dom.insert(Value::Int(t.eid.0 as i64));
                for v in &t.values {
                    dom.insert(v.clone());
                }
            }
        }
        dom
    }
}

/// Entity ids surface in query answers as integers.
pub(crate) fn eid_value(eid: currency_core::Eid) -> Value {
    Value::Int(eid.0 as i64)
}

/// An intermediate relation: named columns over a set of rows.
#[derive(Clone, Debug)]
struct Rows {
    vars: Vec<QVar>,
    tuples: BTreeSet<Vec<Value>>,
}

impl Rows {
    fn truth(t: bool) -> Rows {
        Rows {
            vars: Vec::new(),
            tuples: if t {
                std::iter::once(Vec::new()).collect()
            } else {
                BTreeSet::new()
            },
        }
    }

    fn col(&self, v: QVar) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }

    fn from_atom(atom: &Atom, inst: Option<&NormalInstance>) -> Rows {
        // Column list: distinct variables in first-occurrence order.
        let mut vars: Vec<QVar> = Vec::new();
        let note = |t: &Term, vars: &mut Vec<QVar>| {
            if let Term::Var(v) = t {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        };
        if let Some(e) = &atom.eid {
            note(e, &mut vars);
        }
        for t in &atom.args {
            note(t, &mut vars);
        }
        let mut tuples = BTreeSet::new();
        let Some(inst) = inst else {
            return Rows { vars, tuples };
        };
        'tuple: for t in inst.iter() {
            let mut binding: Vec<Option<Value>> = vec![None; vars.len()];
            let unify = |term: &Term, value: &Value, binding: &mut Vec<Option<Value>>| match term {
                Term::Const(c) => c == value,
                Term::Var(v) => {
                    let ix = vars.iter().position(|w| w == v).expect("var indexed");
                    match &binding[ix] {
                        Some(prev) => prev == value,
                        None => {
                            binding[ix] = Some(value.clone());
                            true
                        }
                    }
                }
            };
            if let Some(e) = &atom.eid {
                if !unify(e, &eid_value(t.eid), &mut binding) {
                    continue 'tuple;
                }
            }
            if atom.args.len() != t.values.len() {
                continue 'tuple; // arity mismatch: no match (defensive)
            }
            for (term, value) in atom.args.iter().zip(&t.values) {
                if !unify(term, value, &mut binding) {
                    continue 'tuple;
                }
            }
            tuples.insert(binding.into_iter().map(|b| b.expect("bound")).collect());
        }
        Rows { vars, tuples }
    }

    /// Natural join on shared columns.
    fn join(&self, other: &Rows) -> Rows {
        let shared: Vec<QVar> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        let out_vars: Vec<QVar> = self
            .vars
            .iter()
            .copied()
            .chain(
                other
                    .vars
                    .iter()
                    .copied()
                    .filter(|v| !self.vars.contains(v)),
            )
            .collect();
        let self_key: Vec<usize> = shared.iter().map(|&v| self.col(v).unwrap()).collect();
        let other_key: Vec<usize> = shared.iter().map(|&v| other.col(v).unwrap()).collect();
        let other_extra: Vec<usize> = other
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| !self.vars.contains(v))
            .map(|(i, _)| i)
            .collect();
        // Hash the smaller side on the shared key.
        let mut index: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
        for row in &other.tuples {
            let key: Vec<Value> = other_key.iter().map(|&i| row[i].clone()).collect();
            index.entry(key).or_default().push(row);
        }
        let mut tuples = BTreeSet::new();
        for row in &self.tuples {
            let key: Vec<Value> = self_key.iter().map(|&i| row[i].clone()).collect();
            if let Some(matches) = index.get(&key) {
                for m in matches {
                    let mut out = row.clone();
                    out.extend(other_extra.iter().map(|&i| m[i].clone()));
                    tuples.insert(out);
                }
            }
        }
        Rows {
            vars: out_vars,
            tuples,
        }
    }

    /// Add a column for `v` ranging over the whole domain.
    fn pad_with_domain(&mut self, v: QVar, dom: &BTreeSet<Value>) {
        debug_assert!(self.col(v).is_none());
        self.vars.push(v);
        let old = std::mem::take(&mut self.tuples);
        for row in old {
            for d in dom {
                let mut r = row.clone();
                r.push(d.clone());
                self.tuples.insert(r);
            }
        }
    }

    /// Keep only the columns in `keep` (first-occurrence order of `keep`).
    fn project(&self, keep: &[QVar]) -> Rows {
        let cols: Vec<usize> = keep
            .iter()
            .map(|&v| self.col(v).expect("projected var"))
            .collect();
        Rows {
            vars: keep.to_vec(),
            tuples: self
                .tuples
                .iter()
                .map(|row| cols.iter().map(|&c| row[c].clone()).collect())
                .collect(),
        }
    }

    fn filter_cmp(&mut self, left: &Term, op: currency_core::CmpOp, right: &Term) {
        let vars_snapshot = self.vars.clone();
        let resolve = |row: &[Value], t: &Term| -> Value {
            match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => {
                    let ix = vars_snapshot.iter().position(|w| w == v).expect("bound");
                    row[ix].clone()
                }
            }
        };
        self.tuples = std::mem::take(&mut self.tuples)
            .into_iter()
            .filter(|row| op.eval(&resolve(row, left), &resolve(row, right)))
            .collect();
    }

    fn union_into(self, vars: &[QVar], dom: &BTreeSet<Value>, acc: &mut Rows) {
        let mut padded = self;
        for &v in vars {
            if padded.col(v).is_none() {
                padded.pad_with_domain(v, dom);
            }
        }
        let reordered = padded.project(vars);
        acc.tuples.extend(reordered.tuples);
    }
}

/// Bottom-up evaluation of a positive formula.
fn eval_positive(f: &Formula, db: &Database, dom: &BTreeSet<Value>) -> Rows {
    match f {
        Formula::Atom(a) => Rows::from_atom(a, db.instance(a.rel)),
        Formula::Cmp { left, op, right } => {
            // Standalone comparison: variables range over the domain.
            let mut rows = Rows::truth(true);
            for t in [left, right] {
                if let Term::Var(v) = t {
                    if rows.col(*v).is_none() {
                        rows.pad_with_domain(*v, dom);
                    }
                }
            }
            rows.filter_cmp(left, *op, right);
            rows
        }
        Formula::And(fs) => {
            let (filters, relational): (Vec<&Formula>, Vec<&Formula>) =
                fs.iter().partition(|g| matches!(g, Formula::Cmp { .. }));
            let mut parts: Vec<Rows> = relational
                .iter()
                .map(|g| eval_positive(g, db, dom))
                .collect();
            // Join smallest-first to keep intermediates tight.
            parts.sort_by_key(|r| r.tuples.len());
            let mut acc = parts
                .into_iter()
                .reduce(|a, b| a.join(&b))
                .unwrap_or_else(|| Rows::truth(true));
            for g in filters {
                if let Formula::Cmp { left, op, right } = g {
                    for t in [left, right] {
                        if let Term::Var(v) = t {
                            if acc.col(*v).is_none() {
                                acc.pad_with_domain(*v, dom);
                            }
                        }
                    }
                    acc.filter_cmp(left, *op, right);
                }
            }
            acc
        }
        Formula::Or(fs) => {
            // Output columns: union of free variables, padded with the
            // domain where a disjunct does not constrain a variable.
            let all_vars: Vec<QVar> = f.free_vars().into_iter().collect();
            let mut acc = Rows {
                vars: all_vars.clone(),
                tuples: BTreeSet::new(),
            };
            for g in fs {
                eval_positive(g, db, dom).union_into(&all_vars, dom, &mut acc);
            }
            acc
        }
        Formula::Exists(vs, g) => {
            let inner = eval_positive(g, db, dom);
            let keep: Vec<QVar> = inner
                .vars
                .iter()
                .copied()
                .filter(|v| !vs.contains(v))
                .collect();
            inner.project(&keep)
        }
        Formula::Not(_) | Formula::Forall(_, _) => {
            unreachable!("eval_positive called on a non-positive formula")
        }
    }
}

/// Active-domain satisfaction for full FO.
fn satisfies(
    f: &Formula,
    env: &mut HashMap<QVar, Value>,
    db: &Database,
    dom: &BTreeSet<Value>,
) -> bool {
    match f {
        Formula::Atom(a) => {
            let Some(inst) = db.instance(a.rel) else {
                return false;
            };
            let term_value = |t: &Term| -> Value {
                match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => env.get(v).expect("FO evaluation: unbound variable").clone(),
                }
            };
            inst.iter().any(|tup| {
                if let Some(e) = &a.eid {
                    if term_value(e) != eid_value(tup.eid) {
                        return false;
                    }
                }
                a.args.len() == tup.values.len()
                    && a.args
                        .iter()
                        .zip(&tup.values)
                        .all(|(t, v)| term_value(t) == *v)
            })
        }
        Formula::Cmp { left, op, right } => {
            let term_value = |t: &Term| -> Value {
                match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => env.get(v).expect("FO evaluation: unbound variable").clone(),
                }
            };
            op.eval(&term_value(left), &term_value(right))
        }
        Formula::And(fs) => fs.iter().all(|g| satisfies(g, env, db, dom)),
        Formula::Or(fs) => fs.iter().any(|g| satisfies(g, env, db, dom)),
        Formula::Not(g) => !satisfies(g, env, db, dom),
        Formula::Exists(vs, g) => quantify(vs, g, env, db, dom, false),
        Formula::Forall(vs, g) => quantify(vs, g, env, db, dom, true),
    }
}

fn quantify(
    vs: &[QVar],
    g: &Formula,
    env: &mut HashMap<QVar, Value>,
    db: &Database,
    dom: &BTreeSet<Value>,
    universal: bool,
) -> bool {
    match vs.split_first() {
        None => satisfies(g, env, db, dom),
        Some((&v, rest)) => {
            let domain: Vec<Value> = dom.iter().cloned().collect();
            let mut result = universal;
            for d in domain {
                let saved = env.insert(v, d);
                let sub = quantify(rest, g, env, db, dom, universal);
                match saved {
                    Some(s) => {
                        env.insert(v, s);
                    }
                    None => {
                        env.remove(&v);
                    }
                }
                if universal && !sub {
                    result = false;
                    break;
                }
                if !universal && sub {
                    result = true;
                    break;
                }
            }
            result
        }
    }
}

impl Query {
    /// Evaluate over a database, returning the sorted, deduplicated answer
    /// set (one row per head assignment; Boolean queries answer `[[]]` for
    /// true and `[]` for false).
    pub fn eval(&self, db: &Database) -> Vec<Vec<Value>> {
        let mut dom = db.active_domain();
        dom.extend(self.body().constants());
        if self.body().is_positive() {
            let mut rows = eval_positive(self.body(), db, &dom);
            for &h in self.head() {
                if rows.col(h).is_none() {
                    rows.pad_with_domain(h, &dom);
                }
            }
            let projected = rows.project(self.head());
            projected.tuples.into_iter().collect()
        } else {
            // Active-domain FO evaluation.
            let mut answers = BTreeSet::new();
            let head = self.head().to_vec();
            let mut env = HashMap::new();
            enumerate_head(&head, 0, &mut env, db, &dom, self.body(), &mut answers);
            answers.into_iter().collect()
        }
    }

    /// Evaluate as a Boolean query: `true` iff the answer set is nonempty.
    pub fn eval_bool(&self, db: &Database) -> bool {
        !self.eval(db).is_empty()
    }
}

fn enumerate_head(
    head: &[QVar],
    ix: usize,
    env: &mut HashMap<QVar, Value>,
    db: &Database,
    dom: &BTreeSet<Value>,
    body: &Formula,
    out: &mut BTreeSet<Vec<Value>>,
) {
    if ix == head.len() {
        if satisfies(body, env, db, dom) {
            out.insert(head.iter().map(|v| env[v].clone()).collect());
        }
        return;
    }
    // Head variables may repeat; a repeated variable is already bound.
    if env.contains_key(&head[ix]) {
        enumerate_head(head, ix + 1, env, db, dom, body, out);
        return;
    }
    let domain: Vec<Value> = dom.iter().cloned().collect();
    for d in domain {
        env.insert(head[ix], d);
        enumerate_head(head, ix + 1, env, db, dom, body, out);
        env.remove(&head[ix]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryBuilder;
    use currency_core::{CmpOp, Eid, Tuple};

    const R: RelId = RelId(0);
    const S: RelId = RelId(1);

    fn inst(rel: RelId, rows: &[(u64, &[i64])]) -> NormalInstance {
        let mut n = NormalInstance::new(rel);
        for (e, vals) in rows {
            n.push(Tuple::new(
                Eid(*e),
                vals.iter().map(|&v| Value::int(v)).collect(),
            ));
        }
        n
    }

    #[test]
    fn atom_scan_with_constants_and_repeats() {
        let data = vec![inst(R, &[(1, &[5, 5]), (1, &[5, 6]), (2, &[7, 7])])];
        let db = Database::new(&data);
        let mut b = QueryBuilder::new();
        let x = b.var();
        // Q(x) = R(_, x, x): repeated variable forces equal columns.
        let q = b.build(
            vec![x],
            Formula::Atom(Atom::new(R, vec![Term::Var(x), Term::Var(x)])),
        );
        assert_eq!(q.eval(&db), vec![vec![Value::int(5)], vec![Value::int(7)]]);
    }

    #[test]
    fn eid_binding_in_atoms() {
        let data = vec![inst(R, &[(1, &[5]), (2, &[6])])];
        let db = Database::new(&data);
        let mut b = QueryBuilder::new();
        let e = b.var();
        let x = b.var();
        // Q(e, x) = R(e, x)
        let q = b.build(
            vec![e, x],
            Formula::Atom(Atom::with_eid(R, Term::Var(e), vec![Term::Var(x)])),
        );
        assert_eq!(
            q.eval(&db),
            vec![
                vec![Value::int(1), Value::int(5)],
                vec![Value::int(2), Value::int(6)]
            ]
        );
    }

    #[test]
    fn join_across_relations() {
        let data = vec![
            inst(R, &[(1, &[10]), (2, &[20])]),
            inst(S, &[(7, &[10, 100]), (8, &[30, 300])]),
        ];
        let db = Database::new(&data);
        let mut b = QueryBuilder::new();
        let x = b.var();
        let y = b.var();
        // Q(y) = ∃x. R(_, x) ∧ S(_, x, y)
        let body = Formula::Exists(
            vec![x],
            Box::new(Formula::And(vec![
                Formula::Atom(Atom::new(R, vec![Term::Var(x)])),
                Formula::Atom(Atom::new(S, vec![Term::Var(x), Term::Var(y)])),
            ])),
        );
        let q = b.build(vec![y], body);
        assert_eq!(q.eval(&db), vec![vec![Value::int(100)]]);
    }

    #[test]
    fn union_pads_missing_variables_consistently() {
        let data = vec![inst(R, &[(1, &[1])]), inst(S, &[(2, &[2])])];
        let db = Database::new(&data);
        let mut b = QueryBuilder::new();
        let x = b.var();
        // Q(x) = R(_, x) ∨ S(_, x): plain UCQ, same vars in both branches.
        let q = b.build(
            vec![x],
            Formula::Or(vec![
                Formula::Atom(Atom::new(R, vec![Term::Var(x)])),
                Formula::Atom(Atom::new(S, vec![Term::Var(x)])),
            ]),
        );
        assert_eq!(q.eval(&db), vec![vec![Value::int(1)], vec![Value::int(2)]]);
    }

    #[test]
    fn comparison_filters() {
        let data = vec![inst(R, &[(1, &[5]), (2, &[10]), (3, &[15])])];
        let db = Database::new(&data);
        let mut b = QueryBuilder::new();
        let x = b.var();
        let q = b.build(
            vec![x],
            Formula::And(vec![
                Formula::Atom(Atom::new(R, vec![Term::Var(x)])),
                Formula::Cmp {
                    left: Term::Var(x),
                    op: CmpOp::Gt,
                    right: Term::val(7),
                },
            ]),
        );
        assert_eq!(
            q.eval(&db),
            vec![vec![Value::int(10)], vec![Value::int(15)]]
        );
    }

    #[test]
    fn boolean_queries() {
        let data = vec![inst(R, &[(1, &[5])])];
        let db = Database::new(&data);
        let mut b = QueryBuilder::new();
        let x = b.var();
        let q = b.build(
            vec![],
            Formula::Exists(
                vec![x],
                Box::new(Formula::Atom(Atom::new(R, vec![Term::Var(x)]))),
            ),
        );
        assert!(q.eval_bool(&db));
        assert_eq!(q.eval(&db), vec![Vec::<Value>::new()]);
        let mut b2 = QueryBuilder::new();
        let y = b2.var();
        let q2 = b2.build(
            vec![],
            Formula::Exists(
                vec![y],
                Box::new(Formula::Atom(Atom::new(S, vec![Term::Var(y)]))),
            ),
        );
        assert!(!q2.eval_bool(&db), "no S instance bound");
    }

    #[test]
    fn negation_via_active_domain() {
        let data = vec![inst(R, &[(1, &[1]), (2, &[2])]), inst(S, &[(9, &[1])])];
        let db = Database::new(&data);
        let mut b = QueryBuilder::new();
        let x = b.var();
        // Q(x) = R(_, x) ∧ ¬S(_, x)
        let q = b.build(
            vec![x],
            Formula::And(vec![
                Formula::Atom(Atom::new(R, vec![Term::Var(x)])),
                Formula::Not(Box::new(Formula::Atom(Atom::new(S, vec![Term::Var(x)])))),
            ]),
        );
        assert_eq!(q.eval(&db), vec![vec![Value::int(2)]]);
    }

    #[test]
    fn universal_quantification() {
        // ∀x. R(_, x) → S(_, x) encoded as ∀x. ¬R(_, x) ∨ S(_, x).
        let data = vec![
            inst(R, &[(1, &[1]), (2, &[2])]),
            inst(S, &[(9, &[1]), (9, &[2])]),
        ];
        let db = Database::new(&data);
        let mut b = QueryBuilder::new();
        let x = b.var();
        let q = b.build(
            vec![],
            Formula::Forall(
                vec![x],
                Box::new(Formula::Or(vec![
                    Formula::Not(Box::new(Formula::Atom(Atom::new(R, vec![Term::Var(x)])))),
                    Formula::Atom(Atom::new(S, vec![Term::Var(x)])),
                ])),
            ),
        );
        assert!(q.eval_bool(&db));
        // Remove 2 from S: the implication fails.
        let data2 = vec![inst(R, &[(1, &[1]), (2, &[2])]), inst(S, &[(9, &[1])])];
        let db2 = Database::new(&data2);
        assert!(!q.eval_bool(&db2));
    }

    #[test]
    fn positive_and_fo_paths_agree_on_cq() {
        // Evaluate the same CQ through both engines by wrapping it in a
        // double negation (forcing the FO path) and comparing.
        let data = vec![
            inst(R, &[(1, &[10]), (2, &[20]), (3, &[10])]),
            inst(S, &[(7, &[10, 1]), (8, &[20, 2])]),
        ];
        let db = Database::new(&data);
        let mk = |wrap: bool| {
            let mut b = QueryBuilder::new();
            let x = b.var();
            let y = b.var();
            let cq = Formula::Exists(
                vec![x],
                Box::new(Formula::And(vec![
                    Formula::Atom(Atom::new(R, vec![Term::Var(x)])),
                    Formula::Atom(Atom::new(S, vec![Term::Var(x), Term::Var(y)])),
                ])),
            );
            let body = if wrap {
                Formula::Not(Box::new(Formula::Not(Box::new(cq))))
            } else {
                cq
            };
            b.build(vec![y], body)
        };
        assert_eq!(mk(false).eval(&db), mk(true).eval(&db));
    }

    #[test]
    fn active_domain_includes_eids_and_query_constants() {
        let data = vec![inst(R, &[(5, &[100])])];
        let db = Database::new(&data);
        let dom = db.active_domain();
        assert!(dom.contains(&Value::int(5)), "entity id in domain");
        assert!(dom.contains(&Value::int(100)));
    }
}
