//! Query AST: terms, atoms, formulas, and queries with free variables.

use currency_core::{CmpOp, RelId, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A query variable (dense index within one [`Query`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QVar(pub u32);

impl QVar {
    /// Dense index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for QVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A query variable.
    Var(QVar),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Convenience constructor for a constant term.
    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }
}

impl From<QVar> for Term {
    fn from(v: QVar) -> Term {
        Term::Var(v)
    }
}

/// A relation atom `R(eid, a₁, …, aₙ)`.
///
/// `eid` is the term bound to the tuple's entity id (entity ids surface as
/// [`Value::Int`]); `None` leaves the entity id unconstrained, matching the
/// paper's convention of "omitting the EID attribute" in query displays.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The relation queried.
    pub rel: RelId,
    /// Term matched against the entity id, if any.
    pub eid: Option<Term>,
    /// Terms matched against the proper attributes, in schema order.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom with an unconstrained entity id.
    pub fn new(rel: RelId, args: Vec<Term>) -> Atom {
        Atom {
            rel,
            eid: None,
            args,
        }
    }

    /// Build an atom whose entity id is matched against `eid`.
    pub fn with_eid(rel: RelId, eid: Term, args: Vec<Term>) -> Atom {
        Atom {
            rel,
            eid: Some(eid),
            args,
        }
    }
}

/// A first-order formula over relation atoms and value comparisons.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// A relation atom.
    Atom(Atom),
    /// A comparison `left op right`.
    Cmp {
        /// Left term.
        left: Term,
        /// Operator.
        op: CmpOp,
        /// Right term.
        right: Term,
    },
    /// Conjunction (n-ary; empty = true).
    And(Vec<Formula>),
    /// Disjunction (n-ary; empty = false).
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Existential quantification of the listed variables.
    Exists(Vec<QVar>, Box<Formula>),
    /// Universal quantification of the listed variables.
    Forall(Vec<QVar>, Box<Formula>),
}

impl Formula {
    /// `true` if the formula uses neither negation nor universal
    /// quantification (the ∃FO⁺ fragment).
    pub fn is_positive(&self) -> bool {
        match self {
            Formula::Atom(_) | Formula::Cmp { .. } => true,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_positive),
            Formula::Exists(_, f) => f.is_positive(),
            Formula::Not(_) | Formula::Forall(_, _) => false,
        }
    }

    /// The free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<QVar> {
        fn go(f: &Formula, bound: &mut Vec<QVar>, out: &mut BTreeSet<QVar>) {
            let add_term = |t: &Term, bound: &Vec<QVar>, out: &mut BTreeSet<QVar>| {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            };
            match f {
                Formula::Atom(a) => {
                    if let Some(e) = &a.eid {
                        add_term(e, bound, out);
                    }
                    for t in &a.args {
                        add_term(t, bound, out);
                    }
                }
                Formula::Cmp { left, right, .. } => {
                    add_term(left, bound, out);
                    add_term(right, bound, out);
                }
                Formula::And(fs) | Formula::Or(fs) => {
                    for g in fs {
                        go(g, bound, out);
                    }
                }
                Formula::Not(g) => go(g, bound, out),
                Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
                    let n = bound.len();
                    bound.extend(vs.iter().copied());
                    go(g, bound, out);
                    bound.truncate(n);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// All relations mentioned by atoms of the formula.
    pub fn relations(&self) -> BTreeSet<RelId> {
        fn go(f: &Formula, out: &mut BTreeSet<RelId>) {
            match f {
                Formula::Atom(a) => {
                    out.insert(a.rel);
                }
                Formula::Cmp { .. } => {}
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| go(g, out)),
                Formula::Not(g) => go(g, out),
                Formula::Exists(_, g) | Formula::Forall(_, g) => go(g, out),
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }

    /// All constants mentioned by the formula (for active domains).
    pub fn constants(&self) -> BTreeSet<Value> {
        fn add(t: &Term, out: &mut BTreeSet<Value>) {
            if let Term::Const(v) = t {
                out.insert(v.clone());
            }
        }
        fn go(f: &Formula, out: &mut BTreeSet<Value>) {
            match f {
                Formula::Atom(a) => {
                    if let Some(e) = &a.eid {
                        add(e, out);
                    }
                    for t in &a.args {
                        add(t, out);
                    }
                }
                Formula::Cmp { left, right, .. } => {
                    add(left, out);
                    add(right, out);
                }
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| go(g, out)),
                Formula::Not(g) => go(g, out),
                Formula::Exists(_, g) | Formula::Forall(_, g) => go(g, out),
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }
}

/// A query: a head of free variables over a formula body.
///
/// The answer to `Q(x̄) = φ` over a database is the set of assignments to
/// `x̄` making `φ` true.  A query with an empty head is *Boolean*: its
/// answer is either `{()}` (true) or `{}` (false).
#[derive(Clone, Debug)]
pub struct Query {
    head: Vec<QVar>,
    body: Formula,
    num_vars: u32,
}

impl Query {
    /// The head (answer) variables, in output order.
    pub fn head(&self) -> &[QVar] {
        &self.head
    }

    /// The body formula.
    pub fn body(&self) -> &Formula {
        &self.body
    }

    /// Total number of variables allocated by the builder.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// `true` if the query has no head variables.
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }
}

/// Queries compare (and hash) by their **canonical key**: the head and
/// the body.  `num_vars` is a builder artifact — it counts allocated
/// variables, including ones the body never mentions — and two queries
/// with equal head and body have identical answer sets regardless of it.
/// This makes `Query` directly usable as a structural cache key (e.g. in
/// an answer cache) without stringifying the AST.
impl PartialEq for Query {
    fn eq(&self, other: &Query) -> bool {
        self.head == other.head && self.body == other.body
    }
}

impl Eq for Query {}

impl std::hash::Hash for Query {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.head.hash(state);
        self.body.hash(state);
    }
}

/// Builder managing variable allocation for a [`Query`].
///
/// ```
/// use currency_query::{QueryBuilder, Atom, Term, Formula};
/// use currency_core::RelId;
///
/// let mut b = QueryBuilder::new();
/// let x = b.var();
/// let body = Formula::Atom(Atom::new(RelId(0), vec![Term::Var(x), Term::val(1)]));
/// let q = b.build(vec![x], body);
/// assert_eq!(q.head(), &[x]);
/// ```
#[derive(Debug, Default)]
pub struct QueryBuilder {
    next: u32,
}

impl QueryBuilder {
    /// Start a new builder.
    pub fn new() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Allocate a fresh variable.
    pub fn var(&mut self) -> QVar {
        let v = QVar(self.next);
        self.next += 1;
        v
    }

    /// Allocate `n` fresh variables.
    pub fn vars(&mut self, n: usize) -> Vec<QVar> {
        (0..n).map(|_| self.var()).collect()
    }

    /// Finish, wrapping the head and body into a query.
    ///
    /// # Panics
    ///
    /// Panics if a head variable is not free in the body — such a query has
    /// no well-defined answer set.
    pub fn build(self, head: Vec<QVar>, body: Formula) -> Query {
        let free = body.free_vars();
        for h in &head {
            assert!(
                free.contains(h),
                "head variable {h:?} is not free in the query body"
            );
        }
        Query {
            head,
            body,
            num_vars: self.next,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_quantifiers() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let y = b.var();
        let f = Formula::Exists(
            vec![y],
            Box::new(Formula::Atom(Atom::new(
                RelId(0),
                vec![Term::Var(x), Term::Var(y)],
            ))),
        );
        let free = f.free_vars();
        assert!(free.contains(&x));
        assert!(!free.contains(&y));
    }

    #[test]
    fn free_vars_include_eid_position() {
        let mut b = QueryBuilder::new();
        let e = b.var();
        let f = Formula::Atom(Atom::with_eid(RelId(0), Term::Var(e), vec![Term::val(1)]));
        assert!(f.free_vars().contains(&e));
    }

    #[test]
    fn positivity_classification() {
        let atom = Formula::Atom(Atom::new(RelId(0), vec![Term::val(1)]));
        assert!(atom.is_positive());
        assert!(Formula::Or(vec![atom.clone()]).is_positive());
        assert!(!Formula::Not(Box::new(atom.clone())).is_positive());
        assert!(!Formula::Forall(vec![], Box::new(atom)).is_positive());
    }

    #[test]
    fn relations_and_constants_collected() {
        let f = Formula::And(vec![
            Formula::Atom(Atom::new(RelId(0), vec![Term::val(1)])),
            Formula::Atom(Atom::new(RelId(2), vec![Term::val("x")])),
            Formula::Cmp {
                left: Term::val(7),
                op: CmpOp::Eq,
                right: Term::val(7),
            },
        ]);
        let rels = f.relations();
        assert!(rels.contains(&RelId(0)) && rels.contains(&RelId(2)));
        let consts = f.constants();
        assert!(consts.contains(&Value::int(1)));
        assert!(consts.contains(&Value::str("x")));
        assert!(consts.contains(&Value::int(7)));
    }

    #[test]
    #[should_panic(expected = "not free")]
    fn head_must_be_free() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let body = Formula::And(vec![]); // no free variables at all
        let _ = b.build(vec![x], body);
    }
}
