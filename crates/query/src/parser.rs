//! A small text syntax for queries.
//!
//! Queries can be written in a datalog-flavoured surface syntax and parsed
//! against a [`Catalog`] (relation names and arities are resolved and
//! checked at parse time):
//!
//! ```text
//! Q(ln) :- Emp(fn, ln, addr, sal, st) and fn = 'Mary'
//! Q(x)  :- R(x, y) and (S(y) or T(y))
//! Q()   :- exists x . R(x) and not S(x)
//! Q(b)  :- Dept(#d, mfn, mln, maddr, b)
//! ```
//!
//! Conventions:
//!
//! * relation arguments bind the proper attributes in schema order; an
//!   optional *first* argument written `#name` binds the entity id;
//! * `_` is an anonymous variable (fresh each use);
//! * variables are plain identifiers; constants are integers, `true` /
//!   `false`, or single-quoted strings;
//! * comparisons: `=`, `!=`, `<`, `<=`, `>`, `>=`;
//! * connectives (loosest to tightest): `or`, `and`, `not`; quantifiers
//!   `exists v1 v2 . φ` and `forall v1 . φ` extend as far right as
//!   possible; parentheses group;
//! * body variables not in the head are implicitly existentially
//!   quantified (the usual datalog reading).

use crate::ast::{Atom, Formula, QVar, Query, QueryBuilder, Term};
use currency_core::{Catalog, CmpOp, RelId, Value};
use std::collections::HashMap;
use std::fmt;

/// A parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the problem was detected.
    pub at: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Hash,
    LParen,
    RParen,
    Comma,
    Dot,
    Underscore,
    Turnstile, // :-
    Op(CmpOp),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    tokens: Vec<(usize, Tok)>,
}

impl<'a> Lexer<'a> {
    fn lex(src: &'a str) -> Result<Vec<(usize, Tok)>, ParseError> {
        let mut lx = Lexer {
            src,
            pos: 0,
            tokens: Vec::new(),
        };
        lx.run()?;
        Ok(lx.tokens)
    }

    fn run(&mut self) -> Result<(), ParseError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let start = self.pos;
            let c = bytes[self.pos] as char;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += 1;
                }
                '(' => self.push(start, Tok::LParen),
                ')' => self.push(start, Tok::RParen),
                ',' => self.push(start, Tok::Comma),
                '.' => self.push(start, Tok::Dot),
                '#' => self.push(start, Tok::Hash),
                '_' => self.push(start, Tok::Underscore),
                ':' => {
                    if bytes.get(self.pos + 1) == Some(&b'-') {
                        self.pos += 2;
                        self.tokens.push((start, Tok::Turnstile));
                    } else {
                        return Err(err(start, "expected ':-'"));
                    }
                }
                '=' => self.push(start, Tok::Op(CmpOp::Eq)),
                '!' => {
                    if bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        self.tokens.push((start, Tok::Op(CmpOp::Ne)));
                    } else {
                        return Err(err(start, "expected '!='"));
                    }
                }
                '<' => {
                    if bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        self.tokens.push((start, Tok::Op(CmpOp::Le)));
                    } else {
                        self.push(start, Tok::Op(CmpOp::Lt));
                    }
                }
                '>' => {
                    if bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        self.tokens.push((start, Tok::Op(CmpOp::Ge)));
                    } else {
                        self.push(start, Tok::Op(CmpOp::Gt));
                    }
                }
                '\'' => {
                    let mut end = self.pos + 1;
                    while end < bytes.len() && bytes[end] != b'\'' {
                        end += 1;
                    }
                    if end == bytes.len() {
                        return Err(err(start, "unterminated string literal"));
                    }
                    let text = self.src[self.pos + 1..end].to_string();
                    self.pos = end + 1;
                    self.tokens.push((start, Tok::Str(text)));
                }
                '-' | '0'..='9' => {
                    let mut end = self.pos + 1;
                    while end < bytes.len() && bytes[end].is_ascii_digit() {
                        end += 1;
                    }
                    let text = &self.src[self.pos..end];
                    let n: i64 = text
                        .parse()
                        .map_err(|_| err(start, "malformed integer literal"))?;
                    self.pos = end;
                    self.tokens.push((start, Tok::Int(n)));
                }
                c if c.is_ascii_alphabetic() => {
                    let mut end = self.pos + 1;
                    while end < bytes.len()
                        && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    let text = self.src[self.pos..end].to_string();
                    self.pos = end;
                    self.tokens.push((start, Tok::Ident(text)));
                }
                _ => return Err(err(start, &format!("unexpected character {c:?}"))),
            }
        }
        Ok(())
    }

    fn push(&mut self, start: usize, t: Tok) {
        self.pos += 1;
        self.tokens.push((start, t));
    }
}

fn err(at: usize, message: &str) -> ParseError {
    ParseError {
        at,
        message: message.to_string(),
    }
}

struct Parser<'a> {
    catalog: &'a Catalog,
    tokens: Vec<(usize, Tok)>,
    ix: usize,
    builder: QueryBuilder,
    vars: HashMap<String, QVar>,
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.ix).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.tokens
            .get(self.ix)
            .map(|(p, _)| *p)
            .unwrap_or(self.end)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.ix).map(|(_, t)| t.clone());
        self.ix += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        let at = self.at();
        match self.next() {
            Some(t) if &t == want => Ok(()),
            _ => Err(err(at, &format!("expected {what}"))),
        }
    }

    fn var(&mut self, name: &str) -> QVar {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = self.builder.var();
        self.vars.insert(name.to_string(), v);
        v
    }

    /// disjunction := conjunction ('or' conjunction)*
    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.conjunction()?];
        while matches!(self.peek(), Some(Tok::Ident(w)) if w == "or") {
            self.next();
            parts.push(self.conjunction()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Formula::Or(parts)
        })
    }

    /// conjunction := unary ('and' unary)*
    fn conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        while matches!(self.peek(), Some(Tok::Ident(w)) if w == "and") {
            self.next();
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Formula::And(parts)
        })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        let at = self.at();
        match self.peek().cloned() {
            Some(Tok::Ident(w)) if w == "not" => {
                self.next();
                Ok(Formula::Not(Box::new(self.unary()?)))
            }
            Some(Tok::Ident(w)) if w == "exists" || w == "forall" => {
                self.next();
                let mut vs = Vec::new();
                loop {
                    match self.next() {
                        Some(Tok::Ident(name)) => vs.push(self.var(&name)),
                        Some(Tok::Dot) => break,
                        _ => return Err(err(at, "expected variable list ending in '.'")),
                    }
                }
                let body = Box::new(self.formula()?);
                Ok(if w == "exists" {
                    Formula::Exists(vs, body)
                } else {
                    Formula::Forall(vs, body)
                })
            }
            Some(Tok::LParen) => {
                self.next();
                let inner = self.formula()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            Some(Tok::Ident(name)) => {
                // Atom (relation name followed by '(') or a comparison
                // whose left side is a variable.
                if self.tokens.get(self.ix + 1).map(|(_, t)| t) == Some(&Tok::LParen)
                    && self.catalog.rel(&name).is_some()
                {
                    self.atom(&name)
                } else {
                    self.comparison()
                }
            }
            Some(Tok::Int(_)) | Some(Tok::Str(_)) => self.comparison(),
            _ => Err(err(at, "expected a formula")),
        }
    }

    fn atom(&mut self, name: &str) -> Result<Formula, ParseError> {
        let at = self.at();
        let rel: RelId = self
            .catalog
            .rel(name)
            .ok_or_else(|| err(at, &format!("unknown relation {name}")))?;
        let arity = self.catalog.schema(rel).arity();
        self.next(); // relation name
        self.expect(&Tok::LParen, "'('")?;
        let mut eid: Option<Term> = None;
        let mut args: Vec<Term> = Vec::new();
        let mut first = true;
        loop {
            match self.peek() {
                Some(Tok::RParen) => {
                    self.next();
                    break;
                }
                Some(Tok::Hash) if first => {
                    self.next();
                    let t = self.term()?;
                    eid = Some(t);
                }
                _ => {
                    let t = self.term()?;
                    args.push(t);
                }
            }
            first = false;
            match self.peek() {
                Some(Tok::Comma) => {
                    self.next();
                }
                Some(Tok::RParen) => {}
                _ => return Err(err(self.at(), "expected ',' or ')' in atom")),
            }
        }
        if args.len() != arity {
            return Err(err(
                at,
                &format!(
                    "relation {name} has {arity} attributes but {} arguments were given",
                    args.len()
                ),
            ));
        }
        Ok(Formula::Atom(Atom { rel, eid, args }))
    }

    fn comparison(&mut self) -> Result<Formula, ParseError> {
        let left = self.term()?;
        let at = self.at();
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            _ => return Err(err(at, "expected a comparison operator")),
        };
        let right = self.term()?;
        Ok(Formula::Cmp { left, op, right })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let at = self.at();
        match self.next() {
            Some(Tok::Int(n)) => Ok(Term::Const(Value::int(n))),
            Some(Tok::Str(s)) => Ok(Term::Const(Value::str(s))),
            Some(Tok::Underscore) => Ok(Term::Var(self.builder.var())),
            Some(Tok::Ident(name)) if name == "true" => Ok(Term::Const(Value::bool(true))),
            Some(Tok::Ident(name)) if name == "false" => Ok(Term::Const(Value::bool(false))),
            Some(Tok::Ident(name)) => Ok(Term::Var(self.var(&name))),
            _ => Err(err(at, "expected a term")),
        }
    }
}

/// Parse a query in the surface syntax (see module docs) against a
/// catalog.
pub fn parse_query(catalog: &Catalog, input: &str) -> Result<Query, ParseError> {
    let tokens = Lexer::lex(input)?;
    let mut p = Parser {
        catalog,
        tokens,
        ix: 0,
        builder: QueryBuilder::new(),
        vars: HashMap::new(),
        end: input.len(),
    };
    // Head: IDENT '(' vars ')' ':-'
    let at0 = p.at();
    let head_names: Vec<String> = {
        match (p.next(), p.next()) {
            (Some(Tok::Ident(_)), Some(Tok::LParen)) => {
                let mut names = Vec::new();
                loop {
                    match p.next() {
                        Some(Tok::RParen) => break,
                        Some(Tok::Ident(n)) => names.push(n),
                        Some(Tok::Comma) => {}
                        _ => return Err(err(at0, "malformed query head")),
                    }
                }
                p.expect(&Tok::Turnstile, "':-' after the query head")?;
                names
            }
            _ => return Err(err(at0, "expected a query head like 'Q(x) :- …'")),
        }
    };
    let head: Vec<QVar> = head_names.iter().map(|n| p.var(n)).collect();
    let body = p.formula()?;
    if p.ix != p.tokens.len() {
        return Err(err(p.at(), "trailing input after the query body"));
    }
    // Implicitly quantify non-head free variables.
    let free = body.free_vars();
    let implicit: Vec<QVar> = free.into_iter().filter(|v| !head.contains(v)).collect();
    let body = if implicit.is_empty() {
        body
    } else {
        Formula::Exists(implicit, Box::new(body))
    };
    for h in &head {
        if !body.free_vars().contains(h) {
            return Err(err(
                0,
                &format!(
                    "head variable {:?} does not occur in the body",
                    head_names[head.iter().position(|x| x == h).expect("present")]
                ),
            ));
        }
    }
    Ok(p.builder.build(head, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, QueryClass};
    use crate::eval::Database;
    use currency_core::{Eid, NormalInstance, RelationSchema, Tuple};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(RelationSchema::new("Emp", &["name", "salary"]));
        c.add(RelationSchema::new("Dept", &["dname"]));
        c
    }

    fn db_data() -> Vec<NormalInstance> {
        let cat = catalog();
        let emp = cat.rel("Emp").unwrap();
        let dept = cat.rel("Dept").unwrap();
        let mut e = NormalInstance::new(emp);
        e.push(Tuple::new(Eid(1), vec![Value::str("Mary"), Value::int(80)]));
        e.push(Tuple::new(Eid(2), vec![Value::str("Bob"), Value::int(55)]));
        let mut d = NormalInstance::new(dept);
        d.push(Tuple::new(Eid(9), vec![Value::str("R&D")]));
        vec![e, d]
    }

    #[test]
    fn parses_projection_with_selection() {
        let cat = catalog();
        let q = parse_query(&cat, "Q(s) :- Emp(n, s) and n = 'Mary'").unwrap();
        assert_eq!(classify(&q), QueryClass::Sp);
        let data = db_data();
        let db = Database::new(&data);
        assert_eq!(q.eval(&db), vec![vec![Value::int(80)]]);
    }

    #[test]
    fn parses_anonymous_variables() {
        let cat = catalog();
        let q = parse_query(&cat, "Q(n) :- Emp(n, _)").unwrap();
        let data = db_data();
        let db = Database::new(&data);
        assert_eq!(q.eval(&db).len(), 2);
    }

    #[test]
    fn parses_eid_binding() {
        let cat = catalog();
        let q = parse_query(&cat, "Q(e, n) :- Emp(#e, n, _)").unwrap();
        let data = db_data();
        let db = Database::new(&data);
        let rows = q.eval(&db);
        assert!(rows.contains(&vec![Value::int(1), Value::str("Mary")]));
    }

    #[test]
    fn parses_boolean_query_with_negation_and_quantifier() {
        let cat = catalog();
        let q = parse_query(&cat, "Q() :- forall n . not Emp(n, 99) or n != n").unwrap();
        assert_eq!(classify(&q), QueryClass::Fo);
        let data = db_data();
        let db = Database::new(&data);
        assert!(q.eval_bool(&db), "nobody earns 99");
    }

    #[test]
    fn parses_union_and_comparison() {
        let cat = catalog();
        let q = parse_query(&cat, "Q(n) :- Emp(n, s) and (s > 60 or s < 56)").unwrap();
        let data = db_data();
        let db = Database::new(&data);
        assert_eq!(q.eval(&db).len(), 2);
    }

    #[test]
    fn implicit_existentials_keep_sp_shape() {
        let cat = catalog();
        let q = parse_query(&cat, "Q(n) :- Emp(n, s) and s = 80").unwrap();
        assert_eq!(classify(&q), QueryClass::Sp);
    }

    #[test]
    fn error_on_unknown_relation() {
        let cat = catalog();
        let e = parse_query(&cat, "Q(x) :- Nope(x)").unwrap_err();
        assert!(e.message.contains("comparison") || e.message.contains("unknown"));
    }

    #[test]
    fn error_on_arity_mismatch() {
        let cat = catalog();
        let e = parse_query(&cat, "Q(x) :- Emp(x)").unwrap_err();
        assert!(e.message.contains("2 attributes"), "{e}");
    }

    #[test]
    fn error_on_trailing_input() {
        let cat = catalog();
        let e = parse_query(&cat, "Q(x) :- Emp(x, _) garbage").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn error_on_head_variable_not_in_body() {
        let cat = catalog();
        let e = parse_query(&cat, "Q(z) :- Emp(n, _)").unwrap_err();
        assert!(e.message.contains("does not occur"), "{e}");
    }

    #[test]
    fn error_positions_are_reported() {
        let cat = catalog();
        let e = parse_query(&cat, "Q(x) :- Emp(x, 'oops)").unwrap_err();
        assert!(e.at > 0);
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn string_and_bool_literals() {
        let cat = catalog();
        let q = parse_query(&cat, "Q(n) :- Emp(n, _) and 'a' != 'b' and true = true").unwrap();
        let data = db_data();
        let db = Database::new(&data);
        assert_eq!(q.eval(&db).len(), 2);
    }
}
