//! Property tests for the query evaluators: the relational (positive)
//! engine and the active-domain FO engine must agree on positive queries,
//! and evaluation must satisfy the standard algebraic laws.

use currency_core::{Eid, NormalInstance, RelId, Tuple, Value};
use currency_query::{Atom, Database, Formula, QVar, Query, QueryBuilder, Term};
use proptest::prelude::*;

const R: RelId = RelId(0);
const S: RelId = RelId(1);

fn instance(rel: RelId, rows: &[(u64, i64, i64)]) -> NormalInstance {
    let mut n = NormalInstance::new(rel);
    for &(e, a, b) in rows {
        n.push(Tuple::new(Eid(e), vec![Value::int(a), Value::int(b)]));
    }
    n
}

fn rows_strategy() -> impl Strategy<Value = Vec<(u64, i64, i64)>> {
    proptest::collection::vec((0u64..3, 0i64..3, 0i64..3), 0..6)
}

/// A random positive query shape over R and S with one head variable.
#[derive(Debug, Clone)]
enum Shape {
    Scan,
    Select(i64),
    Join,
    Union,
    JoinWithFilter(i64),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Scan),
        (0i64..3).prop_map(Shape::Select),
        Just(Shape::Join),
        Just(Shape::Union),
        (0i64..3).prop_map(Shape::JoinWithFilter),
    ]
}

fn build(shape: &Shape) -> (Query, Query) {
    // Returns the positive query and its double-negated twin (which
    // forces the active-domain FO engine).
    let make = |wrap: bool| -> Query {
        let mut b = QueryBuilder::new();
        let x: QVar = b.var();
        let y: QVar = b.var();
        let body = match shape {
            Shape::Scan => Formula::Exists(
                vec![y],
                Box::new(Formula::Atom(Atom::new(
                    R,
                    vec![Term::Var(x), Term::Var(y)],
                ))),
            ),
            Shape::Select(c) => Formula::Exists(
                vec![y],
                Box::new(Formula::And(vec![
                    Formula::Atom(Atom::new(R, vec![Term::Var(x), Term::Var(y)])),
                    Formula::Cmp {
                        left: Term::Var(y),
                        op: currency_query::CmpOp::Eq,
                        right: Term::Const(Value::int(*c)),
                    },
                ])),
            ),
            Shape::Join => Formula::Exists(
                vec![y],
                Box::new(Formula::And(vec![
                    Formula::Atom(Atom::new(R, vec![Term::Var(x), Term::Var(y)])),
                    Formula::Atom(Atom::new(S, vec![Term::Var(y), Term::Var(x)])),
                ])),
            ),
            Shape::Union => Formula::Exists(
                vec![y],
                Box::new(Formula::Or(vec![
                    Formula::Atom(Atom::new(R, vec![Term::Var(x), Term::Var(y)])),
                    Formula::Atom(Atom::new(S, vec![Term::Var(x), Term::Var(y)])),
                ])),
            ),
            Shape::JoinWithFilter(c) => Formula::Exists(
                vec![y],
                Box::new(Formula::And(vec![
                    Formula::Atom(Atom::new(R, vec![Term::Var(x), Term::Var(y)])),
                    Formula::Atom(Atom::new(S, vec![Term::Var(y), Term::Var(x)])),
                    Formula::Cmp {
                        left: Term::Var(x),
                        op: currency_query::CmpOp::Ge,
                        right: Term::Const(Value::int(*c)),
                    },
                ])),
            ),
        };
        let body = if wrap {
            Formula::Not(Box::new(Formula::Not(Box::new(body))))
        } else {
            body
        };
        b.build(vec![x], body)
    };
    (make(false), make(true))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn positive_engine_agrees_with_active_domain_engine(
        r_rows in rows_strategy(),
        s_rows in rows_strategy(),
        shape in shape_strategy(),
    ) {
        let data = vec![instance(R, &r_rows), instance(S, &s_rows)];
        let db = Database::new(&data);
        let (positive, fo) = build(&shape);
        prop_assert_eq!(positive.eval(&db), fo.eval(&db), "shape {:?}", shape);
    }

    #[test]
    fn answers_are_sorted_and_distinct(
        r_rows in rows_strategy(),
        shape in shape_strategy(),
    ) {
        let data = vec![instance(R, &r_rows), instance(S, &[])];
        let db = Database::new(&data);
        let (q, _) = build(&shape);
        let rows = q.eval(&db);
        for w in rows.windows(2) {
            prop_assert!(w[0] < w[1], "sorted and deduplicated");
        }
    }

    #[test]
    fn union_is_commutative(
        r_rows in rows_strategy(),
        s_rows in rows_strategy(),
    ) {
        let data = vec![instance(R, &r_rows), instance(S, &s_rows)];
        let db = Database::new(&data);
        let mk = |flip: bool| {
            let mut b = QueryBuilder::new();
            let x = b.var();
            let y = b.var();
            let ra = Formula::Atom(Atom::new(R, vec![Term::Var(x), Term::Var(y)]));
            let sa = Formula::Atom(Atom::new(S, vec![Term::Var(x), Term::Var(y)]));
            let parts = if flip { vec![sa, ra] } else { vec![ra, sa] };
            b.build(vec![x], Formula::Exists(vec![y], Box::new(Formula::Or(parts))))
        };
        prop_assert_eq!(mk(false).eval(&db), mk(true).eval(&db));
    }

    #[test]
    fn conjunction_with_true_is_identity(r_rows in rows_strategy()) {
        let data = vec![instance(R, &r_rows)];
        let db = Database::new(&data);
        let mk = |with_true: bool| {
            let mut b = QueryBuilder::new();
            let x = b.var();
            let y = b.var();
            let atom = Formula::Atom(Atom::new(R, vec![Term::Var(x), Term::Var(y)]));
            let body = if with_true {
                Formula::And(vec![atom, Formula::And(vec![])])
            } else {
                atom
            };
            b.build(vec![x], Formula::Exists(vec![y], Box::new(body)))
        };
        prop_assert_eq!(mk(false).eval(&db), mk(true).eval(&db));
    }

    #[test]
    fn boolean_negation_is_involutive(r_rows in rows_strategy()) {
        let data = vec![instance(R, &r_rows)];
        let db = Database::new(&data);
        let mk = |neg2: bool| {
            let mut b = QueryBuilder::new();
            let x = b.var();
            let y = b.var();
            let atom = Formula::Atom(Atom::new(R, vec![Term::Var(x), Term::Var(y)]));
            let inner = Formula::Exists(vec![x, y], Box::new(atom));
            let body = if neg2 {
                Formula::Not(Box::new(Formula::Not(Box::new(inner))))
            } else {
                inner
            };
            b.build(vec![], body)
        };
        prop_assert_eq!(mk(false).eval_bool(&db), mk(true).eval_bool(&db));
    }
}
