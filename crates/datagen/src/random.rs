//! Seeded random specification generation.
//!
//! Drives the differential property tests (exact SAT solver vs. the
//! brute-force enumerator vs. the PTIME algorithms) and the scaling
//! benchmarks.  All generation is deterministic in the seed.

use currency_core::{
    AttrId, Catalog, CmpOp, CopyFunction, CopySignature, DenialConstraint, Eid, RelationSchema,
    Specification, Term, Tuple, TupleId, Value,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_spec`].
#[derive(Clone, Debug)]
pub struct RandomSpecConfig {
    /// Number of entities per relation.
    pub entities: usize,
    /// Tuples per entity: uniform in `min..=max`.
    pub tuples_per_entity: (usize, usize),
    /// Number of proper attributes per relation.
    pub attrs: usize,
    /// Attribute values are drawn from `0..value_pool`.
    pub value_pool: i64,
    /// Probability of asserting an initial order edge between a pair of
    /// same-entity tuples (oriented by tuple id, hence acyclic).
    pub order_density: f64,
    /// Number of "monotone" constraints (`higher A ⇒ more current A`).
    pub monotone_constraints: usize,
    /// Number of "correlated" constraints (`≺_A ⇒ ≺_B`).
    pub correlated_constraints: usize,
    /// Whether to add a second (source) relation with a copy function
    /// importing into the first.
    pub with_copy: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSpecConfig {
    fn default() -> Self {
        RandomSpecConfig {
            entities: 2,
            tuples_per_entity: (2, 3),
            attrs: 2,
            value_pool: 3,
            order_density: 0.2,
            monotone_constraints: 0,
            correlated_constraints: 0,
            with_copy: false,
            seed: 0,
        }
    }
}

/// Generate a valid random specification.
///
/// The target relation is `RelId(0)`; when `with_copy` is set a source
/// relation `RelId(1)` with identical schema is added, together with a
/// full-signature copy function mapping a random subset of target tuples
/// to value-equal source tuples (the source tuples are created to match,
/// so the copying condition always holds).
pub fn random_spec(cfg: &RandomSpecConfig) -> Specification {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let attr_names: Vec<String> = (0..cfg.attrs).map(|i| format!("A{i}")).collect();
    let attr_refs: Vec<&str> = attr_names.iter().map(|s| s.as_str()).collect();
    let mut cat = Catalog::new();
    let target = cat.add(RelationSchema::new("T", &attr_refs));
    let source = if cfg.with_copy {
        Some(cat.add(RelationSchema::new("Src", &attr_refs)))
    } else {
        None
    };
    let mut spec = Specification::new(cat);
    let mut target_tuples: Vec<TupleId> = Vec::new();
    for e in 0..cfg.entities {
        let count = rng.gen_range(cfg.tuples_per_entity.0..=cfg.tuples_per_entity.1);
        for _ in 0..count {
            let values: Vec<Value> = (0..cfg.attrs)
                .map(|_| Value::int(rng.gen_range(0..cfg.value_pool)))
                .collect();
            target_tuples.push(
                spec.instance_mut(target)
                    .push_tuple(Tuple::new(Eid(e as u64), values))
                    .expect("arity"),
            );
        }
    }
    // Initial orders: orient by tuple id so the raw pairs are acyclic.
    for a in 0..cfg.attrs {
        let attr = AttrId(a as u32);
        for i in 0..target_tuples.len() {
            for jj in (i + 1)..target_tuples.len() {
                let (u, v) = (target_tuples[i], target_tuples[jj]);
                let same_entity =
                    spec.instance(target).tuple(u).eid == spec.instance(target).tuple(v).eid;
                if same_entity && rng.gen_bool(cfg.order_density) {
                    spec.instance_mut(target)
                        .add_order(attr, u, v)
                        .expect("same entity");
                }
            }
        }
    }
    // Constraints.
    for _ in 0..cfg.monotone_constraints {
        let attr = AttrId(rng.gen_range(0..cfg.attrs) as u32);
        let dc = DenialConstraint::builder(target, 2)
            .when_cmp(Term::attr(0, attr), CmpOp::Gt, Term::attr(1, attr))
            .then_order(1, attr, 0)
            .build()
            .expect("monotone constraint");
        spec.add_constraint(dc).expect("target relation constraint");
    }
    for _ in 0..cfg.correlated_constraints {
        let a = AttrId(rng.gen_range(0..cfg.attrs) as u32);
        let b = AttrId(rng.gen_range(0..cfg.attrs) as u32);
        let dc = DenialConstraint::builder(target, 2)
            .when_order(0, a, 1)
            .then_order(0, b, 1)
            .build()
            .expect("correlated constraint");
        spec.add_constraint(dc).expect("target relation constraint");
    }
    // Copy function: source tuples mirror a random subset of the target.
    if let Some(src) = source {
        let sig_attrs: Vec<AttrId> = (0..cfg.attrs).map(|i| AttrId(i as u32)).collect();
        let sig = CopySignature::new(target, sig_attrs.clone(), src, sig_attrs).expect("signature");
        let mut cf = CopyFunction::new(sig);
        for &tid in &target_tuples {
            if rng.gen_bool(0.5) {
                let t = spec.instance(target).tuple(tid).clone();
                // Source entities mirror target entities (shifted ids), so
                // same-entity target pairs map to same-entity source pairs
                // and ≺-compatibility has bite.
                let sid = spec
                    .instance_mut(src)
                    .push_tuple(Tuple::new(Eid(t.eid.0 + 100), t.values.clone()))
                    .expect("arity");
                cf.set_mapping(tid, sid);
            }
        }
        // Random initial orders on the source side.
        let src_tuples: Vec<TupleId> = spec.instance(src).tuples().map(|(id, _)| id).collect();
        for a in 0..cfg.attrs {
            let attr = AttrId(a as u32);
            for i in 0..src_tuples.len() {
                for jj in (i + 1)..src_tuples.len() {
                    let (u, v) = (src_tuples[i], src_tuples[jj]);
                    let same = spec.instance(src).tuple(u).eid == spec.instance(src).tuple(v).eid;
                    if same && rng.gen_bool(cfg.order_density) {
                        spec.instance_mut(src)
                            .add_order(attr, u, v)
                            .expect("same entity");
                    }
                }
            }
        }
        spec.add_copy(cf)
            .expect("copying condition by construction");
    }
    debug_assert!(spec.validate().is_ok());
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::RelId;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomSpecConfig {
            seed: 11,
            with_copy: true,
            monotone_constraints: 1,
            ..Default::default()
        };
        let a = random_spec(&cfg);
        let b = random_spec(&cfg);
        assert_eq!(a.instance(RelId(0)).len(), b.instance(RelId(0)).len());
        assert_eq!(a.instance(RelId(1)).len(), b.instance(RelId(1)).len());
        assert_eq!(a.total_copy_size(), b.total_copy_size());
    }

    #[test]
    fn generated_specs_validate() {
        for seed in 0..30 {
            let cfg = RandomSpecConfig {
                seed,
                entities: 3,
                with_copy: seed % 2 == 0,
                monotone_constraints: (seed % 3) as usize,
                correlated_constraints: (seed % 2) as usize,
                order_density: 0.3,
                ..Default::default()
            };
            let spec = random_spec(&cfg);
            assert!(spec.validate().is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn constraint_free_mode() {
        let cfg = RandomSpecConfig::default();
        let spec = random_spec(&cfg);
        assert!(spec.has_no_constraints());
    }
}
