//! # currency-datagen
//!
//! Workload generators for the `data-currency` workspace:
//!
//! * [`scenarios`] — the paper's worked examples as ready-made
//!   specifications: the Fig. 1 company database with constraints φ₁–φ₄
//!   and the `Dept ⇐ Emp` copy function, the Fig. 3 manager source with
//!   φ₅, and the Example 4.1 currency-preservation setting.
//! * [`logic`] — a tiny propositional substrate: 3-CNF/3-DNF formulas,
//!   seeded random formula generation, and brute-force evaluation of the
//!   quantified variants (`∃∀`, `∀∃`) that the paper's reductions encode.
//!   These are the *oracles* against which the gadgets are validated.
//! * [`gadgets`] — faithful constructions of the hardness reductions used
//!   in the paper's lower-bound proofs: Betweenness → CPS (Thm 3.1, data
//!   complexity), ∃∀3DNF → CPS (Thm 3.1, combined complexity),
//!   3SAT → COP/DCIP (Thm 3.4), 3SAT → CCQA (Thm 3.5, data complexity),
//!   and ∀∃3CNF → CPP (Thm 5.1, data complexity).  They serve both as
//!   validated evidence that the implementation matches the paper's
//!   semantics and as *hard instance generators* for the benchmarks.
//! * [`random`] — seeded random specification generation (entities, stale
//!   tuples, initial orders, constraint templates, copy functions) for
//!   property tests and scaling benchmarks.

pub mod gadgets;
pub mod logic;
pub mod random;
pub mod scenarios;
