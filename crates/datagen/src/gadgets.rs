//! Hardness-reduction gadgets from the paper's lower-bound proofs.
//!
//! Each constructor builds, from a propositional instance, the exact
//! specification used in the corresponding proof; the decision problem's
//! answer on the gadget equals a brute-force-checkable property of the
//! formula.  The gadgets serve two purposes:
//!
//! * **validation** — integration tests check, over random small
//!   formulas, that the `currency-reason` solvers return precisely the
//!   oracle answer (`crate::logic`), tying the implementation back to the
//!   paper's semantics;
//! * **benchmarking** — they are certified-hard instance families for the
//!   Table II / Table III scaling experiments (see `EXPERIMENTS.md`).
//!
//! | Constructor | Paper proof | Problem | Gadget answer |
//! |---|---|---|---|
//! | [`cps_betweenness`] | Thm 3.1 (data) | CPS | consistent ⇔ Betweenness solvable |
//! | [`cps_exists_forall_3dnf`] | Thm 3.1 (combined) | CPS | consistent ⇔ `∃X∀Y φ_DNF` |
//! | [`cop_3sat`] | Thm 3.4 (data) | COP / DCIP | certain/deterministic ⇔ `¬SAT(ψ)` |
//! | [`ccqa_3sat`] | Thm 3.5 (data) | CCQA | `(1)` certain ⇔ `¬SAT(ψ)` |
//! | [`cpp_forall_exists_3cnf`] | Thm 5.1 (data) | CPP | preserving ⇔ `∀X∃Y ψ` |

use crate::logic::{Betweenness, Formula3};
use currency_core::{
    AttrId, Catalog, CmpOp, CopyFunction, CopySignature, DenialConstraint, Eid, RelId,
    RelationSchema, Specification, Term, Tuple, TupleId, Value,
};
use currency_query::{Atom, Formula, Query, QueryBuilder, Term as QTerm};
use currency_reason::CurrencyOrderQuery;

// ---------------------------------------------------------------------------
// Thm 3.1 (data complexity): Betweenness → CPS
// ---------------------------------------------------------------------------

/// Output of [`cps_betweenness`].
#[derive(Clone, Debug)]
pub struct CpsBetweennessGadget {
    /// The specification; consistent iff the Betweenness instance is
    /// solvable.
    pub spec: Specification,
    /// The single relation `R(EID, TID, A, P, O)`.
    pub rel: RelId,
}

/// Build the Betweenness → CPS gadget (proof of Theorem 3.1, data
/// complexity): a single-entity instance with six tuples per triple (two
/// candidate orderings) plus the separator tuple `t#`, and the fixed
/// constraints σ₁–σ₅ forcing any consistent completion to select one
/// ordering per triple and arrange same-element tuples in consecutive
/// blocks above `t#`.
pub fn cps_betweenness(b: &Betweenness) -> CpsBetweennessGadget {
    const TID: AttrId = AttrId(0);
    const A: AttrId = AttrId(1);
    const P: AttrId = AttrId(2);
    const O: AttrId = AttrId(3);
    let hash = Value::str("#");
    let mut cat = Catalog::new();
    let rel = cat.add(RelationSchema::new("R", &["TID", "A", "P", "O"]));
    let mut spec = Specification::new(cat);
    let e = Eid(0);
    {
        let inst = spec.instance_mut(rel);
        for (k, &(a, m, c)) in b.triples.iter().enumerate() {
            // Ordering 1: a < m < c; ordering 2: c < m < a.
            for (elem, pos, ord) in [
                (a, 1, 1),
                (m, 2, 1),
                (c, 3, 1),
                (a, 3, 2),
                (m, 2, 2),
                (c, 1, 2),
            ] {
                inst.push_tuple(Tuple::new(
                    e,
                    vec![
                        Value::int(k as i64),
                        Value::int(elem as i64),
                        Value::int(pos),
                        Value::int(ord),
                    ],
                ))
                .expect("arity");
            }
        }
        inst.push_tuple(Tuple::new(
            e,
            vec![hash.clone(), hash.clone(), hash.clone(), hash.clone()],
        ))
        .expect("t#");
    }
    // σ₁: the three tuples of one ordering sit on the same side of t#.
    // Vars: 0 = t1, 1 = t2, 2 = s (the separator).
    let sigma1 = DenialConstraint::builder(rel, 3)
        .when_cmp(Term::attr(0, TID), CmpOp::Eq, Term::attr(1, TID))
        .when_cmp(Term::attr(0, TID), CmpOp::Ne, Term::val("#"))
        .when_cmp(Term::attr(0, O), CmpOp::Eq, Term::attr(1, O))
        .when_cmp(Term::attr(2, A), CmpOp::Eq, Term::val("#"))
        .when_order(0, A, 2)
        .when_order(2, A, 1)
        .then_false()
        .build()
        .expect("σ₁");
    // σ₂: tuples of *different* orderings of one triple never both above t#.
    let sigma2 = DenialConstraint::builder(rel, 3)
        .when_cmp(Term::attr(0, TID), CmpOp::Eq, Term::attr(1, TID))
        .when_cmp(Term::attr(0, TID), CmpOp::Ne, Term::val("#"))
        .when_cmp(Term::attr(0, O), CmpOp::Ne, Term::attr(1, O))
        .when_cmp(Term::attr(2, A), CmpOp::Eq, Term::val("#"))
        .when_order(2, A, 0)
        .when_order(2, A, 1)
        .then_false()
        .build()
        .expect("σ₂");
    // σ₃: ... and never both below t#.
    let sigma3 = DenialConstraint::builder(rel, 3)
        .when_cmp(Term::attr(0, TID), CmpOp::Eq, Term::attr(1, TID))
        .when_cmp(Term::attr(0, TID), CmpOp::Ne, Term::val("#"))
        .when_cmp(Term::attr(0, O), CmpOp::Ne, Term::attr(1, O))
        .when_cmp(Term::attr(2, A), CmpOp::Eq, Term::val("#"))
        .when_order(0, A, 2)
        .when_order(1, A, 2)
        .then_false()
        .build()
        .expect("σ₃");
    // σ₄: the selected (above-t#) ordering is arranged by position.
    let sigma4 = DenialConstraint::builder(rel, 3)
        .when_cmp(Term::attr(0, TID), CmpOp::Eq, Term::attr(1, TID))
        .when_cmp(Term::attr(0, O), CmpOp::Eq, Term::attr(1, O))
        .when_cmp(Term::attr(0, P), CmpOp::Lt, Term::attr(1, P))
        .when_cmp(Term::attr(2, A), CmpOp::Eq, Term::val("#"))
        .when_order(2, A, 0)
        .when_order(2, A, 1)
        .then_order(0, A, 1)
        .build()
        .expect("σ₄");
    // σ₅: above t#, same-element tuples form consecutive blocks — no
    // foreign element strictly between two tuples of one element.
    // Vars: 0 = t1, 1 = t2 (same element), 2 = t3 (foreign), 3 = s.
    let sigma5 = DenialConstraint::builder(rel, 4)
        .when_cmp(Term::attr(3, A), CmpOp::Eq, Term::val("#"))
        .when_cmp(Term::attr(0, A), CmpOp::Eq, Term::attr(1, A))
        .when_cmp(Term::attr(0, A), CmpOp::Ne, Term::val("#"))
        .when_cmp(Term::attr(2, A), CmpOp::Ne, Term::attr(0, A))
        .when_cmp(Term::attr(2, A), CmpOp::Ne, Term::val("#"))
        .when_order(3, A, 0)
        .when_order(3, A, 1)
        .when_order(3, A, 2)
        .when_order(0, A, 2)
        .when_order(2, A, 1)
        .then_false()
        .build()
        .expect("σ₅");
    for dc in [sigma1, sigma2, sigma3, sigma4, sigma5] {
        spec.add_constraint(dc).expect("σ over R");
    }
    CpsBetweennessGadget { spec, rel }
}

// ---------------------------------------------------------------------------
// Thm 3.1 (combined complexity): ∃∀3DNF → CPS
// ---------------------------------------------------------------------------

/// Output of [`cps_exists_forall_3dnf`].
#[derive(Clone, Debug)]
pub struct CpsEf3DnfGadget {
    /// The specification; consistent iff `∃X ∀Y φ_DNF` is true.
    pub spec: Specification,
    /// The single relation `R_V(EID, V, v, A1, A2, A3, B)`.
    pub rel: RelId,
}

/// Build the ∃∗∀∗3DNF → CPS gadget (proof of Theorem 3.1, combined
/// complexity).  The first `num_x` variables of `f` are the existential
/// block `X`; the rest are the universal block `Y`.  `f.clauses` is read
/// in DNF.
///
/// The instance holds, for one entity: two tuples per variable (candidate
/// truth values, selected by the completion of `≺_v` for `X` and
/// enumerated by tuple-variable bindings for `Y`), plus the eight-row
/// disjunction table `I_∨`.  A single large denial constraint `φ` encodes
/// "some binding falsifies every DNF conjunct → reject".
pub fn cps_exists_forall_3dnf(f: &Formula3, num_x: usize) -> CpsEf3DnfGadget {
    const V: AttrId = AttrId(0);
    const LV: AttrId = AttrId(1); // lowercase v
    const A: [AttrId; 3] = [AttrId(2), AttrId(3), AttrId(4)];
    const B: AttrId = AttrId(5);
    let hash = Value::str("#");
    let mut cat = Catalog::new();
    let rel = cat.add(RelationSchema::new(
        "RV",
        &["V", "v", "A1", "A2", "A3", "B"],
    ));
    let mut spec = Specification::new(cat);
    let e = Eid(0);
    let var_name = |u: usize| {
        if u < num_x {
            Value::str(format!("x{u}"))
        } else {
            Value::str(format!("y{}", u - num_x))
        }
    };
    let mut var_tuples: Vec<[TupleId; 2]> = Vec::new(); // [v=1, v=0]
    let mut or_rows: Vec<TupleId> = Vec::new();
    {
        let inst = spec.instance_mut(rel);
        for u in 0..f.num_vars {
            let hi = inst
                .push_tuple(Tuple::new(
                    e,
                    vec![
                        var_name(u),
                        Value::int(1),
                        hash.clone(),
                        hash.clone(),
                        hash.clone(),
                        hash.clone(),
                    ],
                ))
                .expect("variable tuple");
            let lo = inst
                .push_tuple(Tuple::new(
                    e,
                    vec![
                        var_name(u),
                        Value::int(0),
                        hash.clone(),
                        hash.clone(),
                        hash.clone(),
                        hash.clone(),
                    ],
                ))
                .expect("variable tuple");
            var_tuples.push([hi, lo]);
        }
        for bits in 0..8u8 {
            let a: Vec<i64> = (0..3).map(|p| (bits >> p & 1) as i64).collect();
            let b = i64::from(a.contains(&1));
            let id = inst
                .push_tuple(Tuple::new(
                    e,
                    vec![
                        hash.clone(),
                        hash.clone(),
                        Value::int(a[0]),
                        Value::int(a[1]),
                        Value::int(a[2]),
                        Value::int(b),
                    ],
                ))
                .expect("or row");
            or_rows.push(id);
        }
        // Initial ≺_V order: variable tuples chained by variable index,
        // X before Y, with the I_∨ rows below everything.
        for u1 in 0..f.num_vars {
            for u2 in (u1 + 1)..f.num_vars {
                for &a in &var_tuples[u1] {
                    for &b in &var_tuples[u2] {
                        inst.add_order(V, a, b).expect("same entity");
                    }
                }
            }
        }
        for &o in &or_rows {
            for pair in &var_tuples {
                for &t in pair {
                    inst.add_order(V, o, t).expect("same entity");
                }
            }
        }
    }
    // The constraint φ: tuple variables t_i, t'_i per X/Y variable and c_l
    // per DNF conjunct.
    let n_vars = 2 * f.num_vars + f.clauses.len();
    let ti = |u: usize| 2 * u; // the "selected" tuple of variable u
    let tpi = |u: usize| 2 * u + 1; // its partner
    let cl = |l: usize| 2 * f.num_vars + l;
    let mut builder = DenialConstraint::builder(rel, n_vars);
    for u in 0..f.num_vars {
        builder = builder
            .when_cmp(Term::attr(ti(u), V), CmpOp::Eq, Term::Const(var_name(u)))
            .when_cmp(Term::attr(tpi(u), V), CmpOp::Eq, Term::Const(var_name(u)));
        if u < num_x {
            // ξ_i: the completion's ≺_v orientation selects X's value.
            builder = builder.when_order(tpi(u), LV, ti(u));
        } else {
            // χ_j: Y values are enumerated freely, but the two bound
            // tuples must be the two distinct candidates.
            builder = builder.when_cmp(Term::attr(ti(u), LV), CmpOp::Ne, Term::attr(tpi(u), LV));
        }
    }
    for (l, clause) in f.clauses.iter().enumerate() {
        builder = builder.when_cmp(Term::attr(cl(l), B), CmpOp::Eq, Term::val(1));
        for (p, lit) in clause.iter().enumerate() {
            let var_term = Term::attr(ti(lit.var), LV);
            let op = if lit.positive { CmpOp::Ne } else { CmpOp::Eq };
            builder = builder.when_cmp(Term::attr(cl(l), A[p]), op, var_term);
        }
    }
    let phi = builder.then_order(0, V, 0).build().expect("φ well-formed");
    spec.add_constraint(phi).expect("φ over RV");
    CpsEf3DnfGadget { spec, rel }
}

// ---------------------------------------------------------------------------
// Thm 3.4 (data complexity): 3SAT → COP / DCIP
// ---------------------------------------------------------------------------

/// Output of [`cop_3sat`].
#[derive(Clone, Debug)]
pub struct Cop3SatGadget {
    /// The specification (always consistent).
    pub spec: Specification,
    /// The single relation `R_C(EID, C, L, S, V)`.
    pub rel: RelId,
    /// The currency order `Ot` asserting `t#` is most current everywhere;
    /// certain iff `ψ` is unsatisfiable.
    pub ot: CurrencyOrderQuery,
}

/// Build the 3SAT → COP gadget (proof of Theorem 3.4, data complexity).
/// The same specification decides DCIP: the current instance of `rel` is
/// deterministic iff `ψ` is unsatisfiable.
pub fn cop_3sat(f: &Formula3) -> Cop3SatGadget {
    const C: AttrId = AttrId(0);
    const L: AttrId = AttrId(1);
    const S: AttrId = AttrId(2);
    const V: AttrId = AttrId(3);
    let hash = Value::str("#");
    let mut cat = Catalog::new();
    let rel = cat.add(RelationSchema::new("RC", &["C", "L", "S", "V"]));
    let mut spec = Specification::new(cat);
    let e = Eid(0);
    let mut all: Vec<TupleId> = Vec::new();
    let t_sep;
    {
        let inst = spec.instance_mut(rel);
        for (j, clause) in f.clauses.iter().enumerate() {
            for (p, lit) in clause.iter().enumerate() {
                let sign = if lit.positive { "+" } else { "-" };
                all.push(
                    inst.push_tuple(Tuple::new(
                        e,
                        vec![
                            Value::int(j as i64),
                            Value::int(p as i64 + 1),
                            Value::str(sign),
                            Value::str(format!("x{}", lit.var)),
                        ],
                    ))
                    .expect("literal tuple"),
                );
            }
        }
        t_sep = inst
            .push_tuple(Tuple::new(
                e,
                vec![hash.clone(), hash.clone(), hash.clone(), hash.clone()],
            ))
            .expect("t#");
    }
    // (a) Uniform currency across attributes: ≺_C implies ≺ in the rest.
    for (from, to) in [(C, L), (C, S), (C, V), (L, C), (S, C), (V, C)] {
        let dc = DenialConstraint::builder(rel, 2)
            .when_order(0, from, 1)
            .then_order(0, to, 1)
            .build()
            .expect("uniformity");
        spec.add_constraint(dc).expect("uniformity over RC");
    }
    // (b) If anything is above t#, every clause has a tuple above t#:
    // forbid "some t above t# while clause j is entirely below".
    // Vars: 0 = s (t#), 1 = t, 2..5 = the clause's three tuples.
    let sigma_b = DenialConstraint::builder(rel, 5)
        .when_cmp(Term::attr(0, C), CmpOp::Eq, Term::Const(hash.clone()))
        .when_order(0, C, 1)
        .when_cmp(Term::attr(2, L), CmpOp::Eq, Term::val(1))
        .when_cmp(Term::attr(3, L), CmpOp::Eq, Term::val(2))
        .when_cmp(Term::attr(4, L), CmpOp::Eq, Term::val(3))
        .when_cmp(Term::attr(2, C), CmpOp::Eq, Term::attr(3, C))
        .when_cmp(Term::attr(3, C), CmpOp::Eq, Term::attr(4, C))
        .when_order(2, C, 0)
        .when_order(3, C, 0)
        .when_order(4, C, 0)
        .then_false()
        .build()
        .expect("σ_b");
    spec.add_constraint(sigma_b).expect("σ_b over RC");
    // (c) At most one polarity of each variable above t#.
    let sigma_c = DenialConstraint::builder(rel, 3)
        .when_cmp(Term::attr(0, C), CmpOp::Eq, Term::Const(hash))
        .when_cmp(Term::attr(1, V), CmpOp::Eq, Term::attr(2, V))
        .when_cmp(Term::attr(1, S), CmpOp::Ne, Term::attr(2, S))
        .when_order(0, C, 1)
        .when_order(0, C, 2)
        .then_false()
        .build()
        .expect("σ_c");
    spec.add_constraint(sigma_c).expect("σ_c over RC");
    let pairs = all
        .iter()
        .flat_map(|&u| [C, L, S, V].into_iter().map(move |a| (a, u, t_sep)))
        .collect();
    Cop3SatGadget {
        spec,
        rel,
        ot: CurrencyOrderQuery { rel, pairs },
    }
}

// ---------------------------------------------------------------------------
// Thm 3.5 (data complexity): 3SAT → CCQA
// ---------------------------------------------------------------------------

/// Output of [`ccqa_3sat`].
#[derive(Clone, Debug)]
pub struct Ccqa3SatGadget {
    /// The specification (no constraints, no copy functions).
    pub spec: Specification,
    /// The variable-assignment relation `R_X(EID_x, A_x)`.
    pub rx: RelId,
    /// The clause-negation relation `R_¬ψ`.
    pub rnotpsi: RelId,
    /// The fixed CQ of the proof.
    pub query: Query,
    /// The candidate answer `(1)`: certain iff `ψ` is unsatisfiable.
    pub tuple: Vec<Value>,
}

/// Build the 3SAT → CCQA gadget (proof of Theorem 3.5, data complexity):
/// `R_X` holds both candidate truth values per variable (one entity per
/// variable), `R_¬ψ` encodes the falsifying assignment of each clause, and
/// the fixed six-atom CQ returns `(1)` exactly on the current instances
/// whose encoded assignment falsifies some clause.
pub fn ccqa_3sat(f: &Formula3) -> Ccqa3SatGadget {
    let mut cat = Catalog::new();
    let rx = cat.add(RelationSchema::new("RX", &["Ax"]));
    let rnotpsi = cat.add(RelationSchema::new(
        "Rnotpsi",
        &["idC", "Px", "EIDx", "Bx", "w"],
    ));
    let mut spec = Specification::new(cat);
    for u in 0..f.num_vars {
        let e = Eid(u as u64);
        for v in [0i64, 1] {
            spec.instance_mut(rx)
                .push_tuple(Tuple::new(e, vec![Value::int(v)]))
                .expect("assignment tuple");
        }
    }
    let mut next_eid = 1000u64;
    for (j, clause) in f.clauses.iter().enumerate() {
        for (p, lit) in clause.iter().enumerate() {
            let falsifying = i64::from(!lit.positive);
            spec.instance_mut(rnotpsi)
                .push_tuple(Tuple::new(
                    Eid(next_eid),
                    vec![
                        Value::int(j as i64),
                        Value::int(p as i64 + 1),
                        Value::int(lit.var as i64),
                        Value::int(falsifying),
                        Value::int(1),
                    ],
                ))
                .expect("clause tuple");
            next_eid += 1;
        }
    }
    // Q(w) = ∃ j x1 x2 x3 v1 v2 v3:
    //   ⋀_p R_X(x_p, v_p) ∧ R_¬ψ(j, p, x_p, v_p, w)
    let mut b = QueryBuilder::new();
    let w = b.var();
    let j = b.var();
    let xs = b.vars(3);
    let vs = b.vars(3);
    let mut conjuncts = Vec::new();
    for p in 0..3 {
        conjuncts.push(Formula::Atom(Atom::with_eid(
            rx,
            QTerm::Var(xs[p]),
            vec![QTerm::Var(vs[p])],
        )));
        conjuncts.push(Formula::Atom(Atom::new(
            rnotpsi,
            vec![
                QTerm::Var(j),
                QTerm::val(p as i64 + 1),
                QTerm::Var(xs[p]),
                QTerm::Var(vs[p]),
                QTerm::Var(w),
            ],
        )));
    }
    let mut existential = vec![j];
    existential.extend(&xs);
    existential.extend(&vs);
    let body = Formula::Exists(existential, Box::new(Formula::And(conjuncts)));
    let query = b.build(vec![w], body);
    Ccqa3SatGadget {
        spec,
        rx,
        rnotpsi,
        query,
        tuple: vec![Value::int(1)],
    }
}

// ---------------------------------------------------------------------------
// Thm 5.1 (data complexity): ∀∃3CNF → CPP
// ---------------------------------------------------------------------------

/// Output of [`cpp_forall_exists_3cnf`].
#[derive(Clone, Debug)]
pub struct CppFe3CnfGadget {
    /// The specification.
    pub spec: Specification,
    /// Source relations `D′ = {R′_X, R′_b}`.
    pub sources: std::collections::BTreeSet<RelId>,
    /// The target assignment relation `R_XY`.
    pub rxy: RelId,
    /// The clause-negation relation `R_C`.
    pub rc: RelId,
    /// The flag relation `R_b`.
    pub rb: RelId,
    /// The fixed Boolean CQ of the proof.
    pub query: Query,
}

/// Build the ∀∃3CNF → CPP gadget (proof of Theorem 5.1, data complexity).
/// The copy functions are currency preserving iff `∀X ∃Y ψ_CNF` is true
/// (`X` = the first `num_x` variables).
pub fn cpp_forall_exists_3cnf(f: &Formula3, num_x: usize) -> CppFe3CnfGadget {
    const X: AttrId = AttrId(0);
    const VA: AttrId = AttrId(1);
    let c_val = Value::str("c");
    let mut cat = Catalog::new();
    let rxy = cat.add(RelationSchema::new("RXY", &["X", "V"]));
    let rc = cat.add(RelationSchema::new("RC", &["CID", "POS", "Z", "V", "C"]));
    let rb = cat.add(RelationSchema::new("Rb", &["C"]));
    let rpx = cat.add(RelationSchema::new("RpX", &["X", "V"]));
    let rpb = cat.add(RelationSchema::new("Rpb", &["C"]));
    let mut spec = Specification::new(cat);
    let var_name = |u: usize| {
        if u < num_x {
            Value::str(format!("x{u}"))
        } else {
            Value::str(format!("y{}", u - num_x))
        }
    };
    // R_XY: one entity per variable, candidate values 0 and 1.
    for u in 0..f.num_vars {
        for v in [0i64, 1] {
            spec.instance_mut(rxy)
                .push_tuple(Tuple::new(Eid(u as u64), vec![var_name(u), Value::int(v)]))
                .expect("RXY tuple");
        }
    }
    // R′_X: two source entities per X variable — one whose order selects
    // value 1, one whose order selects value 0.
    for u in 0..num_x {
        let inst = spec.instance_mut(rpx);
        let pe = Eid(1000 + 2 * u as u64);
        let p0 = inst
            .push_tuple(Tuple::new(pe, vec![var_name(u), Value::int(0)]))
            .expect("R'X");
        let p1 = inst
            .push_tuple(Tuple::new(pe, vec![var_name(u), Value::int(1)]))
            .expect("R'X");
        inst.add_order(VA, p0, p1).expect("selects 1");
        let qe = Eid(1001 + 2 * u as u64);
        let q0 = inst
            .push_tuple(Tuple::new(qe, vec![var_name(u), Value::int(0)]))
            .expect("R'X");
        let q1 = inst
            .push_tuple(Tuple::new(qe, vec![var_name(u), Value::int(1)]))
            .expect("R'X");
        inst.add_order(VA, q1, q0).expect("selects 0");
    }
    // R_C: the falsifying assignment of each clause.
    let mut next_eid = 5000u64;
    for (j, clause) in f.clauses.iter().enumerate() {
        for (p, lit) in clause.iter().enumerate() {
            let falsifying = i64::from(!lit.positive);
            spec.instance_mut(rc)
                .push_tuple(Tuple::new(
                    Eid(next_eid),
                    vec![
                        Value::int(j as i64),
                        Value::int(p as i64 + 1),
                        var_name(lit.var),
                        Value::int(falsifying),
                        c_val.clone(),
                    ],
                ))
                .expect("RC tuple");
            next_eid += 1;
        }
    }
    // R_b: flag entity with candidate values c and d; R′_b with d ≺ c.
    let rb_eid = Eid(9000);
    spec.instance_mut(rb)
        .push_tuple(Tuple::new(rb_eid, vec![c_val.clone()]))
        .expect("Rb c");
    spec.instance_mut(rb)
        .push_tuple(Tuple::new(rb_eid, vec![Value::str("d")]))
        .expect("Rb d");
    let rpb_eid = Eid(9100);
    let u1 = spec
        .instance_mut(rpb)
        .push_tuple(Tuple::new(rpb_eid, vec![c_val.clone()]))
        .expect("R'b c");
    let u2 = spec
        .instance_mut(rpb)
        .push_tuple(Tuple::new(rpb_eid, vec![Value::str("d")]))
        .expect("R'b d");
    spec.instance_mut(rpb)
        .add_order(AttrId(0), u2, u1)
        .expect("c most current");
    // Fixed denial constraint: an entity of R_XY holds one variable only
    // (blocks imports that would add a third candidate tuple).
    let two_per_entity = DenialConstraint::builder(rxy, 2)
        .when_cmp(Term::attr(0, X), CmpOp::Ne, Term::attr(1, X))
        .then_false()
        .build()
        .expect("two-per-entity");
    spec.add_constraint(two_per_entity).expect("DC over RXY");
    // Copy functions ρ₁ : R_XY[X,V] ⇐ R′_X[X,V] and ρ₂ : R_b[C] ⇐ R′_b[C],
    // both initially empty.
    let sig1 = CopySignature::new(rxy, vec![X, VA], rpx, vec![X, VA]).expect("σ(ρ₁)");
    spec.add_copy(CopyFunction::new(sig1)).expect("ρ₁");
    let sig2 = CopySignature::new(rb, vec![AttrId(0)], rpb, vec![AttrId(0)]).expect("σ(ρ₂)");
    spec.add_copy(CopyFunction::new(sig2)).expect("ρ₂");
    // The fixed Boolean CQ.
    let mut b = QueryBuilder::new();
    let j = b.var();
    let w = b.var();
    let zs = b.vars(3);
    let vs = b.vars(3);
    let mut conjuncts = Vec::new();
    for p in 0..3 {
        conjuncts.push(Formula::Atom(Atom::new(
            rxy,
            vec![QTerm::Var(zs[p]), QTerm::Var(vs[p])],
        )));
        conjuncts.push(Formula::Atom(Atom::new(
            rc,
            vec![
                QTerm::Var(j),
                QTerm::val(p as i64 + 1),
                QTerm::Var(zs[p]),
                QTerm::Var(vs[p]),
                QTerm::Var(w),
            ],
        )));
    }
    conjuncts.push(Formula::Atom(Atom::new(rb, vec![QTerm::Var(w)])));
    let mut existential = vec![j, w];
    existential.extend(&zs);
    existential.extend(&vs);
    let body = Formula::Exists(existential, Box::new(Formula::And(conjuncts)));
    let query = b.build(vec![], body);
    CppFe3CnfGadget {
        spec,
        sources: [rpx, rpb].into(),
        rxy,
        rc,
        rb,
        query,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{random_betweenness, random_formula};

    #[test]
    fn betweenness_gadget_shape() {
        let b = random_betweenness(4, 3, 1);
        let g = cps_betweenness(&b);
        assert!(g.spec.validate().is_ok());
        assert_eq!(g.spec.instance(g.rel).len(), 6 * 3 + 1);
        assert_eq!(g.spec.constraints().len(), 5);
    }

    #[test]
    fn ef3dnf_gadget_shape() {
        let f = random_formula(4, 3, 2);
        let g = cps_exists_forall_3dnf(&f, 2);
        assert!(g.spec.validate().is_ok());
        // 2 tuples per variable + 8 disjunction rows.
        assert_eq!(g.spec.instance(g.rel).len(), 2 * 4 + 8);
        assert_eq!(g.spec.constraints().len(), 1);
    }

    #[test]
    fn cop_gadget_shape() {
        let f = random_formula(3, 4, 3);
        let g = cop_3sat(&f);
        assert!(g.spec.validate().is_ok());
        assert_eq!(g.spec.instance(g.rel).len(), 3 * 4 + 1);
        // 6 uniformity constraints + σ_b + σ_c.
        assert_eq!(g.spec.constraints().len(), 8);
        assert_eq!(g.ot.pairs.len(), 4 * 3 * 4);
    }

    #[test]
    fn ccqa_gadget_shape() {
        let f = random_formula(3, 2, 4);
        let g = ccqa_3sat(&f);
        assert!(g.spec.validate().is_ok());
        assert_eq!(g.spec.instance(g.rx).len(), 6);
        assert_eq!(g.spec.instance(g.rnotpsi).len(), 6);
        assert!(g.spec.has_no_constraints());
    }

    #[test]
    fn cpp_gadget_shape() {
        let f = random_formula(2, 2, 5);
        let g = cpp_forall_exists_3cnf(&f, 1);
        assert!(g.spec.validate().is_ok());
        assert_eq!(g.spec.instance(g.rxy).len(), 4);
        assert_eq!(g.spec.copies().len(), 2);
        assert_eq!(g.sources.len(), 2);
    }
}
