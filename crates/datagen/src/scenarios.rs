//! The paper's worked examples as ready-made specifications.

use currency_core::{
    AttrId, Catalog, CmpOp, CopyFunction, CopySignature, DenialConstraint, Eid, RelId,
    RelationSchema, Specification, Term, Tuple, TupleId, Value,
};
use currency_query::{SpCondition, SpQuery};

/// The Fig. 1 company database, its constraints φ₁–φ₄ (Example 2.1) and
/// the `Dept[mgrAddr] ⇐ Emp[address]` copy function (Example 2.2).
///
/// Entities: `s1–s3` are Mary; `s4` and `s5` are two further people
/// (Example 2.4 merges them — see [`fig1_with_merged_luth`]).  All four
/// `Dept` tuples describe the R&D department (`dname` is its entity id,
/// Example 2.3).
#[derive(Clone, Debug)]
pub struct Fig1 {
    /// The assembled specification.
    pub spec: Specification,
    /// Relation ids.
    pub emp: RelId,
    /// The `Dept` relation.
    pub dept: RelId,
    /// Emp tuples `s1..s5` (index 0 = s1).
    pub s: [TupleId; 5],
    /// Dept tuples `t1..t4` (index 0 = t1).
    pub t: [TupleId; 4],
    /// Mary's entity id.
    pub mary: Eid,
    /// The R&D department's entity id.
    pub rnd: Eid,
}

/// Emp attribute ids for [`Fig1`] (FN, LN, address, salary, status).
pub mod emp_attrs {
    use currency_core::AttrId;
    /// First name.
    pub const FN: AttrId = AttrId(0);
    /// Last name.
    pub const LN: AttrId = AttrId(1);
    /// Address.
    pub const ADDRESS: AttrId = AttrId(2);
    /// Salary.
    pub const SALARY: AttrId = AttrId(3);
    /// Marital status.
    pub const STATUS: AttrId = AttrId(4);
}

/// Dept attribute ids for [`Fig1`] (mgrFN, mgrLN, mgrAddr, budget).
pub mod dept_attrs {
    use currency_core::AttrId;
    /// Manager first name.
    pub const MGR_FN: AttrId = AttrId(0);
    /// Manager last name.
    pub const MGR_LN: AttrId = AttrId(1);
    /// Manager address.
    pub const MGR_ADDR: AttrId = AttrId(2);
    /// Department budget.
    pub const BUDGET: AttrId = AttrId(3);
}

fn emp_tuple(eid: Eid, fn_: &str, ln: &str, addr: &str, salary: i64, status: &str) -> Tuple {
    Tuple::new(
        eid,
        vec![
            Value::str(fn_),
            Value::str(ln),
            Value::str(addr),
            Value::int(salary),
            Value::str(status),
        ],
    )
}

fn dept_tuple(eid: Eid, mfn: &str, mln: &str, maddr: &str, budget: i64) -> Tuple {
    Tuple::new(
        eid,
        vec![
            Value::str(mfn),
            Value::str(mln),
            Value::str(maddr),
            Value::int(budget),
        ],
    )
}

/// φ₁: a higher salary is a more current salary (within one entity).
pub fn phi1(emp: RelId) -> DenialConstraint {
    DenialConstraint::builder(emp, 2)
        .when_cmp(
            Term::attr(0, emp_attrs::SALARY),
            CmpOp::Gt,
            Term::attr(1, emp_attrs::SALARY),
        )
        .then_order(1, emp_attrs::SALARY, 0)
        .build()
        .expect("φ₁ well-formed")
}

/// φ₂: a `married` status is a more current last name than a `single` one.
pub fn phi2(emp: RelId) -> DenialConstraint {
    DenialConstraint::builder(emp, 2)
        .when_cmp(
            Term::attr(0, emp_attrs::STATUS),
            CmpOp::Eq,
            Term::val("married"),
        )
        .when_cmp(
            Term::attr(1, emp_attrs::STATUS),
            CmpOp::Eq,
            Term::val("single"),
        )
        .then_order(1, emp_attrs::LN, 0)
        .build()
        .expect("φ₂ well-formed")
}

/// The status-transition constraints of Example 1.1(2a): marital status
/// only moves `single → married → divorced`, so a later stage is a more
/// current *status* than an earlier one.  Example 3.3's claim that `S₀` is
/// deterministic for current `Emp` instances needs these (φ₁–φ₄ alone
/// leave the `status` attribute unordered); see DESIGN.md.
pub fn phi_status(emp: RelId) -> Vec<DenialConstraint> {
    let stage = |earlier: &str, later: &str| {
        DenialConstraint::builder(emp, 2)
            .when_cmp(
                Term::attr(0, emp_attrs::STATUS),
                CmpOp::Eq,
                Term::val(later),
            )
            .when_cmp(
                Term::attr(1, emp_attrs::STATUS),
                CmpOp::Eq,
                Term::val(earlier),
            )
            .then_order(1, emp_attrs::STATUS, 0)
            .build()
            .expect("status transition well-formed")
    };
    vec![
        stage("single", "married"),
        stage("married", "divorced"),
        stage("single", "divorced"),
    ]
}

/// φ₃: a more current salary entails a more current address.
pub fn phi3(emp: RelId) -> DenialConstraint {
    DenialConstraint::builder(emp, 2)
        .when_order(1, emp_attrs::SALARY, 0)
        .then_order(1, emp_attrs::ADDRESS, 0)
        .build()
        .expect("φ₃ well-formed")
}

/// φ₄: a more current manager address entails a more current budget.
pub fn phi4(dept: RelId) -> DenialConstraint {
    DenialConstraint::builder(dept, 2)
        .when_order(1, dept_attrs::MGR_ADDR, 0)
        .then_order(1, dept_attrs::BUDGET, 0)
        .build()
        .expect("φ₄ well-formed")
}

/// Build the Fig. 1 specification `S₀` (Example 2.3): the data of Fig. 1,
/// constraints φ₁–φ₄, and the copy function ρ of Example 2.2 with
/// `ρ(t1) = ρ(t2) = s1`, `ρ(t3) = s3`, `ρ(t4) = s4`.
pub fn fig1() -> Fig1 {
    build_fig1(false)
}

/// The Fig. 1 database with `s4` and `s5` merged into one person, as in
/// the second half of Example 2.4.
pub fn fig1_with_merged_luth() -> Fig1 {
    build_fig1(true)
}

fn build_fig1(merge_luth: bool) -> Fig1 {
    let mut cat = Catalog::new();
    let emp = cat.add(RelationSchema::new(
        "Emp",
        &["FN", "LN", "address", "salary", "status"],
    ));
    let dept = cat.add(RelationSchema::new(
        "Dept",
        &["mgrFN", "mgrLN", "mgrAddr", "budget"],
    ));
    let mut spec = Specification::new(cat);
    let mary = Eid(1);
    let bob = Eid(2);
    let robert = if merge_luth { bob } else { Eid(3) };
    let rnd = Eid(10);
    let e = spec.instance_mut(emp);
    let s = [
        e.push_tuple(emp_tuple(mary, "Mary", "Smith", "2 Small St", 50, "single"))
            .expect("s1"),
        e.push_tuple(emp_tuple(
            mary,
            "Mary",
            "Dupont",
            "10 Elm Ave",
            50,
            "married",
        ))
        .expect("s2"),
        e.push_tuple(emp_tuple(
            mary,
            "Mary",
            "Dupont",
            "6 Main St",
            80,
            "married",
        ))
        .expect("s3"),
        e.push_tuple(emp_tuple(bob, "Bob", "Luth", "8 Cowan St", 80, "married"))
            .expect("s4"),
        e.push_tuple(emp_tuple(
            robert,
            "Robert",
            "Luth",
            "8 Drum St",
            55,
            "married",
        ))
        .expect("s5"),
    ];
    let d = spec.instance_mut(dept);
    let t = [
        d.push_tuple(dept_tuple(rnd, "Mary", "Smith", "2 Small St", 6500))
            .expect("t1"),
        d.push_tuple(dept_tuple(rnd, "Mary", "Smith", "2 Small St", 7000))
            .expect("t2"),
        d.push_tuple(dept_tuple(rnd, "Mary", "Dupont", "6 Main St", 6000))
            .expect("t3"),
        d.push_tuple(dept_tuple(rnd, "Ed", "Luth", "8 Cowan St", 6000))
            .expect("t4"),
    ];
    spec.add_constraint(phi1(emp)).expect("φ₁");
    spec.add_constraint(phi2(emp)).expect("φ₂");
    spec.add_constraint(phi3(emp)).expect("φ₃");
    spec.add_constraint(phi4(dept)).expect("φ₄");
    for dc in phi_status(emp) {
        spec.add_constraint(dc).expect("status transitions");
    }
    // ρ: Dept[mgrAddr] ⇐ Emp[address] (Example 2.2).
    let sig = CopySignature::new(
        dept,
        vec![dept_attrs::MGR_ADDR],
        emp,
        vec![emp_attrs::ADDRESS],
    )
    .expect("signature");
    let mut rho = CopyFunction::new(sig);
    rho.set_mapping(t[0], s[0]);
    rho.set_mapping(t[1], s[0]);
    rho.set_mapping(t[2], s[2]);
    rho.set_mapping(t[3], s[3]);
    spec.add_copy(rho)
        .expect("ρ satisfies the copying condition");
    Fig1 {
        spec,
        emp,
        dept,
        s,
        t,
        mary,
        rnd,
    }
}

impl Fig1 {
    /// Q₁ (Example 1.1): Mary's current salary.
    pub fn q1(&self) -> SpQuery {
        SpQuery {
            rel: self.emp,
            projection: vec![emp_attrs::SALARY],
            conditions: vec![SpCondition::AttrConst(emp_attrs::FN, Value::str("Mary"))],
        }
    }

    /// Q₂ (Example 1.1): Mary's current last name.
    pub fn q2(&self) -> SpQuery {
        SpQuery {
            rel: self.emp,
            projection: vec![emp_attrs::LN],
            conditions: vec![SpCondition::AttrConst(emp_attrs::FN, Value::str("Mary"))],
        }
    }

    /// Q₃ (Example 1.1): Mary's current address.
    pub fn q3(&self) -> SpQuery {
        SpQuery {
            rel: self.emp,
            projection: vec![emp_attrs::ADDRESS],
            conditions: vec![SpCondition::AttrConst(emp_attrs::FN, Value::str("Mary"))],
        }
    }

    /// Q₄ (Example 1.1): the R&D department's current budget.
    pub fn q4(&self) -> SpQuery {
        SpQuery {
            rel: self.dept,
            projection: vec![dept_attrs::BUDGET],
            conditions: vec![],
        }
    }
}

/// The Example 4.1 currency-preservation scenario: `Emp` (restricted to
/// Mary — the example's reasoning concerns her records) importing from the
/// Fig. 3 `Mgr` relation through a full-signature copy function with
/// `ρ(s3) = s′2`.
///
/// Constraints: φ₁–φ₃ on `Emp`, φ₅ on `Mgr` (divorced is a more current
/// last name than married), and — needed for the example's stated outcome
/// "after importing s′3, the certain last name is Smith in *all*
/// completions" — the φ₅ analogue on `Emp` itself.  (The paper's example
/// text derives this from the status-transition semantics of Example
/// 1.1(2a); we materialize it as an explicit constraint, see DESIGN.md.)
#[derive(Clone, Debug)]
pub struct Example41 {
    /// The assembled specification.
    pub spec: Specification,
    /// The importing relation (`Emp`, Mary's records only).
    pub emp: RelId,
    /// The source relation (`Mgr`, Fig. 3).
    pub mgr: RelId,
    /// Emp tuples `s1..s3`.
    pub s: [TupleId; 3],
    /// Mgr tuples `s′1..s′3`.
    pub sp: [TupleId; 3],
    /// Mary's entity id (shared by both relations).
    pub mary: Eid,
}

/// φ₅ of Example 4.1: a `divorced` status is a more current last name than
/// a `married` one (stated for the given relation).
pub fn phi5(rel: RelId) -> DenialConstraint {
    DenialConstraint::builder(rel, 2)
        .when_cmp(
            Term::attr(0, emp_attrs::STATUS),
            CmpOp::Eq,
            Term::val("divorced"),
        )
        .when_cmp(
            Term::attr(1, emp_attrs::STATUS),
            CmpOp::Eq,
            Term::val("married"),
        )
        .then_order(1, emp_attrs::LN, 0)
        .build()
        .expect("φ₅ well-formed")
}

/// Build the Example 4.1 scenario.
pub fn example_4_1() -> Example41 {
    let mut cat = Catalog::new();
    let emp = cat.add(RelationSchema::new(
        "Emp",
        &["FN", "LN", "address", "salary", "status"],
    ));
    let mgr = cat.add(RelationSchema::new(
        "Mgr",
        &["FN", "LN", "address", "salary", "status"],
    ));
    let mut spec = Specification::new(cat);
    let mary = Eid(1);
    let e = spec.instance_mut(emp);
    let s = [
        e.push_tuple(emp_tuple(mary, "Mary", "Smith", "2 Small St", 50, "single"))
            .expect("s1"),
        e.push_tuple(emp_tuple(
            mary,
            "Mary",
            "Dupont",
            "10 Elm Ave",
            50,
            "married",
        ))
        .expect("s2"),
        e.push_tuple(emp_tuple(
            mary,
            "Mary",
            "Dupont",
            "6 Main St",
            80,
            "married",
        ))
        .expect("s3"),
    ];
    let m = spec.instance_mut(mgr);
    let sp = [
        m.push_tuple(emp_tuple(
            mary,
            "Mary",
            "Dupont",
            "6 Main St",
            60,
            "married",
        ))
        .expect("s′1"),
        m.push_tuple(emp_tuple(
            mary,
            "Mary",
            "Dupont",
            "6 Main St",
            80,
            "married",
        ))
        .expect("s′2"),
        m.push_tuple(emp_tuple(
            mary,
            "Mary",
            "Smith",
            "2 Small St",
            80,
            "divorced",
        ))
        .expect("s′3"),
    ];
    spec.add_constraint(phi1(emp)).expect("φ₁");
    spec.add_constraint(phi2(emp)).expect("φ₂");
    spec.add_constraint(phi3(emp)).expect("φ₃");
    spec.add_constraint(phi5(mgr)).expect("φ₅ on Mgr");
    spec.add_constraint(phi5(emp)).expect("φ₅ analogue on Emp");
    // ρ: Emp[Ā] ⇐ Mgr[Ā] over all five attributes, ρ(s3) = s′2.
    let attrs: Vec<AttrId> = (0..5).map(|i| AttrId(i as u32)).collect();
    let sig = CopySignature::new(emp, attrs.clone(), mgr, attrs).expect("signature");
    let mut rho = CopyFunction::new(sig);
    rho.set_mapping(s[2], sp[1]);
    spec.add_copy(rho).expect("ρ(s3) = s′2 value-equal");
    Example41 {
        spec,
        emp,
        mgr,
        s,
        sp,
        mary,
    }
}

impl Example41 {
    /// Q₂: Mary's current last name.
    pub fn q2(&self) -> SpQuery {
        SpQuery {
            rel: self.emp,
            projection: vec![emp_attrs::LN],
            conditions: vec![SpCondition::AttrConst(emp_attrs::FN, Value::str("Mary"))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_matches_paper() {
        let f = fig1();
        assert_eq!(f.spec.instance(f.emp).len(), 5);
        assert_eq!(f.spec.instance(f.dept).len(), 4);
        assert_eq!(f.spec.constraints().len(), 7);
        assert_eq!(f.spec.copies().len(), 1);
        assert_eq!(f.spec.copies()[0].len(), 4);
        assert!(f.spec.validate().is_ok());
        // s1–s3 are one entity; s4, s5 are two more.
        assert_eq!(f.spec.instance(f.emp).entity_group(f.mary).len(), 3);
        assert_eq!(f.spec.instance(f.emp).entities().count(), 3);
        // All Dept tuples describe R&D.
        assert_eq!(f.spec.instance(f.dept).entity_group(f.rnd).len(), 4);
    }

    #[test]
    fn merged_variant_unifies_luth() {
        let f = fig1_with_merged_luth();
        assert_eq!(f.spec.instance(f.emp).entities().count(), 2);
    }

    #[test]
    fn grounded_phi1_orders_salaries() {
        let f = fig1();
        let rules = phi1(f.emp).ground(f.spec.instance(f.emp));
        // Within Mary's entity: s3 (80) above s1 and s2 (50) — two rules.
        assert_eq!(rules.len(), 2);
        for r in &rules {
            assert_eq!(r.conclusion.unwrap().greater, f.s[2]);
        }
    }

    #[test]
    fn example41_shape() {
        let e = example_4_1();
        assert!(e.spec.validate().is_ok());
        assert_eq!(e.spec.instance(e.emp).len(), 3);
        assert_eq!(e.spec.instance(e.mgr).len(), 3);
        assert_eq!(e.spec.copies()[0].len(), 1);
        assert_eq!(e.spec.constraints().len(), 5);
    }

    #[test]
    fn queries_have_expected_shapes() {
        let f = fig1();
        assert_eq!(f.q1().projection, vec![emp_attrs::SALARY]);
        assert_eq!(f.q4().rel, f.dept);
        assert!(f.q4().conditions.is_empty());
    }
}
