//! Propositional substrate: 3-CNF/3-DNF formulas and brute-force
//! evaluation of their quantified variants.
//!
//! The paper's lower bounds reduce from (quantified) satisfiability
//! problems — 3SAT, ∃∗∀∗3DNF, ∀∗∃∗3CNF, Betweenness.  This module holds
//! the formula types, seeded random generators, and *brute-force* truth
//! evaluators that serve as oracles when validating the reduction gadgets
//! of [`crate::gadgets`]: for every random small instance, the gadget's
//! answer (computed by the `currency-reason` solvers) must agree with the
//! oracle.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A literal: variable index plus polarity (`true` = positive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PLit {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for `x`, `false` for `¬x`.
    pub positive: bool,
}

impl PLit {
    /// Truth value under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

/// A three-literal clause (disjunctive in CNF use, conjunctive in DNF use).
pub type Triple = [PLit; 3];

/// A propositional formula over `num_vars` variables in clausal form.
///
/// `clauses` is read as a CNF (∧ of ∨-triples) by the `*_cnf` evaluators
/// and as a DNF (∨ of ∧-triples) by the `*_dnf` evaluators.
#[derive(Clone, Debug)]
pub struct Formula3 {
    /// Number of propositional variables.
    pub num_vars: usize,
    /// The triples.
    pub clauses: Vec<Triple>,
}

impl Formula3 {
    /// Evaluate as CNF under a complete assignment.
    pub fn eval_cnf(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Evaluate as DNF under a complete assignment.
    pub fn eval_dnf(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .any(|c| c.iter().all(|l| l.eval(assignment)))
    }
}

/// Enumerate all assignments of `n` booleans, calling `f` until it returns
/// `true`; returns whether any call did (i.e. `∃` semantics).
fn exists_assignment(n: usize, mut f: impl FnMut(&[bool]) -> bool) -> bool {
    let mut a = vec![false; n];
    for bits in 0..(1u64 << n) {
        for (i, slot) in a.iter_mut().enumerate() {
            *slot = bits >> i & 1 == 1;
        }
        if f(&a) {
            return true;
        }
    }
    false
}

/// Brute-force 3SAT: `∃X. φ_CNF(X)`.
pub fn sat_cnf(f: &Formula3) -> bool {
    exists_assignment(f.num_vars, |a| f.eval_cnf(a))
}

/// Brute-force `∃X ∀Y. φ_DNF(X, Y)` where `X` is the first `num_x`
/// variables and `Y` the rest.
pub fn exists_forall_dnf(f: &Formula3, num_x: usize) -> bool {
    let num_y = f.num_vars - num_x;
    exists_assignment(num_x, |x| {
        !exists_assignment(num_y, |y| {
            let mut a = x.to_vec();
            a.extend_from_slice(y);
            !f.eval_dnf(&a)
        })
    })
}

/// Brute-force `∀X ∃Y. φ_CNF(X, Y)` where `X` is the first `num_x`
/// variables and `Y` the rest.
pub fn forall_exists_cnf(f: &Formula3, num_x: usize) -> bool {
    let num_y = f.num_vars - num_x;
    !exists_assignment(num_x, |x| {
        !exists_assignment(num_y, |y| {
            let mut a = x.to_vec();
            a.extend_from_slice(y);
            f.eval_cnf(&a)
        })
    })
}

/// Generate a random formula with `num_clauses` triples over `num_vars`
/// variables (uniform literals, deterministic in `seed`).
pub fn random_formula(num_vars: usize, num_clauses: usize, seed: u64) -> Formula3 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let clauses = (0..num_clauses)
        .map(|_| {
            [0, 1, 2].map(|_| PLit {
                var: rng.gen_range(0..num_vars),
                positive: rng.gen_bool(0.5),
            })
        })
        .collect();
    Formula3 { num_vars, clauses }
}

/// A Betweenness instance: a ground set `0..n` and ordered triples
/// `(a, b, c)` requiring `b` strictly between `a` and `c` in the output
/// linear order (either direction).
#[derive(Clone, Debug)]
pub struct Betweenness {
    /// Size of the ground set.
    pub n: usize,
    /// The betweenness triples.
    pub triples: Vec<(usize, usize, usize)>,
}

/// Brute-force Betweenness: does a permutation satisfying all triples
/// exist?  Exponential in `n`; oracle use only.
pub fn betweenness_solvable(b: &Betweenness) -> bool {
    let mut perm: Vec<usize> = (0..b.n).collect();
    permutations(&mut perm, 0, &mut |p| {
        b.triples.iter().all(|&(a, m, c)| {
            let (pa, pm, pc) = (
                p.iter().position(|&x| x == a).expect("member"),
                p.iter().position(|&x| x == m).expect("member"),
                p.iter().position(|&x| x == c).expect("member"),
            );
            (pa < pm && pm < pc) || (pc < pm && pm < pa)
        })
    })
}

fn permutations(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize]) -> bool) -> bool {
    if k == items.len() {
        return f(items);
    }
    for i in k..items.len() {
        items.swap(k, i);
        if permutations(items, k + 1, f) {
            items.swap(k, i);
            return true;
        }
        items.swap(k, i);
    }
    false
}

/// Generate a random Betweenness instance (deterministic in `seed`).
pub fn random_betweenness(n: usize, num_triples: usize, seed: u64) -> Betweenness {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut triples = Vec::with_capacity(num_triples);
    while triples.len() < num_triples {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if a != b && b != c && a != c {
            triples.push((a, b, c));
        }
    }
    Betweenness { n, triples }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(var: usize, positive: bool) -> PLit {
        PLit { var, positive }
    }

    #[test]
    fn cnf_and_dnf_evaluation() {
        // (x0 ∨ x1 ∨ x1) as CNF; (x0 ∧ x1 ∧ x1) as DNF.
        let f = Formula3 {
            num_vars: 2,
            clauses: vec![[lit(0, true), lit(1, true), lit(1, true)]],
        };
        assert!(f.eval_cnf(&[true, false]));
        assert!(!f.eval_cnf(&[false, false]));
        assert!(f.eval_dnf(&[true, true]));
        assert!(!f.eval_dnf(&[true, false]));
    }

    #[test]
    fn sat_detects_contradiction() {
        // (x0) ∧ (¬x0): encode as two padded clauses.
        let f = Formula3 {
            num_vars: 1,
            clauses: vec![
                [lit(0, true), lit(0, true), lit(0, true)],
                [lit(0, false), lit(0, false), lit(0, false)],
            ],
        };
        assert!(!sat_cnf(&f));
    }

    #[test]
    fn exists_forall_dnf_basics() {
        // ∃x ∀y. (x ∧ x ∧ x) — pick x = true; y irrelevant: true.
        let f = Formula3 {
            num_vars: 2,
            clauses: vec![[lit(0, true), lit(0, true), lit(0, true)]],
        };
        assert!(exists_forall_dnf(&f, 1));
        // ∃x ∀y. (y ∧ y ∧ y) — fails at y = false.
        let g = Formula3 {
            num_vars: 2,
            clauses: vec![[lit(1, true), lit(1, true), lit(1, true)]],
        };
        assert!(!exists_forall_dnf(&g, 1));
    }

    #[test]
    fn forall_exists_cnf_basics() {
        // ∀x ∃y. (x ∨ y ∨ y): y = true always works.
        let f = Formula3 {
            num_vars: 2,
            clauses: vec![[lit(0, true), lit(1, true), lit(1, true)]],
        };
        assert!(forall_exists_cnf(&f, 1));
        // ∀x ∃y. (x ∨ x ∨ x): fails at x = false.
        let g = Formula3 {
            num_vars: 2,
            clauses: vec![[lit(0, true), lit(0, true), lit(0, true)]],
        };
        assert!(!forall_exists_cnf(&g, 1));
    }

    #[test]
    fn betweenness_oracle() {
        // 0 < 1 < 2 satisfies (0,1,2); adding (1,0,2) makes it impossible
        // together with (0,1,2)?  (1,0,2) asks 0 strictly between 1 and 2.
        let sat = Betweenness {
            n: 3,
            triples: vec![(0, 1, 2)],
        };
        assert!(betweenness_solvable(&sat));
        let unsat = Betweenness {
            n: 3,
            triples: vec![(0, 1, 2), (1, 0, 2)],
        };
        assert!(!betweenness_solvable(&unsat));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_formula(4, 6, 42);
        let b = random_formula(4, 6, 42);
        assert_eq!(a.clauses, b.clauses);
        let x = random_betweenness(5, 4, 7);
        let y = random_betweenness(5, 4, 7);
        assert_eq!(x.triples, y.triples);
    }
}
