//! Structured tracing: spans and events behind the [`Recorder`] trait.
//!
//! Instrumentation sites guard every clock read and event build behind
//! [`Recorder::enabled`], which the default [`NoopRecorder`] answers
//! `false` — so an uninstrumented stack pays one predictable branch
//! per site and nothing else.  The [`RingRecorder`] keeps bounded
//! per-thread ring buffers (overwrite-oldest) so a hot path never
//! blocks on a slow consumer; [`RingRecorder::drain`] returns the
//! retained events ordered by timestamp.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Nanoseconds since the process's observability clock was first read
/// (a monotonic anchor, not wall time: trace timestamps order events
/// and difference into durations, they do not date them).
pub fn now_ns() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    let start = *START.get_or_init(Instant::now);
    start.elapsed().as_nanos() as u64
}

/// Allocate a fresh nonzero span id (process-global).
pub fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened; `span` is its id, `parent` links the enclosing
    /// span (0 = root).
    SpanStart,
    /// The span closed; `value` is its duration in nanoseconds.
    SpanEnd,
    /// A point event; `value` carries an event-specific payload.
    Event,
}

/// One structured trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// [`now_ns`] at emission.
    pub ts_ns: u64,
    /// Span/event discriminator.
    pub kind: TraceKind,
    /// Static site name (e.g. `"engine.apply"`, `"breaker.open"`).
    pub name: &'static str,
    /// Span id (0 for plain events emitted outside a span).
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Payload: duration for [`TraceKind::SpanEnd`], site-specific
    /// for [`TraceKind::Event`] (an epoch, a count, …).
    pub value: u64,
}

/// Sink for [`TraceEvent`]s.
///
/// The two-method shape is what keeps disabled tracing free:
/// instrumentation does `if recorder.enabled() { … now_ns() …
/// recorder.record(…) }`, so with the default `enabled() == false`
/// nothing past the branch executes.
pub trait Recorder: Send + Sync {
    /// Whether sites should build and emit events at all.
    fn enabled(&self) -> bool {
        false
    }

    /// Accept one event.  Must be cheap and non-blocking.
    fn record(&self, _event: TraceEvent) {}
}

/// The do-nothing default sink ([`Recorder::enabled`]` == false`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// How many ring shards a [`RingRecorder`] keeps.  Threads are
/// assigned shards round-robin at first use; with fewer than
/// `RING_SHARDS` concurrent recording threads every thread owns its
/// shard exclusively and the per-record lock is uncontended.
const RING_SHARDS: usize = 64;

struct Ring {
    events: Vec<TraceEvent>,
    /// Next write position once `events` has reached capacity.
    next: usize,
}

/// Bounded, overwrite-oldest trace sink with per-thread ring shards.
pub struct RingRecorder {
    shards: Vec<Mutex<Ring>>,
    capacity_per_shard: usize,
}

impl RingRecorder {
    /// A recorder retaining up to `capacity` events in total, spread
    /// over the per-thread shards.
    pub fn new(capacity: usize) -> Arc<RingRecorder> {
        let capacity_per_shard = (capacity / RING_SHARDS).max(16);
        Arc::new(RingRecorder {
            shards: (0..RING_SHARDS)
                .map(|_| {
                    Mutex::new(Ring {
                        events: Vec::new(),
                        next: 0,
                    })
                })
                .collect(),
            capacity_per_shard,
        })
    }

    fn shard_index(&self) -> usize {
        static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
        }
        MY_SHARD.with(|cell| {
            let mut ix = cell.get();
            if ix == usize::MAX {
                ix = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % RING_SHARDS;
                cell.set(ix);
            }
            ix
        })
    }

    /// Remove and return every retained event, ordered by timestamp.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            let mut ring = shard.lock().unwrap_or_else(|e| e.into_inner());
            // Restore arrival order: the oldest retained event sits at
            // `next` once the ring has wrapped.
            let next = ring.next;
            if ring.events.len() == self.capacity_per_shard && next != 0 {
                ring.events.rotate_left(next);
            }
            ring.next = 0;
            all.append(&mut ring.events);
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).events.len())
            .sum()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for RingRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingRecorder")
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("len", &self.len())
            .finish()
    }
}

impl Recorder for RingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        let ix = self.shard_index();
        let mut ring = self.shards[ix].lock().unwrap_or_else(|e| e.into_inner());
        if ring.events.len() < self.capacity_per_shard {
            ring.events.push(event);
        } else {
            let next = ring.next;
            ring.events[next] = event;
            ring.next = (next + 1) % self.capacity_per_shard;
        }
    }
}

/// RAII span: emits [`TraceKind::SpanStart`] on creation and
/// [`TraceKind::SpanEnd`] (with the span's duration as `value`) on
/// drop.  Returned only when the recorder is enabled, so holding an
/// `Option<SpanGuard>` costs nothing on uninstrumented stacks.
pub struct SpanGuard<'a> {
    recorder: &'a dyn Recorder,
    name: &'static str,
    span: u64,
    parent: u64,
    start_ns: u64,
}

impl<'a> SpanGuard<'a> {
    /// Open a span under `parent` (0 = root) if `recorder` is enabled.
    pub fn enter(
        recorder: &'a dyn Recorder,
        name: &'static str,
        parent: u64,
    ) -> Option<SpanGuard<'a>> {
        if !recorder.enabled() {
            return None;
        }
        let span = next_span_id();
        let start_ns = now_ns();
        recorder.record(TraceEvent {
            ts_ns: start_ns,
            kind: TraceKind::SpanStart,
            name,
            span,
            parent,
            value: 0,
        });
        Some(SpanGuard {
            recorder,
            name,
            span,
            parent,
            start_ns,
        })
    }

    /// This span's id (for parenting children).
    pub fn id(&self) -> u64 {
        self.span
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = now_ns();
        self.recorder.record(TraceEvent {
            ts_ns: end,
            kind: TraceKind::SpanEnd,
            name: self.name,
            span: self.span,
            parent: self.parent,
            value: end.saturating_sub(self.start_ns),
        });
    }
}

/// Emit a point [`TraceKind::Event`] if `recorder` is enabled.
pub fn emit_event(recorder: &dyn Recorder, name: &'static str, value: u64) {
    if recorder.enabled() {
        recorder.record(TraceEvent {
            ts_ns: now_ns(),
            kind: TraceKind::Event,
            name,
            span: 0,
            parent: 0,
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let rec = RingRecorder::new(0); // floor: 16 per shard
        for i in 0..40u64 {
            rec.record(TraceEvent {
                ts_ns: i,
                kind: TraceKind::Event,
                name: "t",
                span: 0,
                parent: 0,
                value: i,
            });
        }
        // One thread → one shard → 16 retained, the newest 16.
        let events = rec.drain();
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().unwrap().value, 24);
        assert_eq!(events.last().unwrap().value, 39);
        assert!(rec.is_empty(), "drain clears the rings");
    }

    #[test]
    fn span_guard_links_parent_and_times() {
        let rec = RingRecorder::new(1024);
        {
            let outer = SpanGuard::enter(&*rec, "outer", 0).expect("enabled");
            let _inner = SpanGuard::enter(&*rec, "inner", outer.id()).expect("enabled");
        }
        let events = rec.drain();
        assert_eq!(events.len(), 4);
        let starts: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceKind::SpanStart)
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceKind::SpanEnd)
            .collect();
        assert_eq!(starts.len(), 2);
        assert_eq!(ends.len(), 2);
        let outer_id = starts.iter().find(|e| e.name == "outer").unwrap().span;
        let inner = starts.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(inner.parent, outer_id, "child links its parent span");
        // The inner span closes before the outer and both carry
        // durations consistent with their window.
        let outer_end = ends.iter().find(|e| e.name == "outer").unwrap();
        let inner_end = ends.iter().find(|e| e.name == "inner").unwrap();
        assert!(inner_end.ts_ns <= outer_end.ts_ns);
        assert!(inner_end.value <= outer_end.value);
    }

    #[test]
    fn noop_recorder_reports_disabled() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        assert!(SpanGuard::enter(&rec, "x", 0).is_none());
        emit_event(&rec, "x", 7); // must be a no-op, not a panic
    }

    #[test]
    fn concurrent_recording_keeps_shards_independent() {
        let rec = RingRecorder::new(RING_SHARDS * 64);
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        rec.record(TraceEvent {
                            ts_ns: now_ns(),
                            kind: TraceKind::Event,
                            name: "c",
                            span: t,
                            parent: 0,
                            value: i,
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = rec.drain();
        assert_eq!(events.len(), 8 * 50, "capacity was ample; nothing dropped");
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
