//! Zero-dependency observability for the currency stack.
//!
//! The crate has two halves, both hand-rolled (consistent with the
//! workspace's offline-shim policy — no external metrics or tracing
//! frameworks):
//!
//! * [`metrics`] — lock-free [`Counter`]s, [`Gauge`]s and fixed
//!   log2-bucket [`Histogram`]s registered in a [`MetricsRegistry`]
//!   under static names plus label sets, with a Prometheus text
//!   exposition ([`MetricsRegistry::render_prometheus`]), a JSON
//!   rendering ([`MetricsRegistry::render_json`]), and label-decorated
//!   snapshot merging ([`MetricsSnapshot::merge`]) so sharded stacks
//!   can combine per-shard registries into one exposition.
//! * [`trace`] — a structured [`TraceEvent`] stream behind the
//!   [`Recorder`] trait.  The default [`NoopRecorder`] reports
//!   [`Recorder::enabled`]` == false`, so instrumented hot paths skip
//!   their clock reads entirely; the [`RingRecorder`] writes to
//!   bounded per-thread ring buffers (overwrite-oldest) and
//!   [`RingRecorder::drain`]s them as a timestamp-ordered event list.
//!
//! Everything records through shared atomics: instrumentation sites
//! hold `Arc` handles obtained once at registration and pay a handful
//! of relaxed atomic read-modify-writes per observation — no locks,
//! no allocation, no formatting until exposition time.

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, FamilySnapshot, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricsRegistry,
    MetricsSnapshot, SeriesSnapshot, SeriesValue,
};
pub use trace::{
    next_span_id, now_ns, NoopRecorder, Recorder, RingRecorder, SpanGuard, TraceEvent, TraceKind,
};
