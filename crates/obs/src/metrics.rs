//! Lock-free metric primitives and the registry/exposition layer.
//!
//! All three instruments ([`Counter`], [`Gauge`], [`Histogram`]) are
//! plain atomics recorded with `Ordering::Relaxed`: observations are
//! monotone accumulations read only at exposition time, so no ordering
//! stronger than the atomicity of each word is needed.  Handles are
//! `Arc`s handed out by [`MetricsRegistry`]; registering the same
//! `(name, labels)` pair twice returns the existing handle, which is
//! what lets a wrapper layer re-bind an inner subsystem onto its own
//! registry without double-counting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets in a [`Histogram`].  Bucket `i` holds the
/// observations `v` with `floor(log2(max(v, 1))) == i`: bucket 0 is
/// `{0, 1}` and bucket `i ≥ 1` is `[2^i, 2^(i+1))`, so the inclusive
/// upper bound of bucket `i < 63` is `2^(i+1) - 1` and bucket 63 tops
/// out at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n` (saturating at `u64::MAX` only in the sense
    /// that the wrapping add of a counter that large is unreachable in
    /// practice; counters are cumulative event counts).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can be set to arbitrary points (epoch
/// numbers, progress counts, queue depths).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add to the gauge.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract from the gauge, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket index of an observation: `floor(log2(max(v, 1)))`.
#[inline]
fn bucket_of(v: u64) -> usize {
    63 - (v | 1).leading_zeros() as usize
}

/// Inclusive upper bound of bucket `i` (see [`HISTOGRAM_BUCKETS`]).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// A fixed log2-bucket histogram recorded with three relaxed atomic
/// read-modify-writes per observation (bucket increment, sum add, max
/// fetch-max).  Percentiles are estimated from the bucket counts with
/// linear interpolation inside the owning bucket, so an estimate is
/// always within the bucket's 2× width of the true order statistic.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (exact, via `fetch_max`).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Fold another histogram's current contents into this one (shard
    /// aggregation).  Bucket counts and sums add; max takes the max.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts, sum and max.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Estimated `q`-quantile of the current contents (see
    /// [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// An immutable copy of a [`Histogram`]'s state; the unit of merging
/// and rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fold `other` into `self`.  Merging is associative and
    /// commutative (bucket counts and sums add, max takes max), so any
    /// shard-combination order yields the same aggregate.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) by cumulative bucket walk
    /// with linear interpolation between the owning bucket's bounds.
    /// The top of the highest non-empty bucket is clamped to the exact
    /// observed max, so `quantile(1.0) == max`.  Returns 0.0 on an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let prev = cum;
            cum += n;
            if (cum as f64) >= rank {
                let lo = bucket_lower(i) as f64;
                let hi = (bucket_upper(i).min(self.max).max(bucket_lower(i))) as f64;
                let frac = ((rank - prev as f64) / n as f64).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
        }
        self.max as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// What kind of instrument a registered family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone cumulative count.
    Counter,
    /// Set-to-value gauge.
    Gauge,
    /// Log2-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Series keyed by their sorted label set.
    series: Vec<(Vec<(String, String)>, Handle)>,
}

/// The registry: static metric names plus label sets, resolved to
/// shared instrument handles.  Instrumented subsystems keep the `Arc`
/// handles; the registry is only consulted at registration and
/// exposition time, so a `Mutex` suffices.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricsRegistry")
            .field("families", &families.len())
            .finish()
    }
}

fn label_vec(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn handle(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        fresh: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: Vec::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} registered under two kinds"
        );
        let labels = label_vec(labels);
        if let Some((_, handle)) = family.series.iter().find(|(l, _)| *l == labels) {
            return handle.clone();
        }
        let handle = fresh();
        family.series.push((labels, handle.clone()));
        handle
    }

    /// Register (or look up) a counter series.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        match self.handle(name, help, MetricKind::Counter, labels, || {
            Handle::Counter(Arc::new(Counter::default()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        match self.handle(name, help, MetricKind::Gauge, labels, || {
            Handle::Gauge(Arc::new(Gauge::default()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Register (or look up) a histogram series.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.handle(name, help, MetricKind::Histogram, labels, || {
            Handle::Histogram(Arc::new(Histogram::default()))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// A point-in-time copy of every registered family.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            families: families
                .iter()
                .map(|(name, family)| FamilySnapshot {
                    name,
                    help: family.help,
                    kind: family.kind,
                    series: family
                        .series
                        .iter()
                        .map(|(labels, handle)| SeriesSnapshot {
                            labels: labels.clone(),
                            value: match handle {
                                Handle::Counter(c) => SeriesValue::Counter(c.get()),
                                Handle::Gauge(g) => SeriesValue::Gauge(g.get()),
                                Handle::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Render the registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Render the registry as a JSON document.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// One rendered/mergeable metric series.
#[derive(Clone, Debug)]
pub struct SeriesSnapshot {
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The instrument's value at snapshot time.
    pub value: SeriesValue,
}

/// The value half of a [`SeriesSnapshot`].
///
/// The histogram variant carries the full fixed bucket array inline —
/// large next to a bare counter, but snapshots live on the scrape path
/// (one per exposition), where one contiguous value beats a pointer
/// chase per series.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum SeriesValue {
    /// Cumulative count.
    Counter(u64),
    /// Current gauge value.
    Gauge(u64),
    /// Full bucket state.
    Histogram(HistogramSnapshot),
}

/// One metric family (shared name/help/kind) in a snapshot.
#[derive(Clone, Debug)]
pub struct FamilySnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Help text.
    pub help: &'static str,
    /// Instrument kind.
    pub kind: MetricKind,
    /// The family's series.
    pub series: Vec<SeriesSnapshot>,
}

/// A mergeable, renderable copy of one or more registries.
///
/// [`MetricsSnapshot::with_label`] decorates every series with an
/// extra label (overwriting an existing key), and
/// [`MetricsSnapshot::merge`] combines snapshots family-by-family —
/// the pattern a sharded stack uses to render per-shard registries as
/// one exposition with a `shard` label distinguishing the series.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl MetricsSnapshot {
    /// Add (or overwrite) a label on every series.
    pub fn with_label(mut self, key: &str, value: &str) -> MetricsSnapshot {
        for family in &mut self.families {
            for series in &mut family.series {
                series.labels.retain(|(k, _)| k != key);
                series.labels.push((key.to_string(), value.to_string()));
                series.labels.sort();
            }
        }
        self
    }

    /// Fold `other` into `self`.  Families are matched by name; series
    /// by label set.  Colliding counters add (saturating), colliding
    /// gauges take the max, colliding histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for family in &other.families {
            let mine = match self.families.iter_mut().find(|f| f.name == family.name) {
                Some(f) => f,
                None => {
                    self.families.push(family.clone());
                    self.families.sort_by_key(|f| f.name);
                    continue;
                }
            };
            for series in &family.series {
                match mine.series.iter_mut().find(|s| s.labels == series.labels) {
                    None => mine.series.push(series.clone()),
                    Some(existing) => match (&mut existing.value, &series.value) {
                        (SeriesValue::Counter(a), SeriesValue::Counter(b)) => {
                            *a = a.saturating_add(*b);
                        }
                        (SeriesValue::Gauge(a), SeriesValue::Gauge(b)) => *a = (*a).max(*b),
                        (SeriesValue::Histogram(a), SeriesValue::Histogram(b)) => a.merge(b),
                        _ => {}
                    },
                }
            }
        }
    }

    /// Merge any number of snapshots (in any order — the combination
    /// is associative).
    pub fn merged(snapshots: impl IntoIterator<Item = MetricsSnapshot>) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for snap in snapshots {
            out.merge(&snap);
        }
        out
    }

    /// Look up a series' value by family name and label subset (every
    /// `labels` pair must be present on the series).
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesValue> {
        self.families.iter().find(|f| f.name == name).and_then(|f| {
            f.series
                .iter()
                .find(|s| {
                    labels
                        .iter()
                        .all(|(k, v)| s.series_label(k).map(|have| have == *v).unwrap_or(false))
                })
                .map(|s| &s.value)
        })
    }

    /// Render in the Prometheus text exposition format: one
    /// `# HELP` / `# TYPE` header per family, `name{labels} value`
    /// per sample, histograms as cumulative `_bucket{le="..."}` lines
    /// plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for series in &family.series {
                match &series.value {
                    SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                        let _ = writeln!(
                            out,
                            "{}{} {v}",
                            family.name,
                            render_labels(&series.labels, None)
                        );
                    }
                    SeriesValue::Histogram(h) => {
                        let hi = h
                            .buckets
                            .iter()
                            .rposition(|&n| n > 0)
                            .unwrap_or(0)
                            .min(HISTOGRAM_BUCKETS - 2);
                        let mut cum = 0u64;
                        for i in 0..=hi {
                            cum += h.buckets[i];
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {cum}",
                                family.name,
                                render_labels(&series.labels, Some(&bucket_upper(i).to_string()))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            family.name,
                            render_labels(&series.labels, Some("+Inf")),
                            h.count()
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            h.sum
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }

    /// Render as a JSON document (families → series → values, with
    /// histogram percentile estimates precomputed).
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"families\":[");
        for (fx, family) in self.families.iter().enumerate() {
            if fx > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"help\":{},\"kind\":\"{}\",\"series\":[",
                json_string(family.name),
                json_string(family.help),
                family.kind.as_str()
            );
            for (sx, series) in family.series.iter().enumerate() {
                if sx > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (lx, (k, v)) in series.labels.iter().enumerate() {
                    if lx > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", json_string(k), json_string(v));
                }
                out.push_str("},");
                match &series.value {
                    SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                        let _ = write!(out, "\"value\":{v}}}");
                    }
                    SeriesValue::Histogram(h) => {
                        let _ = write!(
                            out,
                            "\"count\":{},\"sum\":{},\"max\":{},\"p50\":{:.0},\
                             \"p90\":{:.0},\"p99\":{:.0}}}",
                            h.count(),
                            h.sum,
                            h.max,
                            h.p50(),
                            h.p90(),
                            h.p99()
                        );
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

impl SeriesSnapshot {
    fn series_label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn json_string(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Bucket 0 is {0, 1}; bucket i ≥ 1 is [2^i, 2^(i+1)).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        for i in 1..63 {
            let lo = 1u64 << i;
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_of(lo - 1), i - 1, "just below bucket {i}");
            assert_eq!(bucket_of(bucket_upper(i)), i, "upper bound of bucket {i}");
        }
        assert_eq!(bucket_of(u64::MAX), 63);
        // The cumulative-le invariant the exposition relies on: every
        // v ≤ bucket_upper(i) lands in a bucket ≤ i.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, 1025] {
            let i = bucket_of(v);
            assert!(v <= bucket_upper(i));
            assert!(v >= bucket_lower(i));
        }
    }

    #[test]
    fn quantile_interpolation_error_is_bucket_bounded() {
        // Uniform 1..=10_000: every estimate must land within the
        // owning log2 bucket, i.e. within 2× of the true order
        // statistic (and never outside [lower, upper] of its bucket).
        let h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for (q, true_v) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let est = snap.quantile(q);
            assert!(
                est >= true_v / 2.0 && est <= true_v * 2.0,
                "q={q}: estimate {est} vs true {true_v}"
            );
        }
        assert_eq!(snap.quantile(1.0), 10_000.0, "q=1 is the exact max");
        assert_eq!(snap.max, 10_000);
        assert_eq!(snap.count(), 10_000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::default());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                })
            })
            .collect();
        for th in handles {
            th.join().unwrap();
        }
        assert_eq!(h.count(), threads * per_thread);
        let expected_sum: u64 = (0..threads * per_thread).sum();
        assert_eq!(h.sum(), expected_sum);
        assert_eq!(h.max(), threads * per_thread - 1);
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::default();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 9, 100]);
        let b = mk(&[2, 1_000, 65_536]);
        let c = mk(&[0, 7, 7, 7, u64::MAX]);
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.count(), 12);
        assert_eq!(left.max, u64::MAX);
    }

    #[test]
    fn registry_reuses_series_and_renders() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("test_total", "help text", &[("shard", "0")]);
        let c2 = reg.counter("test_total", "help text", &[("shard", "0")]);
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3, "same (name, labels) shares one counter");
        let g = reg.gauge("test_epoch", "epoch", &[]);
        g.set(41);
        g.add(2);
        g.sub(1);
        assert_eq!(g.get(), 42);
        let h = reg.histogram("test_ns", "latency", &[("kind", "cps")]);
        h.record(3);
        h.record(300);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE test_total counter"));
        assert!(text.contains("test_total{shard=\"0\"} 3"));
        assert!(text.contains("test_epoch 42"));
        assert!(text.contains("# TYPE test_ns histogram"));
        assert!(text.contains("test_ns_bucket{kind=\"cps\",le=\"3\"} 1"));
        assert!(text.contains("test_ns_bucket{kind=\"cps\",le=\"+Inf\"} 2"));
        assert!(text.contains("test_ns_sum{kind=\"cps\"} 303"));
        assert!(text.contains("test_ns_count{kind=\"cps\"} 2"));
        let json = reg.render_json();
        assert!(json.contains("\"name\":\"test_ns\""));
        assert!(json.contains("\"count\":2"));
    }

    #[test]
    fn snapshot_label_decoration_and_merge() {
        let mk = |n: u64| {
            let reg = MetricsRegistry::new();
            reg.counter("hits_total", "hits", &[]).add(n);
            let h = reg.histogram("lat_ns", "latency", &[]);
            h.record(n);
            reg
        };
        let a = mk(10).snapshot().with_label("shard", "0");
        let b = mk(32).snapshot().with_label("shard", "1");
        let merged = MetricsSnapshot::merged([a, b]);
        match merged.find("hits_total", &[("shard", "0")]) {
            Some(SeriesValue::Counter(10)) => {}
            other => panic!("shard 0 counter: {other:?}"),
        }
        match merged.find("hits_total", &[("shard", "1")]) {
            Some(SeriesValue::Counter(32)) => {}
            other => panic!("shard 1 counter: {other:?}"),
        }
        let text = merged.render_prometheus();
        // One family header even though two registries contributed.
        assert_eq!(text.matches("# TYPE hits_total counter").count(), 1);
        assert!(text.contains("hits_total{shard=\"0\"} 10"));
        assert!(text.contains("hits_total{shard=\"1\"} 32"));
        // Identical labels merge by value.
        let c = mk(1).snapshot().with_label("shard", "0");
        let d = mk(2).snapshot().with_label("shard", "0");
        let folded = MetricsSnapshot::merged([c, d]);
        match folded.find("hits_total", &[("shard", "0")]) {
            Some(SeriesValue::Counter(3)) => {}
            other => panic!("folded counter: {other:?}"),
        }
    }
}
