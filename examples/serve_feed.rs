//! Serve feed: a fleet of reader threads answering currency queries while
//! the delta stream keeps flowing.
//!
//! The streaming CRM of `live_feed`, put behind the serving front door:
//! one writer thread applies readings and retractions through
//! [`CurrencyServe::apply`] (each publish bumps the epoch), while reader
//! threads answer CPS/COP/CCQA through their own [`ServeHandle`]s — every
//! answer pinned to a published epoch, repeated questions served from the
//! epoch-keyed cache, and none of it ever blocking the writer.  The
//! closing audit replays a sample of what the readers saw against a
//! fresh single-threaded engine.
//!
//! Run with: `cargo run --example serve_feed`

use data_currency::model::{
    AttrId, Catalog, CmpOp, DenialConstraint, Eid, RelationSchema, SpecDelta, Specification, Term,
    Tuple, TupleId, Value,
};
use data_currency::query::SpQuery;
use data_currency::reason::{CurrencyEngine, CurrencyOrderQuery, Options};
use data_currency::serve::{CurrencyServe, ServeOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const BALANCE: AttrId = AttrId(0);
const CUSTOMERS: u64 = 8;
const READER_THREADS: usize = 4;
const TICKS: usize = 40;

fn main() {
    println!("== serve_feed: concurrent readers over an epoch-published CRM ==\n");

    // Bootstrap: two readings per customer plus the currency rule that
    // orders them (higher balance ⇒ more current).
    let mut cat = Catalog::new();
    let crm = cat.add(RelationSchema::new("Crm", &["balance"]));
    let mut spec = Specification::new(cat);
    for c in 0..CUSTOMERS {
        for bal in [100 + c as i64, 200 + c as i64] {
            spec.instance_mut(crm)
                .push_tuple(Tuple::new(Eid(c), vec![Value::int(bal)]))
                .expect("arity");
        }
    }
    let rule = DenialConstraint::builder(crm, 2)
        .when_cmp(Term::attr(0, BALANCE), CmpOp::Gt, Term::attr(1, BALANCE))
        .then_order(1, BALANCE, 0)
        .build()
        .expect("valid constraint");
    spec.add_constraint(rule).expect("well-formed");

    let serve = Arc::new(
        CurrencyServe::new(spec, &Options::default(), &ServeOptions::default())
            .expect("valid spec"),
    );
    println!(
        "bootstrapped {CUSTOMERS} customers at epoch {}, consistent: {}",
        serve.epoch(),
        serve.snapshot().cps()
    );

    // The writer: forty ticks of fresh readings and retractions, each
    // publishing a new epoch.  It never waits for a reader.
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let serve = serve.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            for tick in 0..TICKS {
                let customer = (tick as u64) % CUSTOMERS;
                let mut delta = SpecDelta::new();
                delta.insert_tuple(
                    crm,
                    Tuple::new(Eid(customer), vec![Value::int(300 + tick as i64)]),
                );
                let report = serve.apply(&delta).expect("admissible");
                if tick % 3 == 2 {
                    // Every third reading turns out to be bogus.
                    let mut retract = SpecDelta::new();
                    retract.remove_tuple(crm, report.inserted[0].1);
                    serve.apply(&retract).expect("admissible");
                }
            }
            done.store(true, Ordering::Relaxed);
        })
    };

    // The readers: each thread owns a handle (private solver scratch)
    // and hammers the same small question pool — the second time any
    // thread asks a question at a given epoch, the answer comes from the
    // shared cache.
    let certain_balances = SpQuery::identity(crm, 1).to_query(1);
    let readers: Vec<_> = (0..READER_THREADS)
        .map(|ix| {
            let serve = serve.clone();
            let done = done.clone();
            let query = certain_balances.clone();
            std::thread::spawn(move || {
                let mut handle = serve.handle();
                let mut observed = Vec::new();
                let mut rounds = 0u64;
                let round = |handle: &mut data_currency::serve::ServeHandle,
                             observed: &mut Vec<_>| {
                    let consistent = handle.cps().expect("in budget");
                    let pair = CurrencyOrderQuery::single(
                        crm,
                        BALANCE,
                        TupleId(ix as u32 * 2),
                        TupleId(ix as u32 * 2 + 1),
                    );
                    let ordered = handle.cop(&pair).expect("in budget");
                    let answers = handle.certain_answers(&query).expect("in budget");
                    observed.push((handle.epoch(), pair, consistent, ordered, answers));
                };
                while !done.load(Ordering::Relaxed) {
                    round(&mut handle, &mut observed);
                    rounds += 1;
                    std::thread::yield_now();
                }
                // One round after the stream ends, pinned to the final
                // epoch — that's what the closing audit replays.
                round(&mut handle, &mut observed);
                rounds += 1;
                (rounds, observed)
            })
        })
        .collect();

    writer.join().expect("writer finished");
    let mut total_rounds = 0u64;
    let mut samples = Vec::new();
    for reader in readers {
        let (rounds, observed) = reader.join().expect("reader finished");
        total_rounds += rounds;
        samples.extend(observed.into_iter().rev().take(3)); // last few per reader
    }

    let stats = serve.stats();
    println!(
        "\nwriter published {} epochs; {READER_THREADS} readers completed {} query rounds",
        stats.epoch, total_rounds
    );
    println!(
        "served {} queries: {} cache hits / {} misses (hit rate {:.0}%), \
         mean latency {}µs, {} entries resident",
        stats.queries,
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate() * 100.0,
        stats.mean_latency_ns() / 1_000,
        stats.cached_entries
    );

    // Closing audit: the retained samples must match a fresh engine at
    // the *current* spec for every sample pinned to the final epoch (the
    // writer has stopped, so the last rounds all are).
    let snap = serve.snapshot();
    let fresh = CurrencyEngine::new(snap.spec(), &Options::default()).expect("valid spec");
    let mut audited = 0;
    for (epoch, pair, consistent, ordered, answers) in samples {
        if epoch != snap.epoch() {
            continue;
        }
        assert_eq!(consistent, fresh.cps().expect("in budget"));
        assert_eq!(ordered, fresh.cop(&pair).expect("in budget"));
        assert_eq!(
            answers,
            fresh.certain_answers(&certain_balances).expect("in budget")
        );
        audited += 1;
    }
    println!(
        "\naudit: {audited} sampled answers at epoch {} re-checked against a fresh engine ✓",
        snap.epoch()
    );
}
