//! Observability tour: a churning serving stack watched three ways.
//!
//! A writer streams deltas through [`CurrencyServe`] while a reader
//! queries at every epoch; a [`RingRecorder`] taps the structured trace
//! stream so the demo can print **live apply-phase timings** (validate /
//! refresh / recompile spans reconstructed from span-start/span-end
//! pairs) mid-churn; the slow-query log catches a deliberately
//! zero-budget request; and the run closes with the full
//! Prometheus-style metrics dump every front door exposes.
//!
//! Run with: `cargo run --example observability`

use data_currency::model::{
    AttrId, Catalog, CmpOp, DenialConstraint, Eid, RelId, RelationSchema, SpecDelta, Specification,
    Term, Tuple, TupleId, Value,
};
use data_currency::obs::{RingRecorder, TraceEvent, TraceKind};
use data_currency::reason::{CurrencyOrderQuery, Options};
use data_currency::serve::{CurrencyServe, ServeOptions, ServeRequest};
use std::collections::HashMap;
use std::time::Duration;

const A: AttrId = AttrId(0);

fn spec() -> (Specification, RelId) {
    let mut cat = Catalog::new();
    let r = cat.add(RelationSchema::new("Reading", &["value"]));
    let mut spec = Specification::new(cat);
    for e in 0..3u64 {
        for v in [10, 20] {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(e), vec![Value::int(v + e as i64)]))
                .unwrap();
        }
    }
    // Bigger readings are more current: a monotone denial constraint.
    let monotone = DenialConstraint::builder(r, 2)
        .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
        .then_order(1, A, 0)
        .build()
        .unwrap();
    spec.add_constraint(monotone).unwrap();
    (spec, r)
}

/// Reconstruct span durations from the raw trace stream and aggregate
/// them per span name: pair each `SpanEnd` with the `SpanStart` that
/// carries the same span id.
fn phase_table(events: &[TraceEvent]) -> Vec<(&'static str, u64, u64)> {
    let mut open: HashMap<u64, (&'static str, u64)> = HashMap::new();
    let mut agg: HashMap<&'static str, (u64, u64)> = HashMap::new();
    for e in events {
        match e.kind {
            TraceKind::SpanStart => {
                open.insert(e.span, (e.name, e.ts_ns));
            }
            TraceKind::SpanEnd => {
                if let Some((name, started)) = open.remove(&e.span) {
                    let entry = agg.entry(name).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += e.ts_ns.saturating_sub(started);
                }
            }
            TraceKind::Event => {}
        }
    }
    let mut rows: Vec<(&'static str, u64, u64)> =
        agg.into_iter().map(|(n, (c, t))| (n, c, t)).collect();
    rows.sort();
    rows
}

fn main() {
    let (spec, r) = spec();
    let opts = ServeOptions {
        slow_query_threshold: Some(Duration::ZERO), // log every query for the demo
        slow_query_capacity: 8,
        ..ServeOptions::default()
    };
    let serve = CurrencyServe::new(spec, &Options::default(), &opts).expect("consistent spec");
    let recorder = RingRecorder::new(4096);
    serve.set_recorder(recorder.clone());
    let mut handle = serve.handle();

    println!("== churn: 20 deltas, two queries per epoch, tracing on ==\n");
    for step in 0..20u32 {
        let mut delta = SpecDelta::new();
        delta.insert_tuple(
            r,
            Tuple::new(
                Eid(u64::from(step) % 3),
                vec![Value::int(100 + i64::from(step))],
            ),
        );
        serve.apply(&delta).expect("admissible delta");
        let consistent = handle.cps().expect("cps");
        let ordered = handle
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)))
            .expect("cop");
        if (step + 1) % 5 == 0 {
            // Drain the ring mid-run: live apply-phase timings since the
            // last drain, straight from the span stream.
            println!(
                "after epoch {}: cps={consistent} cop={ordered}",
                serve.epoch()
            );
            for (name, count, total_ns) in phase_table(&recorder.drain()) {
                println!(
                    "  {name:<18} ×{count:<3} total {:>8.1}µs",
                    total_ns as f64 / 1_000.0
                );
            }
            println!();
        }
    }

    // A zero-budget request: interrupted, degraded if possible, and —
    // because the threshold is zero — retained by the slow-query log
    // with its solver work ledger.
    let fresh = ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(2), TupleId(3)));
    let _ = handle.query_within(&fresh, Some(Duration::ZERO));
    println!(
        "== slow-query log (newest {} retained) ==",
        opts.slow_query_capacity
    );
    for q in serve.slow_queries() {
        println!(
            "  epoch {:>2}  {:>8.1}µs  spent={:?}  {:?}",
            q.epoch,
            q.duration.as_nanos() as f64 / 1_000.0,
            q.spent,
            q.request
        );
    }

    println!("\n== closing metrics dump (Prometheus exposition) ==\n");
    print!("{}", serve.handle().metrics_text());
}
