//! Live feed: delta-driven currency reasoning on a streaming CRM.
//!
//! A long-lived [`CurrencyEngine`] serves a customer table whose records
//! arrive as a feed — new readings, late-arriving currency facts, a
//! currency constraint learned mid-stream, and a provenance link to an
//! upstream source.  Each tick applies a [`SpecDelta`] through
//! `CurrencyEngine::apply` and re-queries; the engine recompiles **only
//! the components the tick touched**, keeping every other customer's
//! cached solver (and its learnt clauses) alive.
//!
//! Run with: `cargo run --example live_feed`

use data_currency::model::{
    AttrId, Catalog, CmpOp, CopyFunction, CopySignature, DenialConstraint, Eid, RelationSchema,
    SpecDelta, Specification, Term, Tuple, TupleId, Value,
};
use data_currency::query::SpQuery;
use data_currency::reason::{CurrencyEngine, CurrencyOrderQuery, Options};
use std::collections::BTreeSet;

/// Attribute 0: the account balance; attribute 1: the assigned agent.
const BALANCE: AttrId = AttrId(0);
const AGENT: AttrId = AttrId(1);
const CUSTOMERS: u64 = 8;

fn main() {
    println!("== live_feed: delta-driven updates through a long-lived CurrencyEngine ==\n");

    // Bootstrap: every customer starts with two conflicting readings and
    // no timestamps — which balance is current?
    let mut cat = Catalog::new();
    let crm = cat.add(RelationSchema::new("Crm", &["balance", "agent"]));
    let feed = cat.add(RelationSchema::new("Feed", &["balance", "agent"]));
    let mut spec = Specification::new(cat);
    for c in 0..CUSTOMERS {
        for (bal, agent) in [(100 + c as i64, 1), (200 + c as i64, 2)] {
            spec.instance_mut(crm)
                .push_tuple(Tuple::new(Eid(c), vec![Value::int(bal), Value::int(agent)]))
                .expect("arity");
        }
    }
    let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).expect("valid spec");
    println!(
        "bootstrapped {} customers → {} components, consistent: {}",
        CUSTOMERS,
        engine.stats().components,
        engine.cps().expect("in budget")
    );
    report_certain_balances(&engine, crm);

    // Tick 1 — the ops team learns a domain rule: balances only grow, so
    // a higher balance is the more current one.  One delta, every
    // customer's component recompiles (the rule touches them all).
    println!("\n[tick 1] constraint learned: higher balance ⇒ more current");
    let rule = DenialConstraint::builder(crm, 2)
        .when_cmp(Term::attr(0, BALANCE), CmpOp::Gt, Term::attr(1, BALANCE))
        .then_order(1, BALANCE, 0)
        .build()
        .expect("valid constraint");
    let mut delta = SpecDelta::new();
    delta.add_constraint(rule);
    apply_and_report(&mut engine, &delta);
    report_certain_balances(&engine, crm);

    // Tick 2 — a burst of fresh readings for two customers.  Only their
    // two components recompile; the other six keep their caches.
    println!("\n[tick 2] fresh readings for customers 3 and 5");
    let mut delta = SpecDelta::new();
    delta
        .insert_tuple(
            crm,
            Tuple::new(Eid(3), vec![Value::int(903), Value::int(3)]),
        )
        .insert_tuple(
            crm,
            Tuple::new(Eid(5), vec![Value::int(905), Value::int(3)]),
        );
    let inserted = apply_and_report(&mut engine, &delta);
    report_certain_balances(&engine, crm);

    // Tick 3 — an auditor confirms a currency fact about the agent
    // column for customer 3 (balance said nothing about agents).
    println!("\n[tick 3] audited fact: customer 3's newest reading has the current agent");
    let (_, new3) = inserted[0];
    let mut delta = SpecDelta::new();
    delta.add_order_edge(crm, AGENT, TupleId(6), new3);
    apply_and_report(&mut engine, &delta);
    let certain = engine
        .cop(&CurrencyOrderQuery::single(crm, AGENT, TupleId(6), new3))
        .expect("in budget");
    println!(
        "  certain that reading {:?} ≺_agent {:?}: {certain}",
        TupleId(6),
        new3
    );

    // Tick 4 — provenance arrives: customer 5's readings were imported
    // from the upstream feed, which carries its own currency order.  The
    // copy obligations merge the two cells into one component.
    println!("\n[tick 4] provenance: customer 5 copied from the upstream feed");
    let crm5 = engine.spec().instance(crm).entity_group(Eid(5)).to_vec();
    let mut delta = SpecDelta::new();
    let sig = CopySignature::new(crm, vec![BALANCE, AGENT], feed, vec![BALANCE, AGENT])
        .expect("matching signature");
    delta.add_copy(CopyFunction::new(sig));
    let feed_base = engine.spec().instance(feed).len() as u32;
    for (k, &t) in crm5.iter().enumerate() {
        let row = engine.spec().instance(crm).tuple(t).clone();
        delta
            .insert_tuple(feed, Tuple::new(Eid(500), row.values.clone()))
            .extend_copy(0, t, TupleId(feed_base + k as u32));
    }
    apply_and_report(&mut engine, &delta);

    // Tick 5 — a stale reading is retracted; its component shrinks back.
    println!("\n[tick 5] retraction: customer 3's oldest reading was bogus");
    let mut delta = SpecDelta::new();
    delta.remove_tuple(crm, TupleId(6));
    apply_and_report(&mut engine, &delta);
    report_certain_balances(&engine, crm);

    let stats = engine.stats();
    println!(
        "\nlifetime: {} deltas, {} components rebuilt, {} reused \
         ({:.0}% of component-deltas served from cache)",
        stats.updates_applied,
        stats.components_rebuilt,
        stats.components_reused,
        100.0 * stats.components_reused as f64
            / (stats.components_rebuilt + stats.components_reused).max(1) as f64
    );
    assert!(
        engine.cps().expect("in budget"),
        "stream kept the spec consistent"
    );
}

/// Apply one delta and print what the engine had to do for it.
fn apply_and_report(
    engine: &mut CurrencyEngine<'static>,
    delta: &SpecDelta,
) -> Vec<(data_currency::model::RelId, TupleId)> {
    let report = engine.apply(delta).expect("admissible delta");
    println!(
        "  {} op(s) → {} cell(s) touched, {} component(s) rebuilt, {} reused; consistent: {}",
        delta.len(),
        report.cells_touched,
        report.components_rebuilt,
        report.components_reused,
        engine.cps().expect("in budget"),
    );
    report.inserted
}

/// Print the balances certain to appear in the current CRM instance (the
/// SP projection query `π_balance(Crm)` under certain-answer semantics).
fn report_certain_balances(engine: &CurrencyEngine<'_>, crm: data_currency::model::RelId) {
    let arity = engine.spec().instance(crm).arity();
    let q = SpQuery {
        rel: crm,
        projection: vec![BALANCE],
        conditions: Vec::new(),
    }
    .to_query(arity);
    let answers = engine.certain_answers(&q).expect("in budget");
    let balances: BTreeSet<String> = answers
        .rows()
        .map(|rows| rows.iter().map(|row| row[0].to_string()).collect())
        .unwrap_or_default();
    if balances.is_empty() {
        println!("  certain current balances: none yet (currency unknown)");
    } else {
        println!(
            "  certain current balances: {{{}}}",
            balances.into_iter().collect::<Vec<_>>().join(", ")
        );
    }
}
