//! Durable feed: the streaming CRM of `live_feed`, surviving a crash.
//!
//! The same delta-driven workload runs through a [`DurableEngine`]: every
//! tick is logged to a write-ahead log *before* it is applied, snapshots
//! rotate as the log grows, and mid-stream the process "dies" — the
//! engine is dropped on the floor and reopened from disk.  Recovery loads
//! the newest snapshot, replays the log suffix, and the stream picks up
//! exactly where it left off; the closing audit proves the recovered
//! engine answers identically to a never-restarted one.
//!
//! Run with: `cargo run --example durable_feed`

use data_currency::model::wire::encode_spec;
use data_currency::model::{
    AttrId, Catalog, CmpOp, DenialConstraint, Eid, RelationSchema, SpecDelta, Specification, Term,
    Tuple, TupleId, Value,
};
use data_currency::reason::{CurrencyEngine, CurrencyOrderQuery, Options};
use data_currency::store::{DurableEngine, StoreOptions};

const BALANCE: AttrId = AttrId(0);
const CUSTOMERS: u64 = 6;

fn main() {
    println!("== durable_feed: a crash-recoverable CurrencyEngine over a streaming CRM ==\n");

    let dir = std::env::temp_dir().join(format!("currency-durable-feed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Bootstrap: two conflicting readings per customer, no timestamps.
    let mut cat = Catalog::new();
    let crm = cat.add(RelationSchema::new("Crm", &["balance", "agent"]));
    let mut spec = Specification::new(cat);
    for c in 0..CUSTOMERS {
        for (bal, agent) in [(100 + c as i64, 1), (200 + c as i64, 2)] {
            spec.instance_mut(crm)
                .push_tuple(Tuple::new(Eid(c), vec![Value::int(bal), Value::int(agent)]))
                .expect("arity");
        }
    }
    let opts = Options {
        // Retraction tombstones are reclaimed automatically once four
        // accumulate — the compaction is logged and re-verified on replay.
        auto_compact_tombstones: 4,
        ..Options::default()
    };
    let store_opts = StoreOptions {
        // Tiny threshold so the demo rotates a snapshot mid-stream.
        snapshot_rotate_bytes: 512,
        ..StoreOptions::default()
    };
    let mut engine = DurableEngine::create(&dir, spec, &opts, store_opts).expect("fresh store");
    println!(
        "bootstrapped {} customers into {} (snapshot 0 + empty log), consistent: {}",
        CUSTOMERS,
        dir.display(),
        engine.cps().expect("in budget")
    );

    // Ticks 1..=3 — a constraint is learned, readings arrive, a stale
    // reading is retracted.  Every delta hits the log before the engine.
    println!("\n[tick 1] constraint learned: higher balance ⇒ more current");
    let rule = DenialConstraint::builder(crm, 2)
        .when_cmp(Term::attr(0, BALANCE), CmpOp::Gt, Term::attr(1, BALANCE))
        .then_order(1, BALANCE, 0)
        .build()
        .expect("valid constraint");
    let mut delta = SpecDelta::new();
    delta.add_constraint(rule);
    engine.apply(&delta).expect("admissible");
    report(&engine);

    println!("\n[tick 2] fresh readings for customers 1 and 4");
    let mut delta = SpecDelta::new();
    delta
        .insert_tuple(
            crm,
            Tuple::new(Eid(1), vec![Value::int(901), Value::int(3)]),
        )
        .insert_tuple(
            crm,
            Tuple::new(Eid(4), vec![Value::int(904), Value::int(3)]),
        );
    let inserted = engine.apply(&delta).expect("admissible").inserted;
    report(&engine);

    println!("\n[tick 3] retraction: customer 1's burst reading was bogus");
    let mut delta = SpecDelta::new();
    delta.remove_tuple(crm, inserted[0].1);
    engine.apply(&delta).expect("admissible");
    report(&engine);

    // The crash.  No shutdown hook runs; whatever reached the log is the
    // truth.
    println!("\n[tick 4] ✗ process dies mid-stream (engine dropped, no shutdown)");
    let pre_crash = encode_spec(engine.spec());
    let seq = engine.seq();
    drop(engine);

    // Recovery: newest valid snapshot + log-suffix replay.
    let mut engine = DurableEngine::open(&dir, &opts, store_opts).expect("recoverable store");
    let rec = *engine.recovery();
    println!(
        "[tick 5] ✓ reopened: snapshot covers seq {}, replayed {} delta(s) + {} compaction(s), \
         torn tail {} byte(s)",
        rec.snapshot_seq, rec.deltas_replayed, rec.compacts_replayed, rec.torn_tail_bytes
    );
    assert_eq!(engine.seq(), seq, "no acknowledged record was lost");
    assert_eq!(
        encode_spec(engine.spec()),
        pre_crash,
        "recovered specification is byte-identical"
    );
    report(&engine);

    // The stream continues on the recovered engine: churn enough to
    // trip the auto-compaction policy.
    println!("\n[tick 6] churn: four insert+retract rounds (auto-compaction threshold is 4)");
    let mut compactions = 0;
    for round in 0..4 {
        let mut delta = SpecDelta::new();
        delta.insert_tuple(
            crm,
            Tuple::new(Eid(2), vec![Value::int(500 + round), Value::int(9)]),
        );
        let report = engine.apply(&delta).expect("admissible");
        let (rel, id) = report.inserted[0];
        let mut retract = SpecDelta::new();
        retract.remove_tuple(rel, id);
        if engine
            .apply(&retract)
            .expect("admissible")
            .compacted
            .is_some()
        {
            compactions += 1;
        }
    }
    println!(
        "  {} auto-compaction(s) fired and were logged with their remap tables",
        compactions
    );

    // Closing audit: a second recovery must agree with the live engine —
    // and with a from-scratch in-memory engine over the same spec — on
    // consistency and a COP sweep.
    let live = encode_spec(engine.spec());
    drop(engine);
    let recovered = DurableEngine::open(&dir, &opts, store_opts).expect("recoverable store");
    assert_eq!(encode_spec(recovered.spec()), live);
    let fresh = CurrencyEngine::new(recovered.spec(), &opts).expect("valid spec");
    assert_eq!(
        recovered.cps().expect("in budget"),
        fresh.cps().expect("in budget")
    );
    let len = recovered.spec().instance(crm).len() as u32;
    for u in 0..len {
        for v in 0..len {
            let q = CurrencyOrderQuery::single(crm, BALANCE, TupleId(u), TupleId(v));
            assert_eq!(
                recovered.cop(&q).expect("in budget"),
                fresh.cop(&q).expect("in budget"),
                "COP {u} ≺ {v}"
            );
        }
    }
    let stats = recovered.stats();
    println!(
        "\nlifetime (this process): {} recoveries, {} deltas replayed, {} compactions; \
         final audit: recovered == never-restarted on CPS + all-pairs COP ✓",
        stats.recoveries, stats.deltas_replayed, stats.compactions
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Print the tick's durability + consistency line.
fn report(engine: &DurableEngine) {
    println!(
        "  seq {} (snapshot covers {}), consistent: {}",
        engine.seq(),
        engine.snapshot_seq(),
        engine.cps().expect("in budget")
    );
}
