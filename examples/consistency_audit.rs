//! Auditing a currency specification for consistency.
//!
//! Currency semantics come from three places — recorded partial orders,
//! denial constraints, and orders inherited through copy functions — and
//! they can contradict each other (paper Example 2.3): then `Mod(S) = ∅`
//! and every "certain" statement is vacuous.  This example walks a
//! data-engineering audit:
//!
//! 1. check CPS before trusting any downstream answer;
//! 2. when consistent, extract a *witness completion* to show one
//!    concrete world;
//! 3. when inconsistent, extract a minimal conflicting core
//!    (`reason::explain_inconsistency`) naming exactly the constraints,
//!    recorded order facts and copy functions that clash.
//!
//! Run with: `cargo run --example consistency_audit`

use data_currency::datagen::scenarios::{self, dept_attrs};
use data_currency::model::render_spec;
use data_currency::reason::{cps, explain_inconsistency, witness_completion, SpecComponent};

fn main() {
    println!("== consistency audit ==\n");
    let f = scenarios::fig1();

    println!("--- the specification under audit ---");
    print!("{}", render_spec(&f.spec));

    // Healthy specification.
    println!(
        "\nS₀ (Fig. 1 + φ₁–φ₄ + ρ): consistent = {}",
        cps(&f.spec).unwrap()
    );
    let witness = witness_completion(&f.spec).unwrap().expect("witness");
    let chain = witness.rel(f.dept).chain(dept_attrs::BUDGET, f.rnd);
    let rendered: Vec<String> = chain.iter().map(|t| t.to_string()).collect();
    println!(
        "  one consistent world orders R&D's budget column as: {}",
        rendered.join(" ≺ ")
    );

    // Poisoned specification (Example 2.3, second half): a recorded order
    // contradicting what the constraints + copy function derive.
    let mut poisoned = f.spec.clone();
    poisoned
        .instance_mut(f.dept)
        .add_order(dept_attrs::BUDGET, f.t[2], f.t[0])
        .unwrap();
    let consistent = cps(&poisoned).unwrap();
    println!("\nS₀ + claim 't3 ≺_budget t1': consistent = {consistent}");
    assert!(!consistent);

    // Minimal conflicting core.
    let core = explain_inconsistency(&poisoned)
        .unwrap()
        .expect("inconsistent");
    println!(
        "minimal conflicting core ({} components):",
        core.components.len()
    );
    for c in &core.components {
        match c {
            SpecComponent::Constraint(i) => {
                println!("  constraint #{i}: {:?}", poisoned.constraints()[*i]);
            }
            SpecComponent::OrderFact {
                rel,
                attr,
                lesser,
                greater,
            } => {
                let schema = poisoned.catalog().schema(*rel);
                println!(
                    "  recorded order: {}.{}: {lesser} ≺ {greater}",
                    schema.name(),
                    schema.attr_name(*attr)
                );
            }
            SpecComponent::Copy(i) => {
                println!("  copy function ρ{i}");
            }
        }
    }
    println!(
        "\nReading: φ₁ forces the salary order, φ₃ lifts it to addresses, the\n\
         copy function imports it into mgrAddr, φ₄ lifts it to budgets —\n\
         contradicting the recorded budget claim.  Drop any one component\n\
         and the specification is consistent again (the core is minimal)."
    );
}
