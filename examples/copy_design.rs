//! Designing copy functions: have we imported enough current data?
//!
//! Example 4.1 of the paper: the `Emp` relation copies manager records
//! from a fresher `Mgr` source.  The existing copy function imports only
//! one record — is that enough to answer "what is Mary's current last
//! name"?  The paper's §4 machinery answers precisely this:
//!
//! * **CPP** — is the current copy function *currency preserving* (no
//!   further import can change the certain answer)?
//! * **ECP** — can it be extended into a currency-preserving one?
//! * **BCP** — with at most `k` extra imports?
//! * `maximum_extension` — the saturating import of Proposition 5.2.
//!
//! Run with: `cargo run --example copy_design`

use data_currency::datagen::scenarios;
use data_currency::model::{Tuple, Value};
use data_currency::reason::{
    bcp, certain_answers, cpp, ecp, maximum_extension, Options, PreservationProblem,
};
use std::collections::BTreeSet;

fn main() {
    println!("== copy-function design: Example 4.1 ==\n");
    let e = scenarios::example_4_1();
    let q2 = e.q2().to_query(5);
    let sources: BTreeSet<_> = [e.mgr].into();
    let opts = Options::default();

    // Baseline: the certain answer with the current copy function ρ.
    let ans = certain_answers(&e.spec, &q2, &opts).unwrap();
    println!(
        "Q2 (Mary's current last name) under ρ = {{s3 ⇐ s′2}}: {:?}",
        ans.rows().unwrap()
    );

    // CPP: is ρ currency preserving for Q2?
    let problem = PreservationProblem {
        spec: &e.spec,
        sources: &sources,
        query: &q2,
    };
    let preserving = cpp(&problem, &opts).unwrap();
    println!("ρ currency preserving for Q2: {preserving}");
    assert!(!preserving, "importing s′3 would flip the answer to Smith");

    // ECP: can ρ be fixed at all?  (O(1): yes, iff the spec is consistent.)
    println!(
        "ρ extendable to a preserving collection (ECP): {}",
        ecp(&problem).unwrap()
    );

    // BCP: how many extra imports are needed?
    for k in 0..=2 {
        let ok = bcp(&problem, k, &opts).unwrap();
        println!("  BCP with k = {k}: {ok}");
    }

    // Build ρ₁ by hand: import s′3 (the divorced record) into Emp.
    let mut extended = e.spec.clone();
    let t_new = extended
        .instance_mut(e.emp)
        .push_tuple(Tuple::new(
            e.mary,
            vec![
                Value::str("Mary"),
                Value::str("Smith"),
                Value::str("2 Small St"),
                Value::int(80),
                Value::str("divorced"),
            ],
        ))
        .unwrap();
    extended.copy_mut(0).set_mapping(t_new, e.sp[2]);
    extended.validate().unwrap();
    let ans1 = certain_answers(&extended, &q2, &opts).unwrap();
    println!(
        "\nQ2 under ρ₁ = ρ ∪ {{t_new ⇐ s′3}}: {:?}",
        ans1.rows().unwrap()
    );
    let problem1 = PreservationProblem {
        spec: &extended,
        sources: &sources,
        query: &q2,
    };
    let preserving1 = cpp(&problem1, &opts).unwrap();
    println!("ρ₁ currency preserving for Q2: {preserving1}");
    assert!(preserving1, "copying s′1 as well would change nothing");

    // The saturating maximum extension of Proposition 5.2.
    let maxed = maximum_extension(&e.spec, &sources).unwrap();
    println!(
        "\nmaximum extension: |ρ| grew {} → {} mappings, Emp grew {} → {} tuples",
        e.spec.total_copy_size(),
        maxed.total_copy_size(),
        e.spec.instance(e.emp).len(),
        maxed.instance(e.emp).len(),
    );
    let ans_max = certain_answers(&maxed, &q2, &opts).unwrap();
    println!(
        "Q2 under the maximum extension: {:?}",
        ans_max.rows().unwrap()
    );
    println!("\nConclusion: one targeted import (k = 1) repairs the copy design;");
    println!("the maximum extension reaches the same answer by saturation.");
}
