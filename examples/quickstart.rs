//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Fig. 1 company database (employees with stale records, a
//! department whose manager data was copied from the employee table),
//! attaches the currency semantics of Example 2.1 as denial constraints,
//! and answers the four motivating queries of Example 1.1 with *certain
//! current answers* — answers guaranteed to be computed from the most
//! current values, no matter how the unknown currency orders resolve.
//!
//! Run with: `cargo run --example quickstart`

use data_currency::datagen::scenarios;
use data_currency::datagen::scenarios::{dept_attrs, emp_attrs};
use data_currency::model::Value;
use data_currency::query::{classify, SpQuery};
use data_currency::reason::{certain_answers, cop, cps, dcip, CurrencyOrderQuery, Options};

fn show(label: &str, spec: &data_currency::model::Specification, q: &SpQuery, arity: usize) {
    let query = q.to_query(arity);
    let ans = certain_answers(spec, &query, &Options::default()).expect("solvable");
    let rows = ans.rows().expect("consistent specification");
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(Value::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        })
        .collect();
    println!(
        "  {label}  [{} query]  →  {{{}}}",
        classify(&query),
        rendered.join(" | ")
    );
}

fn main() {
    println!("== data-currency quickstart: Fig. 1 of Fan/Geerts/Wijsen ==\n");
    let f = scenarios::fig1();

    // 1. Sanity: the specification is consistent (Mod(S₀) ≠ ∅).
    let consistent = cps(&f.spec).expect("CPS decidable");
    println!("specification S₀ consistent (CPS): {consistent}\n");
    assert!(consistent);

    // 2. The four queries of Example 1.1.
    println!("certain current answers (Example 1.1):");
    show("Q1  Mary's current salary      ", &f.spec, &f.q1(), 5);
    show("Q2  Mary's current last name   ", &f.spec, &f.q2(), 5);
    show("Q3  Mary's current address     ", &f.spec, &f.q3(), 5);
    show("Q4  R&D's current budget       ", &f.spec, &f.q4(), 4);

    // 3. Certain orderings (Example 3.2): which currency facts hold in
    //    every consistent completion?
    println!("\ncertain orderings (Example 3.2):");
    let s1_before_s3 = cop(
        &f.spec,
        &CurrencyOrderQuery::single(f.emp, emp_attrs::SALARY, f.s[0], f.s[2]),
    )
    .expect("COP decidable");
    println!("  s1 ≺_salary s3 certain:  {s1_before_s3}   (forced by φ₁: salaries never decrease)");
    let t3_before_t4 = cop(
        &f.spec,
        &CurrencyOrderQuery::single(f.dept, dept_attrs::MGR_FN, f.t[2], f.t[3]),
    )
    .expect("COP decidable");
    println!("  t3 ≺_mgrFN  t4 certain:  {t3_before_t4}   (both orders are realizable)");

    // 4. Determinism of current instances (Example 3.3).
    println!("\ndeterministic current instances (Example 3.3):");
    let emp_det = dcip(&f.spec, f.emp, &Options::default()).expect("DCIP decidable");
    let dept_det = dcip(&f.spec, f.dept, &Options::default()).expect("DCIP decidable");
    println!("  Emp  deterministic: {emp_det}   (every completion yields {{s3, s4, s5}})");
    println!("  Dept deterministic: {dept_det}   (the manager's name varies with t3/t4)");

    println!("\nAll outcomes match the paper's Examples 1.1, 2.5, 3.2 and 3.3.");
}
