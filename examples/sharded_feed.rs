//! Sharded feed: the crash-recoverable CRM of `durable_feed`, scaled out
//! across entity shards.
//!
//! The customer base is split over a [`ShardedStore`] — four independent
//! durable engines, each with its own write-ahead log and snapshots.
//! Entities route to shards deterministically (`splitmix64` over the
//! copy-closure representative), so every delta for a customer lands in
//! the shard that owns it; structure deltas (new constraints) broadcast
//! to all shards; a delta that spans two shards is *rejected*, never
//! re-homed.  Queries scatter to every shard and gather: CPS is the
//! conjunction of per-shard verdicts, COP and certain answers translate
//! through the global id space (`global = local · N + shard`).  Mid-feed
//! the process "dies" and all four shards recover **in parallel** — one
//! thread per shard — landing on exactly the state sequential recovery
//! produces.
//!
//! Run with: `cargo run --example sharded_feed`

use data_currency::model::wire::encode_spec;
use data_currency::model::{
    AttrId, Catalog, CmpOp, DenialConstraint, Eid, RelationSchema, SpecDelta, Specification, Term,
    Tuple, Value,
};
use data_currency::reason::{CurrencyOrderQuery, Options, ShardError};
use data_currency::store::{ShardedStore, ShardedStoreError, StoreOptions};

const BALANCE: AttrId = AttrId(0);
const CUSTOMERS: u64 = 32;
const SHARDS: usize = 4;

fn main() {
    println!("== sharded_feed: a CRM scaled out over {SHARDS} crash-recoverable shards ==\n");

    let dir = std::env::temp_dir().join(format!("currency-sharded-feed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Bootstrap: two conflicting readings per customer, no ordering yet.
    let mut cat = Catalog::new();
    let crm = cat.add(RelationSchema::new("Crm", &["balance"]));
    let mut spec = Specification::new(cat);
    let mut bootstrap_ids = Vec::new();
    for c in 0..CUSTOMERS {
        for bal in [100 + c as i64, 200 + c as i64] {
            let id = spec
                .instance_mut(crm)
                .push_tuple(Tuple::new(Eid(c), vec![Value::int(bal)]))
                .expect("arity");
            bootstrap_ids.push((c, id));
        }
    }

    // `create` splits the bootstrap across shards and writes snapshot 0
    // for each.  The returned plan is the routing contract from here on.
    let opts = Options::default();
    let store_opts = StoreOptions::default();
    let mut store =
        ShardedStore::create(&dir, &spec, SHARDS, &opts, store_opts).expect("fresh store");
    let mut by_shard = vec![0usize; SHARDS];
    for c in 0..CUSTOMERS {
        by_shard[store.plan().shard_of(Eid(c))] += 1;
    }
    println!(
        "bootstrapped {CUSTOMERS} customers across {SHARDS} shards {:?}, consistent: {}",
        by_shard,
        store.cps().expect("in budget")
    );

    // Tick 1 — a structure delta: the currency rule (higher balance ⇒
    // more current).  Constraints are shard-independent, so this
    // broadcasts: every shard logs and applies it.
    println!("\n[tick 1] constraint learned — broadcast to every shard");
    let rule = DenialConstraint::builder(crm, 2)
        .when_cmp(Term::attr(0, BALANCE), CmpOp::Gt, Term::attr(1, BALANCE))
        .then_order(1, BALANCE, 0)
        .build()
        .expect("valid constraint");
    let mut delta = SpecDelta::new();
    delta.add_constraint(rule);
    let report = store.apply(&delta).expect("admissible");
    assert!(report.broadcast, "structure deltas reach every shard");
    println!(
        "  broadcast: true, consistent: {}",
        store.cps().expect("in budget")
    );

    // Tick 2 — entity deltas: fresh readings.  Each routes to exactly
    // the shard that owns its customer.
    println!("\n[tick 2] fresh readings — routed to their owning shards");
    let mut fresh = Vec::new();
    for c in [3u64, 11, 19, 27] {
        let mut delta = SpecDelta::new();
        delta.insert_tuple(crm, Tuple::new(Eid(c), vec![Value::int(900 + c as i64)]));
        let report = store.apply(&delta).expect("admissible");
        let owner = store.plan().shard_of(Eid(c));
        assert_eq!(report.shard, Some(owner), "routed to the owner");
        fresh.push((c, report.inserted[0].1));
        println!(
            "  customer {c} → shard {owner} (global id {:?})",
            report.inserted[0].1
        );
    }

    // Tick 3 — the routing policy's teeth: a delta whose entities live
    // in different shards is rejected outright, never re-homed.  The
    // caller splits the batch and resubmits.
    println!("\n[tick 3] a cross-shard batch is rejected, never re-homed");
    let (a, b) = cross_shard_pair(&store).expect("32 customers over 4 shards must collide");
    let mut bad = SpecDelta::new();
    bad.insert_tuple(crm, Tuple::new(Eid(a), vec![Value::int(1)]))
        .insert_tuple(crm, Tuple::new(Eid(b), vec![Value::int(2)]));
    match store.apply(&bad) {
        Err(ShardedStoreError::Routing(ShardError::CrossShard { shards })) => {
            println!("  ✗ customers {a} and {b} span shards {shards:?} — split the batch");
        }
        other => panic!("expected CrossShard rejection, got {:?}", other.map(|_| ())),
    }
    for c in [a, b] {
        let mut one = SpecDelta::new();
        one.insert_tuple(crm, Tuple::new(Eid(c), vec![Value::int(500)]));
        store.apply(&one).expect("singleton batch is admissible");
    }
    println!("  ✓ resubmitted as two singleton deltas");

    // Scatter-gather queries.  Bootstrap tuple ids were renumbered by
    // the split; `import()` translates them into the global id space.
    let (c0_low, c0_high) = {
        let low = store
            .import()
            .new_id(crm, bootstrap_ids[0].1)
            .expect("live");
        let high = store
            .import()
            .new_id(crm, bootstrap_ids[1].1)
            .expect("live");
        (low, high)
    };
    let certainly_older = store
        .cop(&CurrencyOrderQuery::single(crm, BALANCE, c0_low, c0_high))
        .expect("in budget");
    let certainly_newer = store
        .cop(&CurrencyOrderQuery::single(crm, BALANCE, c0_high, c0_low))
        .expect("in budget");
    println!(
        "\nscatter-gather: consistent: {}, customer 0's low reading ≺ high: {}, high ≺ low: {}",
        store.cps().expect("in budget"),
        certainly_older,
        certainly_newer
    );
    assert!(certainly_older && !certainly_newer);

    // The crash.  Whatever reached the four logs is the truth.
    println!("\n[tick 4] ✗ process dies mid-feed (store dropped, no shutdown)");
    let pre_crash: Vec<Vec<u8>> = (0..SHARDS)
        .map(|k| encode_spec(store.shard(k).spec()))
        .collect();
    drop(store);

    // Parallel recovery: one thread per shard, each loading its newest
    // snapshot and replaying its log suffix.  Sequential recovery must
    // land on byte-identical shards.
    let store = ShardedStore::open(&dir, &opts, store_opts).expect("parallel recovery");
    let replayed: usize = store.recoveries().iter().map(|r| r.deltas_replayed).sum();
    println!("[tick 5] ✓ {SHARDS} shards recovered in parallel, {replayed} deltas replayed");
    let sequential = ShardedStore::open_sequential(
        &dir,
        &opts,
        StoreOptions {
            // A recovery-speed lever: skip per-delta re-validation and
            // lean on the WAL's CRC framing — the log only ever holds
            // deltas that were admissible when written.
            trusted_replay: true,
            ..store_opts
        },
    )
    .expect("sequential recovery");
    for (k, pre) in pre_crash.iter().enumerate() {
        let recovered = encode_spec(store.shard(k).spec());
        assert_eq!(&recovered, pre, "shard {k} lost state");
        assert_eq!(
            &encode_spec(sequential.shard(k).spec()),
            pre,
            "trusted sequential recovery diverged on shard {k}"
        );
    }
    drop(sequential);

    // Closing audit: the recovered store answers exactly as pre-crash.
    let mut store = store;
    assert!(store.cps().expect("in budget"));
    for &(c, global) in &fresh {
        let owner = store.plan().shard_of(Eid(c));
        let mut delta = SpecDelta::new();
        delta.remove_tuple(crm, global);
        let report = store.apply(&delta).expect("admissible");
        assert_eq!(report.shard, Some(owner), "routing survived recovery");
    }
    assert!(store.cps().expect("in budget"));
    let stats = store.stats();
    println!(
        "\nfinal audit: all {SHARDS} shards byte-identical to pre-crash, routing stable, \
         {} components / {} cells live ✓",
        stats.total.components, stats.total.cells
    );
    drop(store);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Two customers the plan places in different shards.
fn cross_shard_pair(store: &ShardedStore) -> Option<(u64, u64)> {
    let home = store.plan().shard_of(Eid(0));
    (1..CUSTOMERS)
        .find(|&c| store.plan().shard_of(Eid(c)) != home)
        .map(|c| (0, c))
}
