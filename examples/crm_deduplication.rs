//! Customer-360 staleness triage.
//!
//! A CRM has collected several records per customer from account signups,
//! support tickets and a legacy import.  Entity resolution has already
//! grouped the records; nothing carries a trustworthy timestamp.  The
//! data-currency machinery answers three operational questions:
//!
//! 1. which customers have a *certain* current email/tier (safe to mail)?
//! 2. which profile fields are provably current vs. genuinely ambiguous?
//! 3. does business semantics (loyalty tiers only upgrade; a cancelled
//!    account postdates an active one) pin down values that raw data
//!    leaves open?
//!
//! Run with: `cargo run --example crm_deduplication`

use data_currency::model::{
    Catalog, CmpOp, DenialConstraint, Eid, RelationSchema, Specification, Term, Tuple, Value,
};
use data_currency::query::{SpCondition, SpQuery};
use data_currency::reason::{certain_answers, dcip, poss_instance, Options};

const NAME: data_currency::model::AttrId = data_currency::model::AttrId(0);
const EMAIL: data_currency::model::AttrId = data_currency::model::AttrId(1);
const TIER: data_currency::model::AttrId = data_currency::model::AttrId(2);
const STATE: data_currency::model::AttrId = data_currency::model::AttrId(3);

fn record(eid: u64, name: &str, email: &str, tier: i64, state: &str) -> Tuple {
    Tuple::new(
        Eid(eid),
        vec![
            Value::str(name),
            Value::str(email),
            Value::int(tier),
            Value::str(state),
        ],
    )
}

fn main() {
    println!("== CRM deduplication: which profile fields are current? ==\n");
    let mut cat = Catalog::new();
    let cust = cat.add(RelationSchema::new(
        "Customer",
        &["name", "email", "tier", "state"],
    ));
    let mut spec = Specification::new(cat);
    {
        let inst = spec.instance_mut(cust);
        // Ada: three stale records across systems.
        inst.push_tuple(record(1, "Ada", "ada@uni.edu", 1, "active"))
            .unwrap();
        inst.push_tuple(record(1, "Ada", "ada@corp.com", 2, "active"))
            .unwrap();
        inst.push_tuple(record(1, "Ada", "ada@corp.com", 3, "active"))
            .unwrap();
        // Grace: two records; the cancelled one must be the latest state.
        inst.push_tuple(record(2, "Grace", "grace@mail.com", 2, "active"))
            .unwrap();
        inst.push_tuple(record(2, "Grace", "grace@mail.com", 2, "cancelled"))
            .unwrap();
        // Linus: two records that genuinely disagree about the email.
        inst.push_tuple(record(3, "Linus", "linus@a.org", 1, "active"))
            .unwrap();
        inst.push_tuple(record(3, "Linus", "linus@b.org", 1, "active"))
            .unwrap();
    }
    // Business semantics as denial constraints:
    // loyalty tiers only upgrade — a higher tier is more current (in every
    // attribute: a record with a newer tier is a newer record).
    for attr in [NAME, EMAIL, TIER, STATE] {
        let dc = DenialConstraint::builder(cust, 2)
            .when_cmp(Term::attr(0, TIER), CmpOp::Gt, Term::attr(1, TIER))
            .then_order(1, attr, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
    }
    // A cancelled account postdates an active one (state attribute).
    let cancelled = DenialConstraint::builder(cust, 2)
        .when_cmp(Term::attr(0, STATE), CmpOp::Eq, Term::val("cancelled"))
        .when_cmp(Term::attr(1, STATE), CmpOp::Eq, Term::val("active"))
        .then_order(1, STATE, 0)
        .build()
        .unwrap();
    spec.add_constraint(cancelled).unwrap();

    // 1. Certain current emails per customer.
    println!("certain current profile fields:");
    for (eid, who) in [(1u64, "Ada"), (2, "Grace"), (3, "Linus")] {
        let q = SpQuery {
            rel: cust,
            projection: vec![EMAIL, TIER, STATE],
            conditions: vec![SpCondition::AttrConst(NAME, Value::str(who))],
        }
        .to_query(4);
        let ans = certain_answers(&spec, &q, &Options::default()).unwrap();
        let rows = ans.rows().unwrap();
        if rows.is_empty() {
            println!("  {who:<6} (entity {eid}): NOT certain — do not auto-mail");
        } else {
            for r in rows {
                println!(
                    "  {who:<6} (entity {eid}): email={} tier={} state={}",
                    r[0], r[1], r[2]
                );
            }
        }
    }

    // 2. Is the whole current instance deterministic?
    let deterministic = dcip(&spec, cust, &Options::default()).unwrap();
    println!("\nwhole Customer relation deterministic: {deterministic}");
    assert!(!deterministic, "Linus' email is genuinely ambiguous");

    // 3. The poss(S) view (paper Prop 6.3) pinpoints the ambiguous cells —
    //    only meaningful without constraints, so inspect the raw data view.
    let mut unconstrained = spec.clone();
    // Rebuild without constraints to see what the *data alone* determines.
    unconstrained = {
        let mut cat = Catalog::new();
        let c2 = cat.add(RelationSchema::new(
            "Customer",
            &["name", "email", "tier", "state"],
        ));
        let mut s2 = Specification::new(cat);
        for (_id, t) in unconstrained.instance(cust).tuples() {
            s2.instance_mut(c2).push_tuple(t.clone()).unwrap();
        }
        s2
    };
    let poss = poss_instance(&unconstrained, cust).unwrap().unwrap();
    println!("\nposs(S) without business semantics (⟨fresh#…⟩ = ambiguous):");
    for t in poss.iter() {
        println!(
            "  entity {}: name={} email={} tier={} state={}",
            t.eid, t.values[0], t.values[1], t.values[2], t.values[3]
        );
    }
    println!(
        "\nThe tier-upgrade rule turned Ada's ambiguous cells into certain ones;\n\
         Linus needs human review (or a copy from a fresher source — see the\n\
         copy_design example)."
    );
}
