//! # data-currency
//!
//! A from-scratch implementation of the data-currency framework of
//!
//! > Wenfei Fan, Floris Geerts, Jef Wijsen.
//! > *Determining the Currency of Data.* PODS 2011 / ACM TODS 37(4), 2012.
//!
//! This facade crate re-exports the public API of the workspace crates so
//! that applications can depend on a single crate:
//!
//! * [`model`] (`currency-core`) — temporal instances, partial currency
//!   orders, denial constraints, copy functions, specifications.
//! * [`query`] (`currency-query`) — the SP ⊂ CQ ⊂ UCQ ⊂ ∃FO⁺ ⊂ FO query
//!   family and evaluators over normal instances.
//! * [`reason`] (`currency-reason`) — decision procedures for the paper's
//!   seven problems (CPS, COP, DCIP, CCQA, CPP, ECP, BCP), the
//!   entity-partitioned incremental `CurrencyEngine`, and the
//!   entity-sharded scatter-gather `ShardedEngine`.
//! * [`store`] (`currency-store`) — durability: checksummed snapshots, a
//!   delta write-ahead log, the crash-recoverable `DurableEngine`, the
//!   entity-sharded `ShardedStore` with parallel per-shard recovery, and
//!   the `Vfs` seam with the `ChaosVfs` fault-injection harness.
//! * [`serve`] (`currency-serve`) — concurrent query serving: epoch-published
//!   snapshot views, the `CurrencyServe` front door with an epoch-keyed
//!   answer cache, rate limiting, per-request solve deadlines, overload
//!   shedding, a per-shape circuit breaker with stale-serve degradation,
//!   lock-free serving stats, and the sharded `ShardedServe` front door.
//! * [`obs`] (`currency-obs`) — observability: lock-free counters,
//!   gauges, and log2-bucket histograms in a `MetricsRegistry` with
//!   Prometheus/JSON exposition, plus structured span/event tracing
//!   behind an attachable `Recorder`.
//! * [`sat`] (`currency-sat`) — the CDCL SAT solver substrate.
//! * [`datagen`] (`currency-datagen`) — paper scenarios, random
//!   specification generators, and hardness-reduction gadgets.
//!
//! See `README.md` for a guided tour and `examples/quickstart.rs` for the
//! paper's running example (Fig. 1, queries Q1–Q4).

pub use currency_core as model;
pub use currency_datagen as datagen;
pub use currency_obs as obs;
pub use currency_query as query;
pub use currency_reason as reason;
pub use currency_sat as sat;
pub use currency_serve as serve;
pub use currency_store as store;

/// Convenience prelude importing the most commonly used items.
///
/// Query-side names that collide with the model's (`CmpOp`, `Term`) are
/// re-exported under `Query*` aliases so that the model's constraint
/// builders work unqualified.
pub mod prelude {
    pub use currency_core::*;
    pub use currency_query::{CmpOp as QueryCmpOp, Formula, Query, QueryClass, Term as QueryTerm};
    pub use currency_reason::*;
    pub use currency_serve::{
        CurrencyServe, RateLimit, ServeAnswer, ServeError, ServeHandle, ServeOptions, ServeRequest,
        ServeStats,
    };
}
