//! Gadget validation: every hardness-reduction gadget must agree with a
//! brute-force oracle on random small instances.
//!
//! This is the deepest end-to-end check in the repository: it exercises
//! constraint grounding, the SAT encoding, completion semantics, copy
//! compatibility, query evaluation and the decision procedures all at
//! once, and ties them to the exact reductions used in the paper's
//! lower-bound proofs (DESIGN.md experiment G-VAL).

use data_currency::datagen::gadgets;
use data_currency::datagen::logic;
use data_currency::reason::{
    ccqa_exact, cop_exact, cpp, cps_exact, dcip_exact, Options, PreservationProblem,
};

#[test]
fn betweenness_to_cps_matches_oracle() {
    for seed in 0..12 {
        let n = 3 + (seed as usize % 2); // 3 or 4 elements
        let triples = 1 + (seed as usize % 3);
        let b = logic::random_betweenness(n, triples, seed);
        let expected = logic::betweenness_solvable(&b);
        let gadget = gadgets::cps_betweenness(&b);
        let got = cps_exact(&gadget.spec).expect("CPS solvable");
        assert_eq!(
            got, expected,
            "Betweenness→CPS mismatch (seed {seed}): {b:?}"
        );
    }
}

#[test]
fn exists_forall_3dnf_to_cps_matches_oracle() {
    for seed in 0..12 {
        let num_x = 1 + (seed as usize % 2);
        let num_y = 1 + (seed as usize % 2);
        let clauses = 1 + (seed as usize % 3);
        let f = logic::random_formula(num_x + num_y, clauses, 1000 + seed);
        let expected = logic::exists_forall_dnf(&f, num_x);
        let gadget = gadgets::cps_exists_forall_3dnf(&f, num_x);
        let got = cps_exact(&gadget.spec).expect("CPS solvable");
        assert_eq!(
            got, expected,
            "∃∀3DNF→CPS mismatch (seed {seed}, num_x {num_x}): {f:?}"
        );
    }
}

#[test]
fn threesat_to_cop_matches_oracle() {
    for seed in 0..12 {
        let vars = 2 + (seed as usize % 2);
        let clauses = 1 + (seed as usize % 4);
        let f = logic::random_formula(vars, clauses, 2000 + seed);
        let expected_unsat = !logic::sat_cnf(&f);
        let gadget = gadgets::cop_3sat(&f);
        let got = cop_exact(&gadget.spec, &gadget.ot).expect("COP solvable");
        assert_eq!(
            got, expected_unsat,
            "3SAT→COP mismatch (seed {seed}): {f:?}"
        );
    }
}

#[test]
fn threesat_to_dcip_matches_oracle() {
    for seed in 0..8 {
        let vars = 2 + (seed as usize % 2);
        let clauses = 1 + (seed as usize % 3);
        let f = logic::random_formula(vars, clauses, 3000 + seed);
        let expected_unsat = !logic::sat_cnf(&f);
        let gadget = gadgets::cop_3sat(&f);
        let got = dcip_exact(&gadget.spec, gadget.rel, &Options::default()).expect("DCIP solvable");
        assert_eq!(
            got, expected_unsat,
            "3SAT→DCIP mismatch (seed {seed}): {f:?}"
        );
    }
}

#[test]
fn threesat_to_ccqa_matches_oracle() {
    for seed in 0..12 {
        let vars = 2 + (seed as usize % 3);
        let clauses = 1 + (seed as usize % 4);
        let f = logic::random_formula(vars, clauses, 4000 + seed);
        let expected_unsat = !logic::sat_cnf(&f);
        let gadget = gadgets::ccqa_3sat(&f);
        let got = ccqa_exact(
            &gadget.spec,
            &gadget.query,
            &gadget.tuple,
            &Options::default(),
        )
        .expect("CCQA solvable");
        assert_eq!(
            got, expected_unsat,
            "3SAT→CCQA mismatch (seed {seed}): {f:?}"
        );
    }
}

#[test]
fn forall_exists_3cnf_to_cpp_matches_oracle() {
    for seed in 0..6 {
        let num_x = 1;
        let num_y = 1 + (seed as usize % 2);
        let clauses = 1 + (seed as usize % 2);
        let f = logic::random_formula(num_x + num_y, clauses, 5000 + seed);
        let expected = logic::forall_exists_cnf(&f, num_x);
        let gadget = gadgets::cpp_forall_exists_3cnf(&f, num_x);
        let problem = PreservationProblem {
            spec: &gadget.spec,
            sources: &gadget.sources,
            query: &gadget.query,
        };
        let got = cpp(&problem, &Options::default()).expect("CPP solvable");
        assert_eq!(got, expected, "∀∃3CNF→CPP mismatch (seed {seed}): {f:?}");
    }
}
