//! Concurrent differential stress test of the serving layer: **8 reader
//! threads race a writer** streaming deltas through [`CurrencyServe`],
//! and every answer any reader ever observes must equal what a fresh
//! single-threaded [`CurrencyEngine`] computes for the specification *at
//! the epoch the answer was pinned to*.
//!
//! The epoch discipline is what makes the oracle exact under racing: a
//! reader's answer is stamped with its pinned epoch, the writer retains
//! the specification it published at every epoch, and after the threads
//! join each recorded `(epoch, request, answer)` triple is replayed
//! against a reference engine built from the retained spec — torn reads,
//! stale caches, or scratch leaking across epochs would all surface as a
//! mismatch.
//!
//! A second test crashes a reader thread mid-stream and checks the
//! regression the snapshot layer promises: a dead (panicking) reader can
//! neither poison the published snapshot nor wedge the writer's publish
//! path, and the in-flight gauge unwinds cleanly.

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::{
    AttrId, CmpOp, DenialConstraint, Eid, RelId, SpecDelta, Specification, Term, Tuple, TupleId,
    Value,
};
use data_currency::query::{Query, SpQuery};
use data_currency::reason::{CurrencyEngine, CurrencyOrderQuery, Options};
use data_currency::serve::{CurrencyServe, ServeAnswer, ServeOptions, ServeRequest};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const T: RelId = RelId(0);
const READERS: usize = 8;
const SEEDS: usize = 8;
const DELTAS_PER_SEED: usize = 125; // × SEEDS = 1_000 deltas total

fn stress_config(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 3,
        tuples_per_entity: (1, 3),
        attrs: 2,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: 1,
        correlated_constraints: (seed % 2) as usize,
        with_copy: false,
        seed,
    }
}

fn value_query(arity: usize) -> Query {
    SpQuery::identity(T, arity).to_query(arity)
}

/// Draw one admissible delta against the current specification (the
/// engine_updates generator, minus copy extensions).
fn random_delta(spec: &Specification, rng: &mut SmallRng) -> SpecDelta {
    let inst = spec.instance(T);
    let arity = inst.arity();
    let live: Vec<TupleId> = inst.tuples().map(|(id, _)| id).collect();
    let mut delta = SpecDelta::new();
    match rng.gen_range(0..10u32) {
        0..=4 => {
            let eid = Eid(rng.gen_range(0..4u64));
            let values: Vec<Value> = (0..arity)
                .map(|_| Value::int(rng.gen_range(0..2)))
                .collect();
            delta.insert_tuple(T, Tuple::new(eid, values));
        }
        5..=6 if !live.is_empty() => {
            let victim = live[rng.gen_range(0..live.len())];
            delta.remove_tuple(T, victim);
        }
        7..=8 => {
            // An id-oriented same-entity order edge stays acyclic.
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let mut found = None;
            'outer: for (i, &u) in live.iter().enumerate() {
                for &v in &live[i + 1..] {
                    if inst.tuple(u).eid == inst.tuple(v).eid && !inst.order(attr).contains(u, v) {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            match found {
                Some((u, v)) => {
                    delta.add_order_edge(T, attr, u, v);
                }
                None => {
                    delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
                }
            }
        }
        _ => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let dc = DenialConstraint::builder(T, 2)
                .when_cmp(Term::attr(0, attr), CmpOp::Gt, Term::attr(1, attr))
                .then_order(1, attr, 0)
                .build()
                .expect("valid constraint");
            delta.add_constraint(dc);
        }
    }
    if delta.is_empty() {
        delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
    }
    delta
}

/// One answer as a reader observed it: the request, the epoch the reader
/// was pinned to, and what it got back.
type Observation = (u64, ServeRequest, ServeAnswer);

/// One reader thread: hammer the handle with a seeded query mix until the
/// writer finishes, then one final sweep so the terminal epoch is covered
/// too.
fn reader_loop(
    serve: &CurrencyServe,
    arity: usize,
    rng_seed: u64,
    done: &AtomicBool,
) -> Vec<Observation> {
    let mut handle = serve.handle();
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mut observed = Vec::new();
    let record = |handle: &mut data_currency::serve::ServeHandle,
                  observed: &mut Vec<Observation>,
                  req: ServeRequest| {
        let ans = handle.query(&req).expect("serve answers in budget");
        observed.push((handle.epoch(), req, ans));
    };
    let round = |handle: &mut data_currency::serve::ServeHandle,
                 observed: &mut Vec<Observation>,
                 rng: &mut SmallRng| {
        let req = match rng.gen_range(0..6u32) {
            0 => ServeRequest::Cps,
            1..=3 => ServeRequest::Cop(CurrencyOrderQuery::single(
                T,
                AttrId(rng.gen_range(0..arity) as u32),
                TupleId(rng.gen_range(0..12u32)),
                TupleId(rng.gen_range(0..12u32)),
            )),
            4 => ServeRequest::CertainAnswers(value_query(arity)),
            _ => ServeRequest::Dcip(T),
        };
        record(handle, observed, req);
    };
    while !done.load(Ordering::Relaxed) {
        round(&mut handle, &mut observed, &mut rng);
        // Let the writer make progress on small machines: the point is
        // racing, not starving the delta stream out of the schedule.
        std::thread::yield_now();
    }
    for _ in 0..4 {
        round(&mut handle, &mut observed, &mut rng);
    }
    observed
}

/// Replay every observation against a fresh engine at its pinned epoch.
///
/// Observations are deduplicated first: two readers recording the same
/// `(epoch, request)` must have recorded the same answer (anything else
/// is already a divergence), and each distinct pair needs only one
/// oracle replay.
fn verify(observations: Vec<Vec<Observation>>, specs: &HashMap<u64, Arc<Specification>>) {
    let mut seen: HashMap<(u64, ServeRequest), ServeAnswer> = HashMap::new();
    let mut by_epoch: HashMap<u64, Vec<(ServeRequest, ServeAnswer)>> = HashMap::new();
    let mut total = 0usize;
    for obs in observations {
        for (epoch, req, ans) in obs {
            total += 1;
            match seen.entry((epoch, req.clone())) {
                std::collections::hash_map::Entry::Occupied(prev) => {
                    assert_eq!(
                        prev.get(),
                        &ans,
                        "epoch {epoch}: readers disagree on {req:?}"
                    );
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(ans.clone());
                    by_epoch.entry(epoch).or_default().push((req, ans));
                }
            }
        }
    }
    assert!(total > 0, "readers observed nothing");
    for (epoch, entries) in by_epoch {
        let spec = specs
            .get(&epoch)
            .unwrap_or_else(|| panic!("reader pinned unpublished epoch {epoch}"));
        let reference =
            CurrencyEngine::new(spec, &Options::default()).expect("published specs are valid");
        for (req, ans) in entries {
            let expect = match &req {
                ServeRequest::Cps => ServeAnswer::Bool(reference.cps().unwrap()),
                ServeRequest::Cop(ot) => ServeAnswer::Bool(reference.cop(ot).unwrap()),
                ServeRequest::Dcip(rel) => ServeAnswer::Bool(reference.dcip(*rel).unwrap()),
                ServeRequest::CertainAnswers(q) => {
                    ServeAnswer::Answers(reference.certain_answers(q).unwrap())
                }
                ServeRequest::Ccqa(q, t) => ServeAnswer::Bool(reference.ccqa(q, t).unwrap()),
            };
            assert_eq!(
                ans, expect,
                "epoch {epoch}: concurrent answer diverged for {req:?}"
            );
        }
    }
}

#[test]
fn eight_readers_racing_a_writer_match_fresh_engines_at_every_epoch() {
    // Deterministic sample of the same 10k-seed space the sequential
    // differential sweeps draw from.
    let mut seed_rng = SmallRng::seed_from_u64(0x5EED_CAFE);
    for _ in 0..SEEDS {
        let seed = seed_rng.gen_range(0..10_000u64);
        let spec = random_spec(&stress_config(seed));
        let arity = spec.instance(T).arity();
        let serve = Arc::new(
            CurrencyServe::new(spec, &Options::default(), &ServeOptions::default()).unwrap(),
        );
        let specs: Arc<Mutex<HashMap<u64, Arc<Specification>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        specs
            .lock()
            .unwrap()
            .insert(serve.epoch(), serve.snapshot().spec_arc());
        let done = Arc::new(AtomicBool::new(false));

        let writer = {
            let serve = serve.clone();
            let specs = specs.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
                for _ in 0..DELTAS_PER_SEED {
                    let delta = {
                        let snap = serve.snapshot();
                        random_delta(snap.spec(), &mut rng)
                    };
                    let report = serve
                        .apply(&delta)
                        .expect("generated deltas are admissible");
                    specs
                        .lock()
                        .unwrap()
                        .insert(report.epoch, serve.snapshot().spec_arc());
                }
                done.store(true, Ordering::Relaxed);
            })
        };

        let readers: Vec<_> = (0..READERS)
            .map(|ix| {
                let serve = serve.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    reader_loop(&serve, arity, seed ^ (ix as u64) << 32, &done)
                })
            })
            .collect();

        writer.join().expect("writer thread survives");
        let observations: Vec<Vec<Observation>> = readers
            .into_iter()
            .map(|r| r.join().expect("reader thread survives"))
            .collect();

        let stats = serve.stats();
        assert_eq!(stats.inflight, 0, "in-flight gauge unwinds");
        assert_eq!(
            stats.epoch,
            *specs.lock().unwrap().keys().max().unwrap(),
            "final epoch retained"
        );
        verify(observations, &specs.lock().unwrap());
    }
}

#[test]
fn panicking_reader_cannot_poison_snapshots_or_wedge_the_writer() {
    let spec = random_spec(&stress_config(7));
    let arity = spec.instance(T).arity();
    let serve =
        Arc::new(CurrencyServe::new(spec, &Options::default(), &ServeOptions::default()).unwrap());

    // A reader warms its scratch and cache entries, then dies mid-stream.
    let crasher = {
        let serve = serve.clone();
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut handle = serve.handle();
                handle.cps().unwrap();
                handle
                    .cop(&CurrencyOrderQuery::single(
                        T,
                        AttrId(0),
                        TupleId(0),
                        TupleId(1),
                    ))
                    .unwrap();
                panic!("simulated reader crash");
            }));
            assert!(result.is_err());
        })
    };
    crasher.join().expect("crash was contained");

    // The writer's publish path is unharmed...
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..5 {
        let delta = {
            let snap = serve.snapshot();
            random_delta(snap.spec(), &mut rng)
        };
        serve.apply(&delta).expect("publish path not wedged");
    }
    // ...and surviving handles answer correctly against the new epoch.
    let mut handle = serve.handle();
    let snap = serve.snapshot();
    let reference = CurrencyEngine::new(snap.spec(), &Options::default()).unwrap();
    assert_eq!(handle.cps().unwrap(), reference.cps().unwrap());
    let q = value_query(arity);
    assert_eq!(
        handle.certain_answers(&q).unwrap(),
        reference.certain_answers(&q).unwrap()
    );
    assert_eq!(serve.stats().inflight, 0);
}
