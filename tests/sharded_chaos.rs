//! Chaos testing of the sharded durable store: shards are independent
//! failure domains.
//!
//! Two experiments, both built on [`ChaosVfs`]'s globally numbered
//! operation trace:
//!
//! * **Targeted** (`pinned_seed_sharded_chaos`, the CI anchor): a dry
//!   run locates the exact operation window of one entity-routed apply,
//!   then a second run injects a single I/O fault *inside that shard's
//!   WAL append*.  The failing shard must go fail-stop (every further
//!   delta routed to it refused as poisoned) while the **other shards
//!   keep accepting writes untouched**; recovery then lands the failing
//!   shard on a durable prefix and every other shard on its exact
//!   pre-crash state.
//! * **Random schedules** (proptest sweep): a seed-derived fault lands
//!   anywhere in the create + stream horizon; every failure must be a
//!   typed error, and a per-shard prefix-consistency argument bounds
//!   each recovered shard between its acknowledged prefix and at most
//!   one in-flight delta.
//!
//! Both use sequential recovery for the final reopen where determinism
//! matters; the parallel path is byte-compared against sequential in
//! `tests/sharded_recovery.rs`.

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::wire::encode_spec;
use data_currency::model::{AttrId, Eid, RelId, SpecDelta, Tuple, TupleId, Value};
use data_currency::reason::shard::{global_id, locate};
use data_currency::reason::Options;
use data_currency::store::{
    ChaosPlan, ChaosVfs, Fault, ShardedStore, ShardedStoreError, StoreError, StoreOptions,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const T: RelId = RelId(0);
const STREAM_LEN: usize = 8;
const SHARDS: usize = 4;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("currency-shchaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 3,
        tuples_per_entity: (1, 2),
        attrs: 1,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: (seed % 2) as usize,
        correlated_constraints: 0,
        with_copy: false,
        seed,
    }
}

fn live_globals(store: &ShardedStore, rel: RelId) -> Vec<(TupleId, Eid)> {
    let n = store.shards();
    let mut out = Vec::new();
    for k in 0..n {
        for (id, t) in store.shard(k).spec().instance(rel).tuples() {
            out.push((global_id(n, k, id), t.eid));
        }
    }
    out.sort();
    out
}

/// Draw one admissible delta in the global id space (same generator as
/// `tests/sharded_recovery.rs`).
fn random_global_delta(store: &ShardedStore, rng: &mut SmallRng) -> SpecDelta {
    let n = store.shards();
    let arity = store.shard(0).spec().instance(T).arity();
    let live = live_globals(store, T);
    let mut delta = SpecDelta::new();
    match rng.gen_range(0..10u32) {
        0..=4 => {
            let eid = Eid(rng.gen_range(0..3u64));
            let values: Vec<Value> = (0..arity)
                .map(|_| Value::int(rng.gen_range(0..2)))
                .collect();
            delta.insert_tuple(T, Tuple::new(eid, values));
        }
        5..=6 if !live.is_empty() => {
            let (victim, _) = live[rng.gen_range(0..live.len())];
            delta.remove_tuple(T, victim);
        }
        7..=8 => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let mut found = None;
            'outer: for (i, &(u, eu)) in live.iter().enumerate() {
                for &(v, ev) in &live[i + 1..] {
                    if eu != ev {
                        continue;
                    }
                    let (su, lu) = locate(n, u);
                    let (_, lv) = locate(n, v);
                    let inst = store.shard(su).spec().instance(T);
                    if !inst.order(attr).contains(lu, lv) {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            if let Some((u, v)) = found {
                delta.add_order_edge(T, attr, u, v);
            } else {
                delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
            }
        }
        _ => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let dc = data_currency::model::DenialConstraint::builder(T, 2)
                .when_cmp(
                    data_currency::model::Term::attr(0, attr),
                    data_currency::model::CmpOp::Gt,
                    data_currency::model::Term::attr(1, attr),
                )
                .then_order(1, attr, 0)
                .build()
                .expect("valid constraint");
            delta.add_constraint(dc);
        }
    }
    if delta.is_empty() {
        delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
    }
    delta
}

/// What the fault-free dry run learned about the workload.
struct DryRun {
    /// The delta stream (reused verbatim by the chaos run).
    deltas: Vec<SpecDelta>,
    /// Shards each delta touched (singleton for entity deltas, all for
    /// broadcasts) — from the apply reports.
    touched: Vec<Vec<usize>>,
    /// Operation window `[start, end)` of each apply.
    windows: Vec<(u64, u64)>,
    /// `hist[k][j]` = shard `k`'s encoding after `j` deltas touched it
    /// (`hist[k][0]` = post-create).
    hist: Vec<Vec<Vec<u8>>>,
    /// Total operations issued (the fault horizon).
    horizon: u64,
    /// The trace, for aiming targeted faults.
    trace: Vec<(u64, &'static str)>,
}

/// Run create + stream fault-free, recording the stream, per-delta op
/// windows, routing, and per-shard state history.
fn dry_run(seed: u64, dir: &Path, opts: &Options, store_opts: StoreOptions) -> DryRun {
    let probe = Arc::new(ChaosVfs::new(ChaosPlan::new()));
    let spec = random_spec(&config(seed));
    let mut store =
        ShardedStore::create_with_vfs(probe.clone(), dir, &spec, SHARDS, opts, store_opts)
            .expect("fault-free create");
    let mut hist: Vec<Vec<Vec<u8>>> = (0..SHARDS)
        .map(|k| vec![encode_spec(store.shard(k).spec())])
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    let mut deltas = Vec::new();
    let mut touched = Vec::new();
    let mut windows = Vec::new();
    for _ in 0..STREAM_LEN {
        let delta = random_global_delta(&store, &mut rng);
        let start = probe.ops();
        let report = store.apply(&delta).expect("fault-free apply");
        let end = probe.ops();
        let shards: Vec<usize> = match report.shard {
            Some(s) => vec![s],
            None if report.broadcast => (0..SHARDS).collect(),
            None => Vec::new(),
        };
        for &k in &shards {
            hist[k].push(encode_spec(store.shard(k).spec()));
        }
        deltas.push(delta);
        touched.push(shards);
        windows.push((start, end));
    }
    drop(store);
    DryRun {
        deltas,
        touched,
        windows,
        hist,
        horizon: probe.ops(),
        trace: probe.trace(),
    }
}

/// The targeted experiment: one `Fault::Io` on a WAL `write_all` inside
/// one entity-routed apply.  Deterministic for a given seed.
fn targeted_round(seed: u64) {
    let opts = Options::default();
    let store_opts = StoreOptions::default();
    let dry_dir = tmpdir(&format!("dry-{seed}"));
    let dry = dry_run(seed, &dry_dir, &opts, store_opts);

    // Pick the first entity-routed delta and the first write inside its
    // operation window: that is a WAL append on exactly one shard.
    let (victim_idx, victim_shard) = dry
        .touched
        .iter()
        .enumerate()
        .find_map(|(i, t)| (t.len() == 1).then(|| (i, t[0])))
        .expect("a seeded stream always contains entity-routed deltas");
    let (start, end) = dry.windows[victim_idx];
    let target = dry
        .trace
        .iter()
        .find(|(op, kind)| *op >= start && *op < end && *kind == "write_all")
        .map(|(op, _)| *op)
        .expect("an apply always writes its WAL record");

    // Chaos run: same workload, one injected write failure.  A shadow
    // store on the real filesystem mirrors every *acknowledged* apply.
    let chaos_dir = tmpdir(&format!("run-{seed}"));
    let shadow_dir = tmpdir(&format!("shadow-{seed}"));
    let vfs = Arc::new(ChaosVfs::new(ChaosPlan::new().fail_at(target, Fault::Io)));
    let spec = random_spec(&config(seed));
    let mut store =
        ShardedStore::create_with_vfs(vfs.clone(), &chaos_dir, &spec, SHARDS, &opts, store_opts)
            .expect("create precedes the fault");
    let mut shadow =
        ShardedStore::create(&shadow_dir, &spec, SHARDS, &opts, store_opts).expect("shadow");
    for (i, delta) in dry.deltas.iter().enumerate() {
        match store.apply(delta) {
            Ok(_) => {
                assert!(i != victim_idx, "targeted apply must fail (seed {seed})");
                shadow.apply(delta).expect("shadow mirrors acked applies");
            }
            Err(ShardedStoreError::Shard { shard, .. }) => {
                assert_eq!(i, victim_idx, "fault hit the wrong apply (seed {seed})");
                assert_eq!(
                    shard, victim_shard,
                    "fault hit the wrong shard (seed {seed})"
                );
                break;
            }
            Err(e) => panic!("unexpected failure shape (seed {seed}): {e}"),
        }
    }
    assert_eq!(vfs.injected(), 1, "exactly one fault lands (seed {seed})");

    // The failing shard is fail-stop: a delta routed to it is refused…
    let arity = shadow.shard(0).spec().instance(T).arity();
    let on_shard = |s: usize| {
        live_globals(&shadow, T)
            .into_iter()
            .find(|&(g, _)| locate(SHARDS, g).0 == s)
            .map(|(_, eid)| eid)
    };
    if let Some(eid) = on_shard(victim_shard) {
        let mut probe = SpecDelta::new();
        probe.insert_tuple(T, Tuple::new(eid, vec![Value::int(0); arity]));
        match store.apply(&probe) {
            Err(ShardedStoreError::Shard { shard, source }) => {
                assert_eq!(shard, victim_shard);
                assert!(
                    matches!(source, StoreError::Poisoned { .. }),
                    "failing shard must be poisoned, got {source}"
                );
            }
            other => panic!("poisoned shard accepted a delta: {:?}", other.map(|_| ())),
        }
    }
    // …while every other shard keeps accepting writes.
    let other = (0..SHARDS).find(|&s| s != victim_shard && on_shard(s).is_some());
    if let Some(s) = other {
        let eid = on_shard(s).unwrap();
        let mut probe = SpecDelta::new();
        probe.insert_tuple(T, Tuple::new(eid, vec![Value::int(1); arity]));
        let report = store.apply(&probe).expect("healthy shards keep serving");
        assert_eq!(report.shard, Some(s));
        shadow.apply(&probe).expect("shadow mirrors");
    }
    drop(store); // crash

    // Recovery: healthy shards land exactly on their acknowledged
    // state; the failing shard lands on a durable prefix — without the
    // faulted record (Fault::Io writes nothing) or, at most, with it.
    let recovered = ShardedStore::open_sequential(&chaos_dir, &opts, store_opts)
        .expect("all shards recover; the faulted WAL has a clean tail");
    let before = encode_spec(shadow.shard(victim_shard).spec());
    shadow
        .apply(&dry.deltas[victim_idx])
        .expect("the failed delta is still admissible against its prefix");
    let after = encode_spec(shadow.shard(victim_shard).spec());
    for k in 0..SHARDS {
        let got = encode_spec(recovered.shard(k).spec());
        if k == victim_shard {
            assert!(
                got == before || got == after,
                "failing shard recovered outside its durable prefix (seed {seed})"
            );
        } else {
            assert_eq!(
                got,
                encode_spec(shadow.shard(k).spec()),
                "fault leaked into shard {k} (seed {seed})"
            );
        }
    }

    for d in [&dry_dir, &chaos_dir, &shadow_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// The random-schedule experiment: one seed-derived fault anywhere in
/// the create + stream horizon; per-shard prefix consistency on reopen.
fn random_schedule_round(seed: u64) {
    let opts = Options::default();
    let store_opts = StoreOptions::default();
    let dry_dir = tmpdir(&format!("rdry-{seed}"));
    let dry = dry_run(seed, &dry_dir, &opts, store_opts);

    let chaos_dir = tmpdir(&format!("rrun-{seed}"));
    let vfs = Arc::new(ChaosVfs::new(ChaosPlan::from_seed(seed, dry.horizon, 1)));
    let spec = random_spec(&config(seed));
    // How many touching deltas each shard acknowledged, and which
    // shards the failing delta touched.
    let mut acked = [0usize; SHARDS];
    let mut in_flight: Vec<usize> = Vec::new();
    let created =
        ShardedStore::create_with_vfs(vfs.clone(), &chaos_dir, &spec, SHARDS, &opts, store_opts);
    match created {
        Err(e) => {
            assert!(!format!("{e}").is_empty(), "typed create failure");
            assert!(vfs.injected() > 0, "create only fails under a fault");
            // A crash mid-create either refuses to open (no meta) or —
            // when only the meta sync failed — opens at the initial
            // state on every shard.
            if let Ok(rec) = ShardedStore::open_sequential(&chaos_dir, &opts, store_opts) {
                for k in 0..SHARDS {
                    assert_eq!(
                        encode_spec(rec.shard(k).spec()),
                        dry.hist[k][0],
                        "partial create leaked state (seed {seed}, shard {k})"
                    );
                }
            }
        }
        Ok(mut store) => {
            for (i, delta) in dry.deltas.iter().enumerate() {
                match store.apply(delta) {
                    Ok(_) => {
                        for &k in &dry.touched[i] {
                            acked[k] += 1;
                        }
                    }
                    Err(e) => {
                        assert!(!format!("{e}").is_empty(), "typed apply failure");
                        assert!(vfs.injected() > 0, "applies only fail under a fault");
                        in_flight = dry.touched[i].clone();
                        // Fail-stop: the same delta is refused on retry
                        // (the failing shard is poisoned).
                        assert!(
                            store.apply(delta).is_err(),
                            "post-fault retry must be refused (seed {seed}, step {i})"
                        );
                        break;
                    }
                }
            }
            drop(store); // crash
            match ShardedStore::open_sequential(&chaos_dir, &opts, store_opts) {
                Ok(rec) => {
                    for (k, &ack) in acked.iter().enumerate() {
                        let got = encode_spec(rec.shard(k).spec());
                        let exact = &dry.hist[k][ack];
                        let ok = if in_flight.contains(&k) {
                            // The failing record may or may not have
                            // become durable — never more than one.
                            got == *exact
                                || dry.hist[k].get(ack + 1).is_some_and(|next| got == *next)
                        } else {
                            got == *exact
                        };
                        assert!(
                            ok,
                            "shard {k} recovered outside its durable prefix (seed {seed})"
                        );
                    }
                }
                Err(e) => {
                    assert!(!format!("{e}").is_empty(), "typed reopen failure");
                    assert!(
                        vfs.injected() > 0,
                        "reopen of an unfaulted store must succeed (seed {seed}): {e}"
                    );
                }
            }
        }
    }

    for d in [&dry_dir, &chaos_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    // Randomized single-fault schedules across the 10k-seed space.
    #[test]
    fn seeded_fault_schedules_keep_shards_independent(seed in 0u64..10_000) {
        random_schedule_round(seed);
    }
}

/// The CI anchor: a pinned seed (overridable via `CHAOS_SEED`) drives
/// the targeted one-fault-in-one-shard's-WAL experiment, byte-for-byte
/// reproducible across runs and machines.
#[test]
fn pinned_seed_sharded_chaos() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_808u64);
    targeted_round(seed);
    targeted_round(seed.wrapping_add(1));
}
