//! End-to-end checks of the observability layer: the Prometheus text
//! every front door renders must parse line-by-line as valid exposition
//! — under concurrent load, since scrapes happen while queries solve
//! and the writer publishes — and the series the layers promise
//! (serve latency buckets, engine apply phase timings, WAL flush
//! timings, per-shard cache hit rates, recovery progress) must actually
//! be there with non-trivial values.

use data_currency::model::{
    AttrId, Catalog, CmpOp, DenialConstraint, Eid, RelId, RelationSchema, SpecDelta, Specification,
    Term, Tuple, TupleId, Value,
};
use data_currency::obs::{MetricsSnapshot, RingRecorder, SeriesValue, TraceKind};
use data_currency::reason::CurrencyOrderQuery;
use data_currency::reason::Options;
use data_currency::serve::{CurrencyServe, ServeOptions, ServeRequest, ShardedServe};
use data_currency::store::{DurableEngine, StoreOptions};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const A: AttrId = AttrId(0);

fn spec(entities: u64) -> (Specification, RelId) {
    let mut cat = Catalog::new();
    let r = cat.add(RelationSchema::new("R", &["A"]));
    let mut spec = Specification::new(cat);
    for e in 0..entities {
        for v in [10, 20] {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(e), vec![Value::int(v + e as i64)]))
                .unwrap();
        }
    }
    let monotone = DenialConstraint::builder(r, 2)
        .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
        .then_order(1, A, 0)
        .build()
        .unwrap();
    spec.add_constraint(monotone).unwrap();
    (spec, r)
}

fn insert(r: RelId, e: u64, v: i64) -> SpecDelta {
    let mut d = SpecDelta::new();
    d.insert_tuple(r, Tuple::new(Eid(e), vec![Value::int(v)]));
    d
}

/// Parse `text` line by line as Prometheus text exposition: every
/// non-comment line must be `name[{k="v",...}] value`, every sample's
/// family must have been declared by a `# TYPE` line, and histogram
/// `le` buckets must be cumulative.
fn assert_prometheus_grammar(text: &str) {
    let mut typed: HashMap<String, String> = HashMap::new();
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap();
            assert!(!name.is_empty(), "HELP without a name: {line}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap().to_string();
            let kind = it.next().expect("TYPE without a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE kind: {line}"
            );
            typed.insert(name, kind.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line}");
        let (series, value) = line.rsplit_once(' ').expect("sample without a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value: {line}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name: {name}"
        );
        let labels = &series[name.len()..];
        if !labels.is_empty() {
            assert!(
                labels.starts_with('{') && labels.ends_with('}'),
                "malformed label block: {line}"
            );
            for pair in labels[1..labels.len() - 1].split(',') {
                let (k, v) = pair.split_once('=').expect("label without =");
                assert!(!k.is_empty(), "empty label key: {line}");
                assert!(
                    v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                    "unquoted label value: {line}"
                );
            }
        }
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| typed.contains_key(*base))
            .unwrap_or(name);
        assert!(
            typed.contains_key(base),
            "sample {name} has no preceding TYPE"
        );
        samples += 1;
    }
    assert!(samples > 0, "exposition rendered no samples");
}

#[test]
fn serve_metrics_text_is_valid_prometheus_under_concurrent_load() {
    let (spec, r) = spec(3);
    let serve = CurrencyServe::new(spec, &Options::default(), &ServeOptions::default()).unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..4 {
            let mut h = serve.handle();
            let stop = &stop;
            s.spawn(move || {
                let mut k = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let pair = (t + k) % 2;
                    let _ = h.cps();
                    let _ = h.cop(&CurrencyOrderQuery::single(
                        r,
                        A,
                        TupleId(pair),
                        TupleId(pair + 1),
                    ));
                    k = k.wrapping_add(1);
                }
            });
        }
        // The scraper races the readers and the writer: every
        // intermediate exposition must already be grammatical.
        let scraper = {
            let serve = &serve;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    assert_prometheus_grammar(&serve.metrics_text());
                }
            })
        };
        for step in 0..30 {
            serve
                .apply(&insert(r, step % 3, 100 + step as i64))
                .unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        scraper.join().unwrap();
    });
    let text = serve.handle().metrics_text();
    assert_prometheus_grammar(&text);
    // The promised series, with real content behind them.
    assert!(
        text.contains("currency_serve_latency_ns_bucket{query_kind=\"cps\",le="),
        "serve latency histogram buckets missing:\n{text}"
    );
    assert!(
        text.contains("currency_engine_apply_ns_bucket"),
        "writer engine apply timings missing"
    );
    assert!(
        text.contains("currency_engine_apply_refresh_ns"),
        "apply phase (refresh) timings missing"
    );
    assert!(
        text.contains("currency_serve_cache_hits_total{shard=\"0\"}"),
        "cache hit counter missing"
    );
    let snap = serve.metrics().snapshot();
    match snap.find("currency_serve_latency_ns", &[("query_kind", "cps")]) {
        Some(SeriesValue::Histogram(h)) => assert!(h.count() > 0, "no cps latencies recorded"),
        other => panic!("cps latency series missing: {other:?}"),
    }
    match snap.find("currency_engine_apply_ns", &[]) {
        Some(SeriesValue::Histogram(h)) => {
            assert!(h.count() >= 30, "one apply sample per delta")
        }
        other => panic!("apply histogram missing: {other:?}"),
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("currency-obs-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn durable_store_exposes_wal_timings_and_recovery_progress() {
    let dir = tmpdir("durable");
    let (spec, r) = spec(3);
    let opts = Options::default();
    let store_opts = StoreOptions {
        sync_data: false,
        ..StoreOptions::default()
    };
    let mut durable = DurableEngine::create(&dir, spec, &opts, store_opts).unwrap();
    for step in 0..6 {
        durable
            .apply(&insert(r, step % 3, 100 + step as i64))
            .unwrap();
    }
    durable.flush().unwrap();
    let text = durable.metrics_text();
    assert_prometheus_grammar(&text);
    assert!(
        text.contains("currency_wal_flush_ns_bucket"),
        "WAL flush timings missing:\n{text}"
    );
    let snap = durable.metrics().snapshot();
    match snap.find("currency_wal_append_ns", &[]) {
        Some(SeriesValue::Histogram(h)) => assert!(h.count() >= 6, "one append per delta"),
        other => panic!("WAL append histogram missing: {other:?}"),
    }
    match snap.find("currency_wal_flushes_total", &[]) {
        Some(SeriesValue::Counter(n)) => assert!(*n >= 1, "explicit flush must be counted"),
        other => panic!("WAL flush counter missing: {other:?}"),
    }
    drop(durable);

    // Reopen: the recovery gauges report the replay target and progress.
    let recovered = DurableEngine::open(&dir, &opts, store_opts).unwrap();
    let snap = recovered.metrics().snapshot();
    match snap.find("currency_recovery_records_total", &[]) {
        Some(SeriesValue::Gauge(n)) => assert_eq!(*n, 6),
        other => panic!("recovery total gauge missing: {other:?}"),
    }
    match snap.find("currency_recovery_records_replayed", &[]) {
        Some(SeriesValue::Gauge(n)) => assert_eq!(*n, 6, "replay ran to completion"),
        other => panic!("recovery progress gauge missing: {other:?}"),
    }

    // One exposition for a mixed stack: serve + store snapshots merge.
    let (sspec, _) = spec_pair();
    let serve = CurrencyServe::new(sspec, &opts, &ServeOptions::default()).unwrap();
    let mut h = serve.handle();
    h.cps().unwrap();
    let mut merged = MetricsSnapshot::default();
    merged.merge(&serve.metrics().snapshot());
    merged.merge(&recovered.metrics().snapshot());
    let text = merged.render_prometheus();
    assert_prometheus_grammar(&text);
    assert!(text.contains("currency_serve_latency_ns_bucket"));
    assert!(text.contains("currency_wal_flush_ns_bucket"));
}

fn spec_pair() -> (Specification, RelId) {
    spec(2)
}

#[test]
fn sharded_serve_merges_per_shard_cache_series() {
    let (spec, r) = spec(4);
    let sharded =
        ShardedServe::new(&spec, 2, &Options::default(), &ServeOptions::default()).unwrap();
    let mut h = sharded.handle();
    assert!(h.cps().unwrap());
    assert!(h.cps().unwrap()); // second round: per-shard cache hits
    let _ = r;
    let text = sharded.metrics_text();
    assert_prometheus_grammar(&text);
    for shard in ["0", "1"] {
        assert!(
            text.contains(&format!(
                "currency_serve_cache_hits_total{{shard=\"{shard}\"}}"
            )),
            "shard {shard} cache hit series missing:\n{text}"
        );
    }
    let snap = sharded.metrics_snapshot();
    for shard in ["0", "1"] {
        match snap.find("currency_serve_cache_hits_total", &[("shard", shard)]) {
            Some(SeriesValue::Counter(n)) => assert!(*n >= 1, "shard {shard} saw no hits"),
            other => panic!("shard {shard} hit counter missing: {other:?}"),
        }
    }
    // The deprecated aggregate fields stay populated alongside.
    let stats = sharded.stats();
    assert!(stats.total.queries >= 4);
    assert!(stats.total.latency_ns_total > 0);
}

#[test]
fn slow_query_log_retains_shape_epoch_and_spend() {
    let (spec, r) = spec(2);
    let opts = ServeOptions {
        slow_query_threshold: Some(Duration::ZERO), // retain everything
        slow_query_capacity: 4,
        breaker_threshold: 0,
        ..ServeOptions::default()
    };
    let serve = CurrencyServe::new(spec, &Options::default(), &opts).unwrap();
    let mut h = serve.handle();
    let req = ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)));
    h.query(&req).unwrap();
    // A zero-budget solve is interrupted and logs its work ledger.
    let fresh = ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(2), TupleId(3)));
    let _ = h.query_within(&fresh, Some(Duration::ZERO));
    let slow = serve.slow_queries();
    assert_eq!(slow.len(), 2);
    assert_eq!(slow[0].request, req);
    assert_eq!(slow[0].epoch, serve.epoch());
    assert!(slow[0].spent.is_none(), "completed query has no ledger");
    assert_eq!(slow[1].request, fresh);
    assert!(slow[1].spent.is_some(), "interrupted query keeps its spend");
    // Capacity bounds the ring: oldest entries fall off.
    for _ in 0..8 {
        let _ = h.query_within(&fresh, Some(Duration::ZERO));
    }
    assert!(serve.slow_queries().len() <= 4);
}

#[test]
fn breaker_transitions_and_stale_serves_emit_trace_events() {
    let (spec, r) = spec(2);
    let opts = ServeOptions {
        breaker_threshold: 1,
        breaker_backoff: Duration::from_millis(1),
        breaker_max_backoff: Duration::from_millis(8),
        ..ServeOptions::default()
    };
    let serve = CurrencyServe::new(spec, &Options::default(), &opts).unwrap();
    let recorder = RingRecorder::new(1024);
    serve.set_recorder(recorder.clone());
    let mut h = serve.handle();
    let req = ServeRequest::Cop(CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)));
    // Warm the cache, go stale, then trip the breaker with a zero
    // budget: the timeout degrades to the stale answer AND opens the
    // breaker (threshold 1).
    assert!(h.query(&req).unwrap().as_bool().unwrap());
    serve.apply(&insert(r, 0, 99)).unwrap();
    assert!(h
        .query_within(&req, Some(Duration::ZERO))
        .unwrap()
        .is_stale());
    // Backoff elapses; the next request is the half-open probe and its
    // success closes the breaker.
    std::thread::sleep(Duration::from_millis(5));
    assert!(h.query_within(&req, None).unwrap().as_bool().unwrap());
    let events = recorder.drain();
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Event)
        .map(|e| e.name)
        .collect();
    for expected in [
        "breaker.open",
        "serve.stale",
        "breaker.half_open",
        "breaker.closed",
    ] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    let stale = events
        .iter()
        .find(|e| e.name == "serve.stale")
        .expect("stale event");
    assert_eq!(stale.value, 1, "one epoch behind");
    // The writer's apply published through the same recorder: spans and
    // the publish event are in the stream too.
    assert!(
        events.iter().any(|e| e.name == "snapshot.publish"),
        "writer publish event missing"
    );
}
