//! Differential testing of the **live** [`CurrencyEngine`]: after every
//! applied delta, the incrementally updated engine must agree with a
//! freshly built engine *and* the brute-force completion-enumeration
//! oracle on the post-delta specification — verdicts (CPS), certain
//! orders (COP over every pair), certain answers, and realizable
//! current-instance counts.
//!
//! Update streams are seeded: each step draws one operation (tuple
//! insert, tuple removal, order edge, new constraint, or copy extension
//! with a mirrored source tuple) from the same generator space the other
//! differential sweeps use.  Order edges are oriented by tuple id, so
//! initial orders stay acyclic by construction and every generated delta
//! is admissible.

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::{AttrId, Eid, RelId, SpecDelta, Specification, Tuple, TupleId, Value};
use data_currency::query::{Database, Query, SpQuery};
use data_currency::reason::{
    enumerate::for_each_consistent_completion, CertainAnswers, CurrencyEngine, CurrencyOrderQuery,
    Options,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const T: RelId = RelId(0);
const SRC: RelId = RelId(1);
const ORACLE_BUDGET: usize = 2_000_000;

/// Small shapes so the factorial-cost oracle stays in budget even after
/// a few inserts.
fn config(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 2,
        tuples_per_entity: (1, 2),
        attrs: 1,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: (seed % 2) as usize,
        correlated_constraints: 0,
        with_copy: seed.is_multiple_of(2),
        seed,
    }
}

/// Larger shapes for the engine-vs-fresh sweep (no oracle).
fn wide_config(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 3,
        tuples_per_entity: (1, 3),
        attrs: 2,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: 1,
        correlated_constraints: (seed % 2) as usize,
        with_copy: true,
        seed,
    }
}

fn value_query(rel: RelId, arity: usize) -> Query {
    SpQuery::identity(rel, arity).to_query(arity)
}

/// Draw one admissible delta against the current specification.
fn random_delta(spec: &Specification, rng: &mut SmallRng) -> SpecDelta {
    let inst = spec.instance(T);
    let arity = inst.arity();
    let live: Vec<TupleId> = inst.tuples().map(|(id, _)| id).collect();
    let mut delta = SpecDelta::new();
    let pick = rng.gen_range(0..10u32);
    match pick {
        // Insert a fresh reading (possibly for a brand-new entity).
        0..=3 => {
            let eid = Eid(rng.gen_range(0..3u64));
            let values: Vec<Value> = (0..arity)
                .map(|_| Value::int(rng.gen_range(0..2)))
                .collect();
            delta.insert_tuple(T, Tuple::new(eid, values));
        }
        // Retract a reading.
        4..=5 if !live.is_empty() => {
            let victim = live[rng.gen_range(0..live.len())];
            delta.remove_tuple(T, victim);
        }
        // Learn an initial-order fact (id-oriented, hence acyclic).
        6..=7 => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let mut found = None;
            'outer: for (i, &u) in live.iter().enumerate() {
                for &v in &live[i + 1..] {
                    if inst.tuple(u).eid == inst.tuple(v).eid && !inst.order(attr).contains(u, v) {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            if let Some((u, v)) = found {
                delta.add_order_edge(T, attr, u, v);
            } else {
                delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
            }
        }
        // Learn a new currency constraint.
        8 => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let dc = data_currency::model::DenialConstraint::builder(T, 2)
                .when_cmp(
                    data_currency::model::Term::attr(0, attr),
                    data_currency::model::CmpOp::Gt,
                    data_currency::model::Term::attr(1, attr),
                )
                .then_order(1, attr, 0)
                .build()
                .expect("valid constraint");
            delta.add_constraint(dc);
        }
        // Extend the copy function: mirror a target tuple into the source
        // (same values, shifted entity — the generator's own convention)
        // and record the mapping; both ops ride in one delta.
        _ => {
            let unmapped = live
                .iter()
                .copied()
                .find(|&t| spec.copies().len() == 1 && spec.copies()[0].mapping(t).is_none());
            if let Some(target) = unmapped {
                let t = inst.tuple(target).clone();
                let source_id = TupleId(spec.instance(SRC).len() as u32);
                delta
                    .insert_tuple(SRC, Tuple::new(Eid(t.eid.0 + 100), t.values.clone()))
                    .extend_copy(0, target, source_id);
            } else {
                delta.insert_tuple(T, Tuple::new(Eid(1), vec![Value::int(1); arity]));
            }
        }
    }
    if delta.is_empty() {
        // Retraction drawn against an empty relation: insert instead.
        delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
    }
    delta
}

/// Certain answers via the brute-force completion enumerator; `None` if
/// the candidate space exceeds the budget.
fn certain_by_enumeration(spec: &Specification, query: &Query) -> Option<CertainAnswers> {
    let mut acc: Option<BTreeSet<Vec<Value>>> = None;
    let count = for_each_consistent_completion(spec, ORACLE_BUDGET, |completion| {
        let dbs = data_currency::model::lst(spec, completion);
        let db = Database::new(&dbs);
        let answers: BTreeSet<Vec<Value>> = query.eval(&db).into_iter().collect();
        acc = Some(match acc.take() {
            None => answers,
            Some(prev) => prev.intersection(&answers).cloned().collect(),
        });
        true
    })
    .ok()?;
    Some(if count == 0 {
        CertainAnswers::Inconsistent
    } else {
        CertainAnswers::Answers(acc.unwrap_or_default().into_iter().collect())
    })
}

/// CPS via the oracle; `None` if out of budget.
fn cps_by_enumeration(spec: &Specification) -> Option<bool> {
    let mut found = false;
    for_each_consistent_completion(spec, ORACLE_BUDGET, |_| {
        found = true;
        false
    })
    .ok()?;
    Some(found)
}

/// Assert the updated engine, a fresh engine, and (when affordable) the
/// oracle agree on everything for the engine's current specification.
fn assert_agreement(engine: &CurrencyEngine<'_>, with_oracle: bool, seed: u64, step: usize) {
    let spec = engine.spec();
    let fresh = CurrencyEngine::new(spec, &Options::default()).expect("valid updated spec");
    // CPS.
    let cps = engine.cps().expect("in budget");
    assert_eq!(cps, fresh.cps().unwrap(), "CPS seed {seed} step {step}");
    if with_oracle {
        if let Some(oracle) = cps_by_enumeration(spec) {
            assert_eq!(cps, oracle, "CPS oracle seed {seed} step {step}");
        }
    }
    // COP over every pair of the target relation.
    let inst = spec.instance(T);
    for a in 0..inst.arity() {
        let attr = AttrId(a as u32);
        for u in 0..inst.len() as u32 {
            for v in 0..inst.len() as u32 {
                let q = CurrencyOrderQuery::single(T, attr, TupleId(u), TupleId(v));
                assert_eq!(
                    engine.cop(&q).unwrap(),
                    fresh.cop(&q).unwrap(),
                    "COP seed {seed} step {step} attr {attr:?} {u} ≺ {v}"
                );
            }
        }
    }
    // Certain answers and model counts.
    let q = value_query(T, inst.arity());
    let engine_answers = engine.certain_answers(&q).expect("in budget");
    assert_eq!(
        engine_answers,
        fresh.certain_answers(&q).unwrap(),
        "answers seed {seed} step {step}"
    );
    if with_oracle {
        if let Some(oracle) = certain_by_enumeration(spec, &q) {
            assert_eq!(
                engine_answers, oracle,
                "answers oracle seed {seed} step {step}"
            );
        }
    }
    assert_eq!(
        engine.current_instances(T).unwrap().len(),
        fresh.current_instances(T).unwrap().len(),
        "model count seed {seed} step {step}"
    );
}

/// A churn-biased delta: prefer retractions (every one leaves a tombstone
/// slot) so compaction has something to reclaim; fall back to the general
/// generator otherwise.
fn random_churn_delta(spec: &Specification, rng: &mut SmallRng) -> SpecDelta {
    let live: Vec<TupleId> = spec.instance(T).tuples().map(|(id, _)| id).collect();
    if live.len() > 1 && rng.gen_range(0..2u32) == 0 {
        let victim = live[rng.gen_range(0..live.len())];
        let mut delta = SpecDelta::new();
        delta.remove_tuple(T, victim);
        return delta;
    }
    random_delta(spec, rng)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn update_stream_agrees_with_fresh_engine_and_oracle(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed));
        let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        for step in 0..4usize {
            let delta = random_delta(engine.spec(), &mut rng);
            let report = engine.apply(&delta).expect("generated deltas are admissible");
            prop_assert!(report.components_rebuilt + report.components_reused >= 1);
            assert_agreement(&engine, true, seed, step);
        }
        prop_assert_eq!(engine.stats().updates_applied, 4);
    }

    #[test]
    fn update_stream_agrees_on_wider_specs(seed in 0u64..10_000) {
        let spec = random_spec(&wide_config(seed));
        let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xC2B2_AE35));
        for step in 0..4usize {
            let delta = random_delta(engine.spec(), &mut rng);
            engine.apply(&delta).expect("generated deltas are admissible");
            assert_agreement(&engine, false, seed, step);
        }
    }

    // Churn + compaction: after every `compact()` the engine (remapped
    // ids, rebuilt components) must agree with a fresh engine *and* the
    // enumeration oracle on CPS, all-pairs COP, certain answers, and
    // model counts — and the tuple vectors must actually have shrunk.
    #[test]
    fn churn_then_compact_agrees_with_fresh_engine_and_oracle(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed));
        let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64));
        for step in 0..5usize {
            let delta = random_churn_delta(engine.spec(), &mut rng);
            engine.apply(&delta).expect("generated deltas are admissible");
            if step % 2 == 1 {
                let tombstones: usize = engine
                    .spec()
                    .instances()
                    .iter()
                    .map(|i| i.tombstones())
                    .sum();
                let slots_before: usize =
                    engine.spec().instances().iter().map(|i| i.len()).sum();
                let report = engine.compact().expect("compaction succeeds");
                prop_assert_eq!(report.reclaimed, tombstones, "seed {}", seed);
                let slots_after: usize =
                    engine.spec().instances().iter().map(|i| i.len()).sum();
                prop_assert_eq!(
                    slots_after, slots_before - tombstones,
                    "tuple vectors shrink by exactly the tombstone count (seed {})", seed
                );
                for inst in engine.spec().instances() {
                    prop_assert_eq!(inst.tombstones(), 0, "seed {}", seed);
                    prop_assert_eq!(inst.len(), inst.live_len(), "seed {}", seed);
                }
                assert_agreement(&engine, true, seed, step);
            }
        }
        // The compacted engine keeps accepting deltas afterwards.
        let delta = random_churn_delta(engine.spec(), &mut rng);
        engine.apply(&delta).expect("post-compaction delta");
        assert_agreement(&engine, true, seed, 99);
    }

    #[test]
    fn cached_state_survives_updates_without_drift(seed in 0u64..10_000) {
        // Warm the engine (queries populate caches and learnt clauses),
        // then update and re-query: cached state from before the delta
        // must never leak into post-delta answers.
        let spec = random_spec(&wide_config(seed));
        let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        let arity = engine.spec().instance(T).arity();
        let q = value_query(T, arity);
        let _ = engine.cps().unwrap();
        let _ = engine.certain_answers(&q).unwrap();
        // A guaranteed component-local delta: one fresh reading for an
        // existing entity.
        let components_before = engine.stats().components;
        let mut delta = SpecDelta::new();
        delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
        let report = engine.apply(&delta).expect("admissible");
        prop_assert_eq!(report.components_rebuilt, 1, "seed {}", seed);
        // Every other component survived with its caches; the agreement
        // check proves the reuse is sound.
        prop_assert_eq!(report.components_reused, components_before - 1, "seed {}", seed);
        assert_agreement(&engine, false, seed, 0);
    }
}

#[test]
fn update_stream_reaches_every_operation_kind() {
    // Sanity-check the delta generator's distribution: across a few
    // streams every operation kind must actually occur.
    let mut saw = [false; 5];
    for seed in 0..40u64 {
        let spec = random_spec(&config(seed));
        let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        for _ in 0..4 {
            let delta = random_delta(engine.spec(), &mut rng);
            for op in delta.ops() {
                use data_currency::model::DeltaOp;
                match op {
                    DeltaOp::InsertTuple { .. } => saw[0] = true,
                    DeltaOp::RemoveTuple { .. } => saw[1] = true,
                    DeltaOp::AddOrderEdge { .. } => saw[2] = true,
                    DeltaOp::AddConstraint(_) => saw[3] = true,
                    DeltaOp::ExtendCopy { .. } => saw[4] = true,
                    DeltaOp::AddCopy(_) => {}
                }
            }
            engine.apply(&delta).expect("admissible");
        }
    }
    assert_eq!(
        saw, [true; 5],
        "insert/remove/order/constraint/extend all drawn"
    );
}
