//! Differential testing of the entity-sharded engine: for every shard
//! count N ∈ {1, 2, 4, 8}, a [`ShardedEngine`] fed the same seeded
//! update stream as a single unsharded [`CurrencyEngine`] must agree on
//! CPS, all-pairs COP, certain current answers, CCQA membership, and
//! DCIP — before and after the stream, and after sharded compaction.
//!
//! The stream generator is the same one the unsharded update suite uses
//! (`tests/engine_updates.rs`); its deltas speak the unsharded id space,
//! so each delta is translated to sharded-global ids through a
//! maintained id map (seeded from [`ShardedEngine::import`], extended by
//! zipping the two apply reports' `inserted` lists).  A delta the
//! sharded engine *rejects* under the documented routing policy
//! (cross-shard anchors — e.g. a copy extension whose fresh source
//! entity hashes to a different shard than its target) is skipped on
//! both sides, keeping the two states in lockstep; the policy itself is
//! pinned by the deterministic tests at the bottom.

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::{
    AttrId, CopyFunction, DeltaOp, Eid, RelId, SpecDelta, Specification, Tuple, TupleId, Value,
};
use data_currency::query::{Query, SpQuery};
use data_currency::reason::shard::locate;
use data_currency::reason::{
    CurrencyEngine, CurrencyOrderQuery, Options, ShardError, ShardPlan, ShardedEngine,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const T: RelId = RelId(0);
const SRC: RelId = RelId(1);
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const STREAM_LEN: usize = 6;

fn config(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 3,
        tuples_per_entity: (1, 2),
        attrs: 1,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: 1,
        correlated_constraints: 0,
        with_copy: true,
        seed,
    }
}

fn value_query(rel: RelId, arity: usize) -> Query {
    SpQuery::identity(rel, arity).to_query(arity)
}

/// Draw one admissible delta against the current (unsharded)
/// specification — the generator space of `tests/engine_updates.rs`.
fn random_delta(spec: &Specification, rng: &mut SmallRng) -> SpecDelta {
    let inst = spec.instance(T);
    let arity = inst.arity();
    let live: Vec<TupleId> = inst.tuples().map(|(id, _)| id).collect();
    let mut delta = SpecDelta::new();
    match rng.gen_range(0..10u32) {
        0..=3 => {
            let eid = Eid(rng.gen_range(0..3u64));
            let values: Vec<Value> = (0..arity)
                .map(|_| Value::int(rng.gen_range(0..2)))
                .collect();
            delta.insert_tuple(T, Tuple::new(eid, values));
        }
        4..=5 if !live.is_empty() => {
            let victim = live[rng.gen_range(0..live.len())];
            delta.remove_tuple(T, victim);
        }
        6..=7 => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let mut found = None;
            'outer: for (i, &u) in live.iter().enumerate() {
                for &v in &live[i + 1..] {
                    if inst.tuple(u).eid == inst.tuple(v).eid && !inst.order(attr).contains(u, v) {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            if let Some((u, v)) = found {
                delta.add_order_edge(T, attr, u, v);
            } else {
                delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
            }
        }
        8 => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let dc = data_currency::model::DenialConstraint::builder(T, 2)
                .when_cmp(
                    data_currency::model::Term::attr(0, attr),
                    data_currency::model::CmpOp::Gt,
                    data_currency::model::Term::attr(1, attr),
                )
                .then_order(1, attr, 0)
                .build()
                .expect("valid constraint");
            delta.add_constraint(dc);
        }
        _ => {
            let unmapped = live
                .iter()
                .copied()
                .find(|&t| spec.copies().len() == 1 && spec.copies()[0].mapping(t).is_none());
            if let Some(target) = unmapped {
                let t = inst.tuple(target).clone();
                let source_id = TupleId(spec.instance(SRC).len() as u32);
                delta
                    .insert_tuple(SRC, Tuple::new(Eid(t.eid.0 + 100), t.values.clone()))
                    .extend_copy(0, target, source_id);
            } else {
                delta.insert_tuple(T, Tuple::new(Eid(1), vec![Value::int(1); arity]));
            }
        }
    }
    if delta.is_empty() {
        delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
    }
    delta
}

/// An unsharded engine and a sharded engine kept in lockstep, plus the
/// unsharded → sharded-global tuple id translation (one map per
/// relation).
struct Mirror {
    unsharded: CurrencyEngine<'static>,
    sharded: ShardedEngine,
    map: Vec<HashMap<TupleId, TupleId>>,
}

impl Mirror {
    fn new(spec: &Specification, shards: usize, opts: &Options) -> Mirror {
        let unsharded = CurrencyEngine::new_owned(spec.clone(), opts).expect("valid spec");
        let sharded = ShardedEngine::new(spec, shards, opts).expect("valid spec");
        let mut map: Vec<HashMap<TupleId, TupleId>> = Vec::new();
        for (r, inst) in spec.instances().iter().enumerate() {
            let rel = RelId(r as u32);
            let mut m = HashMap::new();
            for old in 0..inst.len() as u32 {
                if let Some(g) = sharded.import().new_id(rel, TupleId(old)) {
                    m.insert(TupleId(old), g);
                }
            }
            map.push(m);
        }
        Mirror {
            unsharded,
            sharded,
            map,
        }
    }

    /// Rewrite a delta from the unsharded id space into the
    /// sharded-global one.  Ids a delta assigns to its *own* inserts
    /// (the copy-extension pattern references the mirrored source tuple
    /// it inserts) are predicted on both sides, exactly as the sharded
    /// router itself predicts them.
    fn translate(&self, delta: &SpecDelta) -> SpecDelta {
        let n = self.sharded.shards();
        let mut un_next: HashMap<RelId, u32> = HashMap::new();
        let mut sh_next: HashMap<(usize, RelId), u32> = HashMap::new();
        let mut pending: HashMap<(RelId, TupleId), TupleId> = HashMap::new();
        for op in delta.ops() {
            if let DeltaOp::InsertTuple { rel, tuple } = op {
                let uc = un_next.entry(*rel).or_insert(0);
                let un_id = TupleId(self.unsharded.spec().instance(*rel).len() as u32 + *uc);
                *uc += 1;
                let shard = self.sharded.plan().shard_of(tuple.eid);
                let sc = sh_next.entry((shard, *rel)).or_insert(0);
                let g = TupleId(self.sharded.next_id(*rel, tuple.eid).0 + *sc * n as u32);
                *sc += 1;
                pending.insert((*rel, un_id), g);
            }
        }
        let lookup = |rel: RelId, id: TupleId| -> TupleId {
            self.map[rel.index()]
                .get(&id)
                .or_else(|| pending.get(&(rel, id)))
                .copied()
                .expect("generated deltas reference known tuples")
        };
        let mut out = SpecDelta::new();
        for op in delta.ops() {
            match op {
                DeltaOp::InsertTuple { rel, tuple } => {
                    out.insert_tuple(*rel, tuple.clone());
                }
                DeltaOp::RemoveTuple { rel, tuple } => {
                    out.remove_tuple(*rel, lookup(*rel, *tuple));
                }
                DeltaOp::AddOrderEdge {
                    rel,
                    attr,
                    lesser,
                    greater,
                } => {
                    out.add_order_edge(*rel, *attr, lookup(*rel, *lesser), lookup(*rel, *greater));
                }
                DeltaOp::AddConstraint(dc) => {
                    out.add_constraint(dc.clone());
                }
                DeltaOp::ExtendCopy {
                    copy,
                    target,
                    source,
                } => {
                    let sig = self.unsharded.spec().copies()[*copy].signature();
                    out.extend_copy(
                        *copy,
                        lookup(sig.target, *target),
                        lookup(sig.source, *source),
                    );
                }
                DeltaOp::AddCopy(_) => unreachable!("generator emits no new copy functions"),
            }
        }
        out
    }

    /// Apply one delta on both sides (or skip it on both when the
    /// routing policy rejects it).  Returns whether it was applied.
    fn step(&mut self, delta: &SpecDelta, seed: u64, step: usize) -> bool {
        let translated = self.translate(delta);
        match self.sharded.apply(&translated) {
            Ok(sh) => {
                let un = self.unsharded.apply(delta).expect("admissible by draw");
                assert_eq!(
                    un.inserted.len(),
                    sh.inserted.len(),
                    "insert counts diverged (seed {seed} step {step})"
                );
                for (&(ru, iu), &(rs, ig)) in un.inserted.iter().zip(sh.inserted.iter()) {
                    assert_eq!(
                        ru, rs,
                        "insert relations diverged (seed {seed} step {step})"
                    );
                    self.map[ru.index()].insert(iu, ig);
                }
                true
            }
            Err(ShardError::CrossShard { .. }) | Err(ShardError::CrossShardCopy { .. }) => {
                // Documented policy: the batch is rejected whole, never
                // re-homed.  With one shard nothing can ever cross.
                assert!(
                    self.sharded.shards() > 1,
                    "single-shard routing rejected a delta (seed {seed} step {step})"
                );
                false
            }
            Err(e) => panic!("unexpected sharded failure (seed {seed} step {step}): {e}"),
        }
    }

    /// Full agreement check: CPS, all-pairs COP over `T`, certain
    /// answers on both relations, a CCQA probe, and DCIP.
    fn assert_agreement(&self, seed: u64, stage: &str) {
        let n = self.sharded.shards();
        let cps = self.unsharded.cps().expect("in budget");
        assert_eq!(
            cps,
            self.sharded.cps().unwrap(),
            "CPS diverged (seed {seed}, N={n}, {stage})"
        );
        let inst = self.unsharded.spec().instance(T);
        for a in 0..inst.arity() {
            let attr = AttrId(a as u32);
            for u in 0..inst.len() as u32 {
                for v in 0..inst.len() as u32 {
                    let (gu, gv) = (self.map[0][&TupleId(u)], self.map[0][&TupleId(v)]);
                    let qu = CurrencyOrderQuery::single(T, attr, TupleId(u), TupleId(v));
                    let qg = CurrencyOrderQuery::single(T, attr, gu, gv);
                    assert_eq!(
                        self.unsharded.cop(&qu).unwrap(),
                        self.sharded.cop(&qg).unwrap(),
                        "COP diverged (seed {seed}, N={n}, {stage}, {u} ≺ {v})"
                    );
                }
            }
        }
        for rel in [T, SRC] {
            let arity = self.unsharded.spec().instance(rel).arity();
            let q = value_query(rel, arity);
            let un = self.unsharded.certain_answers(&q).expect("in budget");
            let sh = self.sharded.certain_answers(&q).unwrap();
            assert_eq!(
                un, sh,
                "certain answers diverged (seed {seed}, N={n}, {stage}, rel {rel:?})"
            );
            // CCQA membership: a real row and a row that cannot occur.
            if let Some(rows) = un.rows() {
                if let Some(row) = rows.first() {
                    assert!(
                        self.sharded.ccqa(&q, row).unwrap(),
                        "CCQA lost a certain row (seed {seed}, N={n}, {stage})"
                    );
                }
            }
            let bogus = vec![Value::int(99); arity];
            assert_eq!(
                self.unsharded.ccqa(&q, &bogus).unwrap(),
                self.sharded.ccqa(&q, &bogus).unwrap(),
                "CCQA diverged on absent row (seed {seed}, N={n}, {stage})"
            );
        }
        assert_eq!(
            self.unsharded.dcip(T).unwrap(),
            self.sharded.dcip(T).unwrap(),
            "DCIP diverged (seed {seed}, N={n}, {stage})"
        );
    }
}

/// One full differential round for one seed and one shard count.
fn differential_round(seed: u64, shards: usize) {
    let opts = Options::default();
    let spec = random_spec(&config(seed));
    let mut mirror = Mirror::new(&spec, shards, &opts);
    mirror.assert_agreement(seed, "initial");
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    let mut shadow = spec;
    for step in 0..STREAM_LEN {
        let delta = random_delta(&shadow, &mut rng);
        if mirror.step(&delta, seed, step) {
            shadow.apply_delta(&delta).expect("admissible by draw");
            // CPS stays in agreement after every applied delta.
            assert_eq!(
                mirror.unsharded.cps().unwrap(),
                mirror.sharded.cps().unwrap(),
                "CPS diverged mid-stream (seed {seed}, N={shards}, step {step})"
            );
        }
    }
    mirror.assert_agreement(seed, "post-stream");

    // Sharded compaction: shard-local renumbering must preserve every
    // live tuple (translated through the report) and every verdict.
    let live: Vec<(TupleId, Tuple)> = mirror
        .unsharded
        .spec()
        .instance(T)
        .tuples()
        .map(|(id, t)| (id, t.clone()))
        .collect();
    let report = mirror.sharded.compact().expect("compaction succeeds");
    for (old, tuple) in live {
        let g = mirror.map[0][&old];
        let ng = report.new_id(T, g).expect("live tuples survive compaction");
        let (s, l) = locate(shards, ng);
        let kept = mirror.sharded.engine(s).spec().instance(T).tuple(l);
        assert_eq!(kept.eid, tuple.eid, "compaction moved a tuple's entity");
        assert_eq!(
            kept.values, tuple.values,
            "compaction moved a tuple's values"
        );
    }
    assert_eq!(
        mirror.unsharded.cps().unwrap(),
        mirror.sharded.cps().unwrap(),
        "CPS diverged after compaction (seed {seed}, N={shards})"
    );
    let q = value_query(T, mirror.unsharded.spec().instance(T).arity());
    assert_eq!(
        mirror.unsharded.certain_answers(&q).unwrap(),
        mirror.sharded.certain_answers(&q).unwrap(),
        "certain answers diverged after compaction (seed {seed}, N={shards})"
    );

    // Stats aggregate exactly field-wise.
    let stats = mirror.sharded.stats();
    assert_eq!(stats.per_shard.len(), shards);
    assert_eq!(
        stats.total.components,
        stats.per_shard.iter().map(|s| s.components).sum::<usize>()
    );
    assert_eq!(
        stats.total.updates_applied,
        stats
            .per_shard
            .iter()
            .map(|s| s.updates_applied)
            .sum::<usize>()
    );
    assert_eq!(
        stats.total.compactions,
        stats.per_shard.iter().map(|s| s.compactions).sum::<usize>()
    );
}

/// Rebuild `spec` with every instance's tuples inserted in reverse
/// order (ids renumbered), carrying over orders, constraints, and copy
/// mappings — same content, different insertion order.
fn reversed_spec(spec: &Specification) -> Specification {
    let mut out = Specification::new(spec.catalog().clone());
    let mut tables: Vec<HashMap<TupleId, TupleId>> = Vec::new();
    for (r, inst) in spec.instances().iter().enumerate() {
        let rel = RelId(r as u32);
        let mut table = HashMap::new();
        let live: Vec<(TupleId, Tuple)> = inst.tuples().map(|(id, t)| (id, t.clone())).collect();
        for (old, tuple) in live.into_iter().rev() {
            let new = out
                .instance_mut(rel)
                .push_tuple(tuple)
                .expect("schema shared");
            table.insert(old, new);
        }
        for a in 0..inst.arity() {
            let attr = AttrId(a as u32);
            for (l, g) in inst.order(attr).iter() {
                out.instance_mut(rel)
                    .add_order(attr, table[&l], table[&g])
                    .expect("acyclic in the original");
            }
        }
        tables.push(table);
    }
    for dc in spec.constraints() {
        out.add_constraint(dc.clone()).expect("valid in original");
    }
    for cf in spec.copies() {
        let sig = cf.signature();
        let mut rebuilt = CopyFunction::new(sig.clone());
        for (t, s) in cf.mappings() {
            rebuilt.set_mapping(
                tables[sig.target.index()][&t],
                tables[sig.source.index()][&s],
            );
        }
        out.add_copy(rebuilt).expect("copying condition unchanged");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    // The 10k-seed sweep: every shard count agrees with the unsharded
    // engine across a random delta stream.
    #[test]
    fn sharded_engine_agrees_with_unsharded(seed in 0u64..10_000) {
        for shards in SHARD_COUNTS {
            differential_round(seed, shards);
        }
    }

    // Routing determinism: the shard assignment is a function of the
    // specification's *content* — rebuilding the same specification
    // with a different tuple insertion order yields the identical plan.
    #[test]
    fn shard_assignment_ignores_insertion_order(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed));
        let rev = reversed_spec(&spec);
        for shards in SHARD_COUNTS {
            let a = ShardPlan::from_spec(shards, &spec);
            let b = ShardPlan::from_spec(shards, &rev);
            prop_assert_eq!(&a, &b, "plans diverged (seed {}, N={})", seed, shards);
            // Copy closures are co-located.
            for cf in spec.copies() {
                let sig = cf.signature();
                for (t, s) in cf.mappings() {
                    let te = spec.instance(sig.target).tuple(t).eid;
                    let se = spec.instance(sig.source).tuple(s).eid;
                    prop_assert_eq!(
                        a.shard_of(te),
                        a.shard_of(se),
                        "copy-linked entities split (seed {}, N={})",
                        seed,
                        shards
                    );
                }
            }
        }
    }
}

/// Two entities that hash to different shards under N=8 (found by
/// scanning — the hash is fixed, so this is deterministic).
fn split_pair(plan: &ShardPlan) -> (Eid, Eid) {
    let a = Eid(0);
    for i in 1..64 {
        if plan.shard_of(Eid(i)) != plan.shard_of(a) {
            return (a, Eid(i));
        }
    }
    panic!("splitmix64 mapped 64 consecutive eids to one of 8 shards");
}

fn two_entity_spec(eids: (Eid, Eid)) -> Specification {
    let mut catalog = data_currency::model::Catalog::new();
    let r = catalog.add(data_currency::model::RelationSchema::new("R", &["A"]));
    assert_eq!(r, T);
    let mut spec = Specification::new(catalog);
    spec.instance_mut(T)
        .push_tuple(Tuple::new(eids.0, vec![Value::int(0)]))
        .unwrap();
    spec.instance_mut(T)
        .push_tuple(Tuple::new(eids.1, vec![Value::int(1)]))
        .unwrap();
    spec
}

/// Policy: a delta anchored in two shards is rejected whole.
#[test]
fn cross_shard_delta_is_rejected() {
    let opts = Options::default();
    let probe = ShardPlan::from_spec(8, &two_entity_spec((Eid(0), Eid(1))));
    let eids = split_pair(&probe);
    let spec = two_entity_spec(eids);
    let mut engine = ShardedEngine::new(&spec, 8, &opts).unwrap();
    let ga = engine.import().new_id(T, TupleId(0)).unwrap();
    let gb = engine.import().new_id(T, TupleId(1)).unwrap();
    let mut delta = SpecDelta::new();
    delta.remove_tuple(T, ga).remove_tuple(T, gb);
    match engine.apply(&delta) {
        Err(ShardError::CrossShard { shards }) => assert_eq!(shards.len(), 2),
        other => panic!("expected CrossShard rejection, got {other:?}"),
    }
    // Rejection is atomic: both tuples are still live.
    assert_eq!(
        engine
            .engine(engine.plan().shard_of(eids.0))
            .spec()
            .instance(T)
            .live_len(),
        1
    );
    assert_eq!(
        engine
            .engine(engine.plan().shard_of(eids.1))
            .spec()
            .instance(T)
            .live_len(),
        1
    );
    // Each half applies on its own.
    let mut half = SpecDelta::new();
    half.remove_tuple(T, ga);
    engine.apply(&half).expect("single-shard half applies");
}

/// Policy: structure and entity operations never ride together.
#[test]
fn mixed_delta_is_rejected() {
    let opts = Options::default();
    let spec = two_entity_spec((Eid(0), Eid(1)));
    let mut engine = ShardedEngine::new(&spec, 4, &opts).unwrap();
    let dc = data_currency::model::DenialConstraint::builder(T, 2)
        .when_cmp(
            data_currency::model::Term::attr(0, AttrId(0)),
            data_currency::model::CmpOp::Gt,
            data_currency::model::Term::attr(1, AttrId(0)),
        )
        .then_order(1, AttrId(0), 0)
        .build()
        .unwrap();
    let mut delta = SpecDelta::new();
    delta
        .insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(2)]))
        .add_constraint(dc);
    assert!(matches!(engine.apply(&delta), Err(ShardError::MixedDelta)));
}

/// Structure-only deltas broadcast: every shard learns the constraint.
#[test]
fn constraints_broadcast_to_every_shard() {
    let opts = Options::default();
    let spec = two_entity_spec((Eid(0), Eid(1)));
    let mut engine = ShardedEngine::new(&spec, 4, &opts).unwrap();
    let dc = data_currency::model::DenialConstraint::builder(T, 2)
        .when_cmp(
            data_currency::model::Term::attr(0, AttrId(0)),
            data_currency::model::CmpOp::Gt,
            data_currency::model::Term::attr(1, AttrId(0)),
        )
        .then_order(1, AttrId(0), 0)
        .build()
        .unwrap();
    let mut delta = SpecDelta::new();
    delta.add_constraint(dc);
    let report = engine.apply(&delta).unwrap();
    assert!(report.broadcast);
    assert_eq!(report.shard, None);
    for k in 0..engine.shards() {
        assert_eq!(engine.engine(k).spec().constraints().len(), 1);
    }
}
