//! Crash-recovery testing of the durability layer.
//!
//! Two attack surfaces:
//!
//! * **Fault injection** — a store's write-ahead log is truncated at
//!   *every byte offset* of its final record (the footprint of a crash
//!   mid-append) and has one byte flipped *per frame* (bit rot /
//!   tampering).  The contract: [`DurableEngine::open`] either recovers
//!   a **prefix-consistent** specification (byte-identical, under the
//!   canonical wire encoding, to the state after some prefix of the
//!   logged deltas) or reports a checksum/divergence error — never a
//!   panic, never a state outside the prefix set.
//! * **Differential streams** — seeded random delta streams interrupted
//!   (dropped and reopened) at random points, with snapshot rotation and
//!   the auto-compaction policy switched on for a slice of the seed
//!   space.  After every restart the recovered engine must agree with
//!   the never-restarted in-memory engine — and, when affordable, with
//!   the brute-force completion-enumeration oracle — on CPS, all-pairs
//!   COP, and certain current answers.

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::wire::encode_spec;
use data_currency::model::{
    AttrId, CmpOp, DenialConstraint, Eid, RelId, SpecDelta, Specification, Term, Tuple, TupleId,
    Value,
};
use data_currency::query::{Database, Query, SpQuery};
use data_currency::reason::{
    enumerate::for_each_consistent_completion, CertainAnswers, CurrencyEngine, CurrencyOrderQuery,
    Options,
};
use data_currency::store::{DurableEngine, StoreOptions};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

const T: RelId = RelId(0);
const SRC: RelId = RelId(1);
const ORACLE_BUDGET: usize = 2_000_000;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "currency-store-recovery-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Store options tuned for tests: no fsync, rotation generous unless a
/// test opts in.
fn fast_store() -> StoreOptions {
    StoreOptions {
        sync_data: false,
        ..StoreOptions::default()
    }
}

/// Small shapes so the factorial-cost oracle stays affordable even after
/// several inserts.
fn config(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 2,
        tuples_per_entity: (1, 2),
        attrs: 1,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: (seed % 2) as usize,
        correlated_constraints: 0,
        with_copy: seed.is_multiple_of(2),
        seed,
    }
}

/// Draw one admissible delta against the current specification (the same
/// operation mix as the live-update differential suite: inserts,
/// retractions, id-oriented order edges, learned constraints, and copy
/// extensions with a mirrored source tuple).
fn random_delta(spec: &Specification, rng: &mut SmallRng) -> SpecDelta {
    let inst = spec.instance(T);
    let arity = inst.arity();
    let live: Vec<TupleId> = inst.tuples().map(|(id, _)| id).collect();
    let mut delta = SpecDelta::new();
    let pick = rng.gen_range(0..10u32);
    match pick {
        0..=3 => {
            let eid = Eid(rng.gen_range(0..3u64));
            let values: Vec<Value> = (0..arity)
                .map(|_| Value::int(rng.gen_range(0..2)))
                .collect();
            delta.insert_tuple(T, Tuple::new(eid, values));
        }
        4..=5 if !live.is_empty() => {
            let victim = live[rng.gen_range(0..live.len())];
            delta.remove_tuple(T, victim);
        }
        6..=7 => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let mut found = None;
            'outer: for (i, &u) in live.iter().enumerate() {
                for &v in &live[i + 1..] {
                    if inst.tuple(u).eid == inst.tuple(v).eid && !inst.order(attr).contains(u, v) {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            if let Some((u, v)) = found {
                delta.add_order_edge(T, attr, u, v);
            } else {
                delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
            }
        }
        8 => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let dc = DenialConstraint::builder(T, 2)
                .when_cmp(Term::attr(0, attr), CmpOp::Gt, Term::attr(1, attr))
                .then_order(1, attr, 0)
                .build()
                .expect("valid constraint");
            delta.add_constraint(dc);
        }
        _ => {
            let unmapped = live
                .iter()
                .copied()
                .find(|&t| spec.copies().len() == 1 && spec.copies()[0].mapping(t).is_none());
            if let Some(target) = unmapped {
                let t = inst.tuple(target).clone();
                let source_id = TupleId(spec.instance(SRC).len() as u32);
                delta
                    .insert_tuple(SRC, Tuple::new(Eid(t.eid.0 + 100), t.values.clone()))
                    .extend_copy(0, target, source_id);
            } else {
                delta.insert_tuple(T, Tuple::new(Eid(1), vec![Value::int(1); arity]));
            }
        }
    }
    if delta.is_empty() {
        delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
    }
    delta
}

fn value_query(rel: RelId, arity: usize) -> Query {
    SpQuery::identity(rel, arity).to_query(arity)
}

/// Certain answers via the brute-force completion enumerator; `None` if
/// out of budget.
fn certain_by_enumeration(spec: &Specification, query: &Query) -> Option<CertainAnswers> {
    let mut acc: Option<BTreeSet<Vec<Value>>> = None;
    let count = for_each_consistent_completion(spec, ORACLE_BUDGET, |completion| {
        let dbs = data_currency::model::lst(spec, completion);
        let db = Database::new(&dbs);
        let answers: BTreeSet<Vec<Value>> = query.eval(&db).into_iter().collect();
        acc = Some(match acc.take() {
            None => answers,
            Some(prev) => prev.intersection(&answers).cloned().collect(),
        });
        true
    })
    .ok()?;
    Some(if count == 0 {
        CertainAnswers::Inconsistent
    } else {
        CertainAnswers::Answers(acc.unwrap_or_default().into_iter().collect())
    })
}

/// Assert the recovered durable engine, the never-restarted engine, and
/// (when affordable) the oracle agree on CPS, all-pairs COP, and certain
/// answers.
fn assert_agreement(
    durable: &DurableEngine,
    shadow: &CurrencyEngine<'_>,
    with_oracle: bool,
    seed: u64,
    step: usize,
) {
    assert_eq!(
        encode_spec(durable.spec()),
        encode_spec(shadow.spec()),
        "specs diverged: seed {seed} step {step}"
    );
    let cps = durable.cps().expect("in budget");
    assert_eq!(cps, shadow.cps().unwrap(), "CPS seed {seed} step {step}");
    let inst = durable.spec().instance(T);
    for a in 0..inst.arity() {
        let attr = AttrId(a as u32);
        for u in 0..inst.len() as u32 {
            for v in 0..inst.len() as u32 {
                let q = CurrencyOrderQuery::single(T, attr, TupleId(u), TupleId(v));
                assert_eq!(
                    durable.cop(&q).unwrap(),
                    shadow.cop(&q).unwrap(),
                    "COP seed {seed} step {step} {u} ≺ {v}"
                );
            }
        }
    }
    let q = value_query(T, inst.arity());
    let answers = durable.certain_answers(&q).expect("in budget");
    assert_eq!(
        answers,
        shadow.certain_answers(&q).unwrap(),
        "answers seed {seed} step {step}"
    );
    if with_oracle {
        if let Some(oracle) = certain_by_enumeration(durable.spec(), &q) {
            assert_eq!(answers, oracle, "answers oracle seed {seed} step {step}");
        }
        if let Some(oracle_cps) = {
            let mut found = false;
            for_each_consistent_completion(durable.spec(), ORACLE_BUDGET, |_| {
                found = true;
                false
            })
            .ok()
            .map(|_| found)
        } {
            assert_eq!(cps, oracle_cps, "CPS oracle seed {seed} step {step}");
        }
    }
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// Build a store with `n` logged deltas (every record flushed), and
/// return the canonical encodings of the specification after each prefix
/// of the stream (`prefixes[k]` = state after `k` deltas) plus the log's
/// frame boundaries (`frame_ends[k]` = file length after `k` records).
fn build_injection_fixture(dir: &Path, seed: u64, n: usize) -> (Vec<Vec<u8>>, Vec<u64>) {
    let spec = random_spec(&config(seed));
    let mut shadow = spec.clone();
    let mut prefixes = vec![encode_spec(&spec)];
    let opts = Options::default();
    let mut durable = DurableEngine::create(dir, spec, &opts, fast_store()).unwrap();
    let wal = dir.join("wal.log");
    let mut frame_ends = vec![std::fs::metadata(&wal).unwrap().len()];
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xD6E8_FEB8));
    for _ in 0..n {
        let delta = random_delta(&shadow, &mut rng);
        durable
            .apply(&delta)
            .expect("generated deltas are admissible");
        shadow.apply_delta(&delta).unwrap();
        prefixes.push(encode_spec(&shadow));
        frame_ends.push(std::fs::metadata(&wal).unwrap().len());
    }
    drop(durable);
    (prefixes, frame_ends)
}

#[test]
fn truncating_the_final_record_at_every_byte_recovers_the_prefix() {
    let n = 5;
    for seed in [0u64, 1, 7] {
        let dir = tmpdir(&format!("truncate-{seed}"));
        let (prefixes, frame_ends) = build_injection_fixture(&dir, seed, n);
        let wal = dir.join("wal.log");
        let full = std::fs::read(&wal).unwrap();
        assert_eq!(full.len() as u64, *frame_ends.last().unwrap());
        let last_start = frame_ends[n - 1];
        // Every cut inside the final record (its first byte up to one
        // short of its end) must recover exactly the n-1 prefix; a cut at
        // the frame boundary is the clean n-1 log.
        for cut in last_start..*frame_ends.last().unwrap() {
            std::fs::write(&wal, &full[..cut as usize]).unwrap();
            let recovered = DurableEngine::open(&dir, &Options::default(), fast_store())
                .unwrap_or_else(|e| panic!("cut at {cut} failed recovery: {e}"));
            assert_eq!(
                encode_spec(recovered.spec()),
                prefixes[n - 1],
                "cut at byte {cut} of seed {seed}"
            );
            assert_eq!(recovered.recovery().deltas_replayed, n - 1);
            assert_eq!(
                recovered.recovery().torn_tail_bytes > 0,
                cut > last_start,
                "torn bytes reported iff the cut left a partial frame"
            );
        }
    }
}

#[test]
fn flipping_one_byte_per_frame_errors_or_recovers_a_prefix() {
    let n = 5;
    for seed in [0u64, 3] {
        let dir = tmpdir(&format!("flip-{seed}"));
        let (prefixes, frame_ends) = build_injection_fixture(&dir, seed, n);
        let wal = dir.join("wal.log");
        let full = std::fs::read(&wal).unwrap();
        for frame in 0..n {
            let (start, end) = (frame_ends[frame] as usize, frame_ends[frame + 1] as usize);
            // One flip in each structurally distinct region of the frame:
            // the length field, the CRC field, and the payload.
            for offset in [start, start + 4, start + 8, (start + 8 + end) / 2, end - 1] {
                let mut bad = full.clone();
                bad[offset] ^= 0x10;
                std::fs::write(&wal, &bad).unwrap();
                match DurableEngine::open(&dir, &Options::default(), fast_store()) {
                    Err(_) => {} // checksum / framing error: contract upheld
                    Ok(recovered) => {
                        // A flipped length field can turn the suffix into
                        // a torn tail; the recovered state must then be
                        // exactly one of the logged prefixes.
                        let got = encode_spec(recovered.spec());
                        assert!(
                            prefixes.contains(&got),
                            "flip at byte {offset} (frame {frame}, seed {seed}) \
                             recovered a state outside the prefix set"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn flipping_snapshot_bytes_never_recovers_silently_wrong_state() {
    let dir = tmpdir("snapshot-flip");
    let spec = random_spec(&config(1));
    let opts = Options::default();
    let mut durable = DurableEngine::create(&dir, spec, &opts, fast_store()).unwrap();
    let mut rng = SmallRng::seed_from_u64(42);
    let mut shadow = durable.spec().clone();
    for _ in 0..3 {
        let delta = random_delta(&shadow, &mut rng);
        durable.apply(&delta).unwrap();
        shadow.apply_delta(&delta).unwrap();
    }
    let live = encode_spec(durable.spec());
    drop(durable);
    let snaps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.file_name()?
                .to_str()?
                .starts_with("snapshot-")
                .then_some(p)
        })
        .collect();
    assert_eq!(snaps.len(), 1);
    let good = std::fs::read(&snaps[0]).unwrap();
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0x08;
        std::fs::write(&snaps[0], &bad).unwrap();
        match DurableEngine::open(&dir, &opts, fast_store()) {
            Err(_) => {} // refused: the only snapshot generation is damaged
            Ok(recovered) => panic!(
                "flip at snapshot byte {i} recovered {} state",
                if encode_spec(recovered.spec()) == live {
                    "(by luck) the right"
                } else {
                    "a wrong"
                }
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Differential streams with restarts.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn interrupted_streams_recover_and_agree_with_engine_and_oracle(seed in 0u64..10_000) {
        let dir = tmpdir(&format!("diff-{seed}"));
        let spec = random_spec(&config(seed));
        // A slice of the seed space exercises the auto-compaction policy
        // and tight snapshot rotation through the restarts.
        let opts = Options {
            auto_compact_tombstones: if seed % 3 == 0 { 2 } else { 0 },
            ..Options::default()
        };
        let store_opts = StoreOptions {
            snapshot_rotate_bytes: if seed % 2 == 0 { 200 } else { 1 << 20 },
            sync_data: false,
            ..StoreOptions::default()
        };
        let mut durable =
            DurableEngine::create(&dir, spec.clone(), &opts, store_opts).unwrap();
        let mut shadow = CurrencyEngine::new_owned(spec, &opts).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        let n = 6usize;
        let restart_at = (seed % (n as u64 + 1)) as usize;
        for step in 0..n {
            let delta = random_delta(shadow.spec(), &mut rng);
            durable.apply(&delta).expect("generated deltas are admissible");
            shadow.apply(&delta).expect("same delta, same verdict");
            if step == restart_at {
                // Interrupt: drop (flushes the group-commit buffer) and
                // recover from disk.
                drop(durable);
                durable = DurableEngine::open(&dir, &opts, store_opts)
                    .expect("clean files recover");
                prop_assert!(durable.stats().recoveries >= 1);
                assert_agreement(&durable, &shadow, true, seed, step);
            }
        }
        // Final restart after the full stream.
        drop(durable);
        let durable = DurableEngine::open(&dir, &opts, store_opts).expect("clean files recover");
        assert_agreement(&durable, &shadow, true, seed, n);
        // Recovery bookkeeping is sane: everything not covered by the
        // newest snapshot was replayed.
        let rec = durable.recovery();
        prop_assert_eq!(
            rec.deltas_replayed + rec.compacts_replayed + rec.snapshot_seq as usize,
            durable.seq() as usize,
            "seed {}", seed
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
