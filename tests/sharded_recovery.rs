//! Kill-and-recover testing of the sharded durable store: after a
//! seeded delta stream and a simulated crash (drop without shutdown),
//! **parallel** recovery ([`ShardedStore::open`], one thread per shard)
//! must land on exactly the same per-shard state as **sequential**
//! recovery ([`ShardedStore::open_sequential`]) and as the pre-crash
//! live store — byte-identical under the canonical wire encoding — and
//! a **trusted replay** (`StoreOptions::trusted_replay`, which skips
//! per-delta re-validation and leans on the WAL's CRC framing) must
//! land on the same state as the validating default.
//!
//! Deltas here speak the sharded store's *global* id space directly
//! (`global = local · N + shard`), drawn against the live shard
//! contents so every delta is admissible by construction; order edges
//! are oriented by ascending global id, which on one shard is ascending
//! local id — acyclic for free.

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::wire::encode_spec;
use data_currency::model::{AttrId, Eid, RelId, SpecDelta, Tuple, TupleId, Value};
use data_currency::reason::shard::{global_id, locate};
use data_currency::reason::Options;
use data_currency::store::{ShardedStore, ShardedStoreError, StoreOptions};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

const T: RelId = RelId(0);
/// Deltas per stream.
const STREAM_LEN: usize = 8;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("currency-shrec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 3,
        tuples_per_entity: (1, 2),
        attrs: 1,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: (seed % 2) as usize,
        correlated_constraints: 0,
        with_copy: true,
        seed,
    }
}

/// Every live tuple of `rel` as `(global id, entity)`, across shards.
fn live_globals(store: &ShardedStore, rel: RelId) -> Vec<(TupleId, Eid)> {
    let n = store.shards();
    let mut out = Vec::new();
    for k in 0..n {
        for (id, t) in store.shard(k).spec().instance(rel).tuples() {
            out.push((global_id(n, k, id), t.eid));
        }
    }
    out.sort();
    out
}

/// Draw one admissible delta in the global id space.
fn random_global_delta(store: &ShardedStore, rng: &mut SmallRng) -> SpecDelta {
    let n = store.shards();
    let arity = store.shard(0).spec().instance(T).arity();
    let live = live_globals(store, T);
    let mut delta = SpecDelta::new();
    match rng.gen_range(0..10u32) {
        0..=4 => {
            let eid = Eid(rng.gen_range(0..3u64));
            let values: Vec<Value> = (0..arity)
                .map(|_| Value::int(rng.gen_range(0..2)))
                .collect();
            delta.insert_tuple(T, Tuple::new(eid, values));
        }
        5..=6 if !live.is_empty() => {
            let (victim, _) = live[rng.gen_range(0..live.len())];
            delta.remove_tuple(T, victim);
        }
        7..=8 => {
            // A same-entity pair not yet ordered, oriented by ascending
            // global id (`live` is sorted, so `u < v` holds).
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let mut found = None;
            'outer: for (i, &(u, eu)) in live.iter().enumerate() {
                for &(v, ev) in &live[i + 1..] {
                    if eu != ev {
                        continue;
                    }
                    let (su, lu) = locate(n, u);
                    let (sv, lv) = locate(n, v);
                    debug_assert_eq!(su, sv, "one entity, one shard");
                    let inst = store.shard(su).spec().instance(T);
                    if !inst.order(attr).contains(lu, lv) {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            if let Some((u, v)) = found {
                delta.add_order_edge(T, attr, u, v);
            } else {
                delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
            }
        }
        _ => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let dc = data_currency::model::DenialConstraint::builder(T, 2)
                .when_cmp(
                    data_currency::model::Term::attr(0, attr),
                    data_currency::model::CmpOp::Gt,
                    data_currency::model::Term::attr(1, attr),
                )
                .then_order(1, attr, 0)
                .build()
                .expect("valid constraint");
            delta.add_constraint(dc);
        }
    }
    if delta.is_empty() {
        delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
    }
    delta
}

/// Stream deltas into a fresh sharded store, crash it, and recover it
/// three ways — parallel, sequential, trusted replay — asserting all
/// three land byte-identically on the pre-crash state.
fn recovery_round(seed: u64) {
    let n = [1usize, 2, 4, 8][(seed % 4) as usize];
    let opts = Options::default();
    let store_opts = StoreOptions::default();
    let spec = random_spec(&config(seed));
    let dir = tmpdir(&format!("{seed}"));

    let mut store = ShardedStore::create(&dir, &spec, n, &opts, store_opts).expect("create");
    assert_eq!(store.shards(), n);
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xA24B_AED4));
    // WAL records each shard will have to replay on reopen.
    let mut logged = vec![0usize; n];
    for _ in 0..STREAM_LEN {
        let delta = random_global_delta(&store, &mut rng);
        let report = store.apply(&delta).expect("admissible by draw");
        if let Some(s) = report.shard {
            logged[s] += 1;
        } else if report.broadcast {
            for c in logged.iter_mut() {
                *c += 1;
            }
        }
    }
    let pre: Vec<Vec<u8>> = (0..n).map(|k| encode_spec(store.shard(k).spec())).collect();
    let live = live_globals(&store, T);
    drop(store); // crash

    let parallel = ShardedStore::open(&dir, &opts, store_opts).expect("parallel recovery");
    let sequential =
        ShardedStore::open_sequential(&dir, &opts, store_opts).expect("sequential recovery");
    let trusted = ShardedStore::open(
        &dir,
        &opts,
        StoreOptions {
            trusted_replay: true,
            ..store_opts
        },
    )
    .expect("trusted replay recovery");
    for k in 0..n {
        assert_eq!(
            encode_spec(parallel.shard(k).spec()),
            pre[k],
            "parallel recovery diverged (seed {seed}, shard {k})"
        );
        assert_eq!(
            encode_spec(sequential.shard(k).spec()),
            pre[k],
            "sequential recovery diverged (seed {seed}, shard {k})"
        );
        assert_eq!(
            encode_spec(trusted.shard(k).spec()),
            pre[k],
            "trusted replay diverged (seed {seed}, shard {k})"
        );
        // The stream is far below the rotation threshold, so every
        // logged record replays — identically on every path.
        let p = parallel.recoveries()[k];
        let s = sequential.recoveries()[k];
        let t = trusted.recoveries()[k];
        assert_eq!(p.deltas_replayed, logged[k], "seed {seed}, shard {k}");
        assert_eq!(s.deltas_replayed, logged[k], "seed {seed}, shard {k}");
        assert_eq!(t.deltas_replayed, logged[k], "seed {seed}, shard {k}");
    }
    assert_eq!(
        parallel.cps().expect("in budget"),
        sequential.cps().unwrap(),
        "recovery paths disagree on CPS (seed {seed})"
    );

    // Routing survives recovery: a new reading for an entity that still
    // has live tuples lands in the shard that already holds it.
    if let Some(&(g, eid)) = live.first() {
        let (owner, _) = locate(n, g);
        assert_eq!(
            parallel.plan().shard_of(eid),
            owner,
            "re-derived plan moved a live entity (seed {seed})"
        );
        let mut reopened = parallel;
        let arity = reopened.shard(0).spec().instance(T).arity();
        let mut delta = SpecDelta::new();
        delta.insert_tuple(T, Tuple::new(eid, vec![Value::int(1); arity]));
        let report = reopened.apply(&delta).expect("post-recovery apply");
        assert_eq!(
            report.shard,
            Some(owner),
            "post-recovery insert re-homed an entity (seed {seed})"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    // Kill-and-recover across the 10k-seed space and all shard counts.
    #[test]
    fn parallel_recovery_lands_identical_to_sequential(seed in 0u64..10_000) {
        recovery_round(seed);
    }
}

/// `create` refuses a directory that already holds a sharded store.
#[test]
fn create_refuses_existing_store() {
    let opts = Options::default();
    let spec = random_spec(&config(7));
    let dir = tmpdir("exists");
    let _store = ShardedStore::create(&dir, &spec, 2, &opts, StoreOptions::default()).unwrap();
    match ShardedStore::create(&dir, &spec, 2, &opts, StoreOptions::default()) {
        Err(ShardedStoreError::AlreadyExists { .. }) => {}
        other => panic!("expected AlreadyExists, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `open` refuses a directory with no `shards.meta` (e.g. a crash
/// mid-`create` before the meta was written).
#[test]
fn open_refuses_directory_without_meta() {
    let dir = tmpdir("nometa");
    std::fs::create_dir_all(&dir).unwrap();
    assert!(ShardedStore::open(&dir, &Options::default(), StoreOptions::default()).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
