//! Every numbered example of the paper as an executable test.
//!
//! The expected outcomes are the ones stated in the paper's prose:
//! Examples 1.1 / 2.5 (queries Q1–Q4 on the Fig. 1 database), Example 2.3
//! (a consistent completion exists; a conflicting copy source destroys
//! consistency), Example 2.4 (current instances), Example 3.2 (certain
//! orderings), Example 3.3 (Emp is deterministic for current instances),
//! and Example 4.1 (ρ is not currency preserving for Q2, its extension
//! ρ₁ is).

use data_currency::datagen::scenarios::{self, dept_attrs, emp_attrs};
use data_currency::model::{AttrId, Tuple, Value};
use data_currency::reason::{
    ccqa, certain_answers, cop, cpp, cps, dcip, maximum_extension, witness_completion,
    CurrencyOrderQuery, Options, PreservationProblem,
};
use std::collections::BTreeSet;

fn opts() -> Options {
    Options::default()
}

#[test]
fn example_2_3_s0_is_consistent() {
    let f = scenarios::fig1();
    assert!(cps(&f.spec).unwrap(), "Mod(S₀) ≠ ∅ (Example 2.3)");
    let w = witness_completion(&f.spec).unwrap().expect("witness");
    assert!(w.is_consistent_for(&f.spec));
}

#[test]
fn example_1_1_q1_current_salary_is_80k() {
    let f = scenarios::fig1();
    let q = f.q1().to_query(5);
    let ans = certain_answers(&f.spec, &q, &opts()).unwrap();
    assert_eq!(ans.rows().unwrap(), &[vec![Value::int(80)]]);
    assert!(ccqa(&f.spec, &q, &[Value::int(80)], &opts()).unwrap());
    assert!(!ccqa(&f.spec, &q, &[Value::int(50)], &opts()).unwrap());
}

#[test]
fn example_1_1_q2_current_last_name_is_dupont() {
    let f = scenarios::fig1();
    let q = f.q2().to_query(5);
    let ans = certain_answers(&f.spec, &q, &opts()).unwrap();
    assert_eq!(ans.rows().unwrap(), &[vec![Value::str("Dupont")]]);
}

#[test]
fn example_1_1_q3_current_address_is_6_main_st() {
    let f = scenarios::fig1();
    let q = f.q3().to_query(5);
    let ans = certain_answers(&f.spec, &q, &opts()).unwrap();
    assert_eq!(ans.rows().unwrap(), &[vec![Value::str("6 Main St")]]);
}

#[test]
fn example_1_1_q4_current_budget_is_6000k() {
    let f = scenarios::fig1();
    let q = f.q4().to_query(4);
    let ans = certain_answers(&f.spec, &q, &opts()).unwrap();
    assert_eq!(
        ans.rows().unwrap(),
        &[vec![Value::int(6000)]],
        "either completion of t3/t4 yields budget 6000 (Example 1.1(4))"
    );
}

#[test]
fn example_2_4_current_emp_instance() {
    // LST(Emp) = {s3, s4, s5}: Mary's current tuple equals s3 in every
    // attribute, and the singleton entities contribute themselves.
    let f = scenarios::fig1();
    let q = data_currency::query::SpQuery::identity(f.emp, 5).to_query(5);
    let ans = certain_answers(&f.spec, &q, &opts()).unwrap();
    let rows = ans.rows().unwrap();
    let s3 = vec![
        Value::str("Mary"),
        Value::str("Dupont"),
        Value::str("6 Main St"),
        Value::int(80),
        Value::str("married"),
    ];
    let s4 = vec![
        Value::str("Bob"),
        Value::str("Luth"),
        Value::str("8 Cowan St"),
        Value::int(80),
        Value::str("married"),
    ];
    let s5 = vec![
        Value::str("Robert"),
        Value::str("Luth"),
        Value::str("8 Drum St"),
        Value::int(55),
        Value::str("married"),
    ];
    assert!(rows.contains(&s3), "Mary's current tuple is s3");
    assert!(rows.contains(&s4));
    assert!(rows.contains(&s5));
    assert_eq!(rows.len(), 3);
}

#[test]
fn example_2_4_merged_luth_mixes_attributes() {
    // Example 2.4 (second half) illustrates LST mechanics: with s4 and s5
    // as one person, orders s4 ≺_A s5 for A ∈ {FN, LN, address, status}
    // and s5 ≺_salary s4, the current tuple is (Robert, Luth, 8 Drum St,
    // 80k, married) — four attributes from s5, the salary from s4.  The
    // example picks this completion freely (it predates the constraints),
    // so we demonstrate it on a constraint-free copy of the data.
    use data_currency::model::{Catalog, RelationSchema, Specification};
    let mut cat = Catalog::new();
    let emp = cat.add(RelationSchema::new(
        "Emp",
        &["FN", "LN", "address", "salary", "status"],
    ));
    let mut spec = Specification::new(cat);
    let person = data_currency::model::Eid(2);
    let s4 = spec
        .instance_mut(emp)
        .push_tuple(Tuple::new(
            person,
            vec![
                Value::str("Bob"),
                Value::str("Luth"),
                Value::str("8 Cowan St"),
                Value::int(80),
                Value::str("married"),
            ],
        ))
        .unwrap();
    let s5 = spec
        .instance_mut(emp)
        .push_tuple(Tuple::new(
            person,
            vec![
                Value::str("Robert"),
                Value::str("Luth"),
                Value::str("8 Drum St"),
                Value::int(55),
                Value::str("married"),
            ],
        ))
        .unwrap();
    for attr in [
        emp_attrs::FN,
        emp_attrs::LN,
        emp_attrs::ADDRESS,
        emp_attrs::STATUS,
    ] {
        spec.instance_mut(emp).add_order(attr, s4, s5).unwrap();
    }
    spec.instance_mut(emp)
        .add_order(emp_attrs::SALARY, s5, s4)
        .unwrap();
    let q = data_currency::query::SpQuery::identity(emp, 5).to_query(5);
    let ans = certain_answers(&spec, &q, &opts()).unwrap();
    assert_eq!(
        ans.rows().unwrap(),
        &[vec![
            Value::str("Robert"),
            Value::str("Luth"),
            Value::str("8 Drum St"),
            Value::int(80),
            Value::str("married"),
        ]],
        "the current tuple mixes s5's attributes with s4's salary"
    );
}

#[test]
fn example_3_2_certain_orderings() {
    let f = scenarios::fig1();
    // s1 ≺_salary s3 is assured by φ₁.
    let q = CurrencyOrderQuery::single(f.emp, emp_attrs::SALARY, f.s[0], f.s[2]);
    assert!(cop(&f.spec, &q).unwrap());
    // t3 ≺_mgrFN t4 is NOT entailed: a completion with t4 ≺ t3 exists.
    let q2 = CurrencyOrderQuery::single(f.dept, dept_attrs::MGR_FN, f.t[2], f.t[3]);
    assert!(!cop(&f.spec, &q2).unwrap());
}

#[test]
fn example_2_2_copy_derived_orderings() {
    // The copy function plus φ₁/φ₃ force t1 ≺_mgrAddr t3 (Example 1.1(4)).
    let f = scenarios::fig1();
    let q = CurrencyOrderQuery::single(f.dept, dept_attrs::MGR_ADDR, f.t[0], f.t[2]);
    assert!(cop(&f.spec, &q).unwrap());
    // ... and φ₄ lifts it to the budget.
    let qb = CurrencyOrderQuery::single(f.dept, dept_attrs::BUDGET, f.t[0], f.t[2]);
    assert!(cop(&f.spec, &qb).unwrap());
}

#[test]
fn example_3_3_emp_is_deterministic() {
    let f = scenarios::fig1();
    assert!(
        dcip(&f.spec, f.emp, &opts()).unwrap(),
        "S₀ is deterministic for current Emp instances (Example 3.3)"
    );
}

#[test]
fn dept_is_not_deterministic() {
    // mgrFN of R&D differs between completions (t3 = Mary vs t4 = Ed).
    let f = scenarios::fig1();
    assert!(!dcip(&f.spec, f.dept, &opts()).unwrap());
}

#[test]
fn example_2_3_conflicting_source_destroys_consistency() {
    // Example 2.3 (second half): a source asserting the opposite budget
    // order contradicts the φ-derived order.
    let f = scenarios::fig1();
    let mut spec = f.spec.clone();
    // Force the opposite of the derived t1 ≺_budget t3 directly.
    spec.instance_mut(f.dept)
        .add_order(dept_attrs::BUDGET, f.t[2], f.t[0])
        .unwrap();
    assert!(!cps(&spec).unwrap());
}

#[test]
fn example_4_1_rho_is_not_currency_preserving_for_q2() {
    let e = scenarios::example_4_1();
    let q2 = e.q2().to_query(5);
    // Base answer: Dupont.
    let ans = certain_answers(&e.spec, &q2, &opts()).unwrap();
    assert_eq!(ans.rows().unwrap(), &[vec![Value::str("Dupont")]]);
    let sources: BTreeSet<_> = [e.mgr].into();
    let problem = PreservationProblem {
        spec: &e.spec,
        sources: &sources,
        query: &q2,
    };
    assert!(
        !cpp(&problem, &opts()).unwrap(),
        "importing s′3 changes Q2's certain answer to Smith (Example 4.1)"
    );
}

#[test]
fn example_4_1_rho1_is_currency_preserving_for_q2() {
    // ρ₁ extends ρ by importing s′3 into Emp.
    let e = scenarios::example_4_1();
    let mut spec = e.spec.clone();
    let new_tuple = spec
        .instance_mut(e.emp)
        .push_tuple(Tuple::new(
            e.mary,
            vec![
                Value::str("Mary"),
                Value::str("Smith"),
                Value::str("2 Small St"),
                Value::int(80),
                Value::str("divorced"),
            ],
        ))
        .unwrap();
    spec.copy_mut(0).set_mapping(new_tuple, e.sp[2]);
    spec.validate().unwrap();
    let q2 = e.q2().to_query(5);
    // The answer under ρ₁ is Smith in every consistent completion.
    let ans = certain_answers(&spec, &q2, &opts()).unwrap();
    assert_eq!(ans.rows().unwrap(), &[vec![Value::str("Smith")]]);
    let sources: BTreeSet<_> = [e.mgr].into();
    let problem = PreservationProblem {
        spec: &spec,
        sources: &sources,
        query: &q2,
    };
    assert!(
        cpp(&problem, &opts()).unwrap(),
        "copying more of Mgr (s′1) does not change Q2's answer (Example 4.1)"
    );
}

#[test]
fn example_4_1_maximum_extension_exists() {
    let e = scenarios::example_4_1();
    let sources: BTreeSet<_> = [e.mgr].into();
    let maxed = maximum_extension(&e.spec, &sources).unwrap();
    assert!(cps(&maxed).unwrap());
    assert!(
        maxed.total_copy_size() > e.spec.total_copy_size(),
        "the greedy maximum extension imports additional manager records"
    );
}

// Silence an unused-import lint if the attr module shrinks.
#[allow(dead_code)]
fn _touch(_: AttrId) {}
