//! Differential testing of the entity-partitioned [`CurrencyEngine`]
//! against the monolithic whole-specification SAT path and the
//! brute-force completion-enumeration oracle.
//!
//! Specifications come from `currency-datagen`'s seeded generator and
//! include multi-entity instances with copy functions — the copy
//! functions merge target and source entities into shared components, so
//! the partitions these cases exercise are non-trivial (fewer components
//! than cells, more than one component overall).

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::{AttrId, Eid, RelId, Specification, Value};
use data_currency::query::Query;
use data_currency::reason::{
    ccqa_exact, ccqa_exact_monolithic, certain_answers_exact, certain_answers_exact_monolithic,
    cop_exact, cop_exact_monolithic, cps_enumerate, cps_exact, cps_exact_monolithic, dcip_exact,
    dcip_exact_monolithic, encode::Encoding, enumerate::for_each_consistent_completion,
    witness_completion, witness_completion_monolithic, CurrencyEngine, CurrencyOrderQuery, Options,
    TransitivityMode,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

const T: RelId = RelId(0);

fn config(seed: u64, constrained: bool, with_copy: bool) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 3,
        tuples_per_entity: (1, 3),
        attrs: 2,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: usize::from(constrained),
        correlated_constraints: usize::from(constrained) * ((seed % 2) as usize),
        with_copy,
        seed,
    }
}

/// Smaller shape for comparisons involving the factorial-cost completion
/// enumerator (the oracle's candidate space is the product of per-cell
/// factorials, so cells must stay few and small).
fn oracle_config(seed: u64, constrained: bool, with_copy: bool) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 2,
        tuples_per_entity: (1, 3),
        attrs: 1,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: usize::from(constrained),
        correlated_constraints: 0,
        with_copy,
        seed,
    }
}

fn value_query(rel: RelId, arity: usize) -> Query {
    data_currency::query::SpQuery::identity(rel, arity).to_query(arity)
}

/// Certain answers via the brute-force completion enumerator.
fn certain_by_enumeration(
    spec: &Specification,
    query: &Query,
) -> data_currency::reason::CertainAnswers {
    use data_currency::query::Database;
    let mut acc: Option<BTreeSet<Vec<Value>>> = None;
    let count = for_each_consistent_completion(spec, 2_000_000, |completion| {
        let dbs = data_currency::model::lst(spec, completion);
        let db = Database::new(&dbs);
        let answers: BTreeSet<Vec<Value>> = query.eval(&db).into_iter().collect();
        acc = Some(match acc.take() {
            None => answers,
            Some(prev) => prev.intersection(&answers).cloned().collect(),
        });
        true
    })
    .expect("enumeration in budget");
    if count == 0 {
        data_currency::reason::CertainAnswers::Inconsistent
    } else {
        data_currency::reason::CertainAnswers::Answers(
            acc.unwrap_or_default().into_iter().collect(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn engine_cps_matches_monolithic(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed, true, seed % 2 == 0));
        let engine = cps_exact(&spec).unwrap();
        let mono = cps_exact_monolithic(&spec).unwrap();
        prop_assert_eq!(engine, mono, "seed {}", seed);
    }

    #[test]
    fn engine_cps_matches_oracle(seed in 0u64..10_000) {
        let spec = random_spec(&oracle_config(seed, true, seed % 2 == 0));
        let engine = cps_exact(&spec).unwrap();
        let brute = cps_enumerate(&spec, 2_000_000).unwrap();
        prop_assert_eq!(engine, brute, "seed {}", seed);
    }

    #[test]
    fn engine_cop_matches_monolithic(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed, true, seed % 2 == 0));
        let inst = spec.instance(T);
        for a in 0..inst.arity() {
            let attr = AttrId(a as u32);
            for u in 0..inst.len() as u32 {
                for v in 0..inst.len() as u32 {
                    let q = CurrencyOrderQuery::single(
                        T,
                        attr,
                        data_currency::model::TupleId(u),
                        data_currency::model::TupleId(v),
                    );
                    prop_assert_eq!(
                        cop_exact(&spec, &q).unwrap(),
                        cop_exact_monolithic(&spec, &q).unwrap(),
                        "seed {} attr {:?} {} ≺ {}", seed, attr, u, v
                    );
                }
            }
        }
    }

    #[test]
    fn engine_dcip_matches_monolithic(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed, true, seed % 3 == 0));
        let opts = Options::default();
        prop_assert_eq!(
            dcip_exact(&spec, T, &opts).unwrap(),
            dcip_exact_monolithic(&spec, T, &opts).unwrap(),
            "seed {}", seed
        );
    }

    #[test]
    fn engine_ccqa_matches_monolithic(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed, true, seed % 2 == 0));
        let q = value_query(T, spec.instance(T).arity());
        let opts = Options::default();
        let engine = certain_answers_exact(&spec, &q, &opts).unwrap();
        let mono = certain_answers_exact_monolithic(&spec, &q, &opts).unwrap();
        prop_assert_eq!(&engine, &mono, "seed {}", seed);
        // Membership probes agree too (vacuous-truth convention included).
        let probe = vec![Value::int(0), Value::int(1)];
        prop_assert_eq!(
            ccqa_exact(&spec, &q, &probe, &opts).unwrap(),
            ccqa_exact_monolithic(&spec, &q, &probe, &opts).unwrap(),
            "seed {}", seed
        );
    }

    #[test]
    fn engine_ccqa_matches_oracle(seed in 0u64..10_000) {
        let spec = random_spec(&oracle_config(seed, true, seed % 2 == 0));
        let q = value_query(T, spec.instance(T).arity());
        let opts = Options::default();
        let engine = certain_answers_exact(&spec, &q, &opts).unwrap();
        let brute = certain_by_enumeration(&spec, &q);
        prop_assert_eq!(&engine, &brute, "seed {}", seed);
    }

    #[test]
    fn engine_witness_is_a_consistent_completion(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed, true, seed % 2 == 0));
        let engine_witness = witness_completion(&spec).unwrap();
        let mono_witness = witness_completion_monolithic(&spec).unwrap();
        // Witnesses need not be identical (any consistent completion is a
        // valid witness), but existence must agree and each witness must
        // actually be consistent.
        prop_assert_eq!(engine_witness.is_some(), mono_witness.is_some(), "seed {}", seed);
        if let Some(w) = engine_witness {
            prop_assert!(w.is_consistent_for(&spec), "seed {}", seed);
        }
    }

    #[test]
    fn lazy_and_eager_transitivity_agree(seed in 0u64..10_000) {
        // The acceptance sweep: lazy and eager grounding must produce
        // identical CPS/COP/DCIP verdicts, identical certain answers, and
        // identical realizable-current-instance counts on every seed.
        let spec = random_spec(&config(seed, true, seed % 2 == 0));
        let mode_opts = |transitivity| Options { transitivity, ..Options::default() };
        let lazy = CurrencyEngine::new(&spec, &mode_opts(TransitivityMode::Lazy)).unwrap();
        let eager = CurrencyEngine::new(&spec, &mode_opts(TransitivityMode::Eager)).unwrap();
        // Var-count parity: order-variable allocation (with unreferenced
        // attributes pruned) is mode-independent, both per component and
        // monolithically; component-scoped pruning is at least as sharp as
        // the whole-specification encoding's (a rule references an
        // attribute only within its own component), never sharper the
        // other way.
        prop_assert_eq!(lazy.stats().vars, eager.stats().vars, "seed {}", seed);
        let all_rels: Vec<RelId> = spec.instances().iter().map(|i| i.rel()).collect();
        let mono_eager = Encoding::new(&spec, &all_rels).unwrap();
        let mono_lazy =
            Encoding::with_mode(&spec, &all_rels, TransitivityMode::Lazy).unwrap();
        prop_assert_eq!(
            mono_eager.num_vars(),
            mono_lazy.num_vars(),
            "seed {}", seed
        );
        prop_assert!(lazy.stats().vars <= mono_eager.num_vars(), "seed {}", seed);
        // CPS.
        prop_assert_eq!(lazy.cps().unwrap(), eager.cps().unwrap(), "seed {}", seed);
        // COP over every pair of the target relation.
        let inst = spec.instance(T);
        for a in 0..inst.arity() {
            let attr = AttrId(a as u32);
            for u in 0..inst.len() as u32 {
                for v in 0..inst.len() as u32 {
                    let q = CurrencyOrderQuery::single(
                        T,
                        attr,
                        data_currency::model::TupleId(u),
                        data_currency::model::TupleId(v),
                    );
                    prop_assert_eq!(
                        lazy.cop(&q).unwrap(),
                        eager.cop(&q).unwrap(),
                        "seed {} attr {:?} {} ≺ {}", seed, attr, u, v
                    );
                }
            }
        }
        // DCIP, certain answers, and model counts per relation.
        let q = value_query(T, inst.arity());
        prop_assert_eq!(
            lazy.certain_answers(&q).unwrap(),
            eager.certain_answers(&q).unwrap(),
            "seed {}", seed
        );
        for &rel in &all_rels {
            prop_assert_eq!(
                lazy.dcip(rel).unwrap(),
                eager.dcip(rel).unwrap(),
                "seed {} rel {:?}", seed, rel
            );
            prop_assert_eq!(
                lazy.current_instances(rel).unwrap().len(),
                eager.current_instances(rel).unwrap().len(),
                "seed {} rel {:?} model count", seed, rel
            );
        }
    }

    #[test]
    fn persistent_engine_answers_repeated_queries(seed in 0u64..10_000) {
        // The amortized path: one engine, many queries — must agree with
        // the per-call one-shot functions.
        let spec = random_spec(&config(seed, true, true));
        let engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        prop_assert_eq!(engine.cps().unwrap(), cps_exact_monolithic(&spec).unwrap());
        let inst = spec.instance(T);
        for u in 0..inst.len() as u32 {
            for v in 0..inst.len() as u32 {
                let q = CurrencyOrderQuery::single(
                    T,
                    AttrId(0),
                    data_currency::model::TupleId(u),
                    data_currency::model::TupleId(v),
                );
                prop_assert_eq!(
                    engine.cop(&q).unwrap(),
                    cop_exact_monolithic(&spec, &q).unwrap(),
                    "seed {} {} ≺ {}", seed, u, v
                );
            }
        }
        let q = value_query(T, inst.arity());
        let opts = Options::default();
        prop_assert_eq!(
            engine.certain_answers(&q).unwrap(),
            certain_answers_exact_monolithic(&spec, &q, &opts).unwrap(),
            "seed {}", seed
        );
        prop_assert_eq!(
            engine.dcip(T).unwrap(),
            dcip_exact_monolithic(&spec, T, &opts).unwrap(),
            "seed {}", seed
        );
    }
}

#[test]
fn copy_functions_force_nontrivial_partitions() {
    // Sanity-check the test distribution itself: with copy functions the
    // partition must actually merge target and source entities (fewer
    // components than cells) while keeping more than one component.
    let mut saw_merged = 0usize;
    for seed in 0..20u64 {
        let spec = random_spec(&config(seed, true, true));
        let engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        let stats = engine.stats();
        assert!(stats.components >= 1);
        if stats.components > 1 && stats.components < stats.cells {
            saw_merged += 1;
        }
    }
    assert!(
        saw_merged >= 10,
        "expected most seeds to produce merged multi-component partitions, got {saw_merged}/20"
    );
}

#[test]
fn engine_dcip_agrees_for_copied_relation_too() {
    let src = RelId(1);
    for seed in 0..30u64 {
        let spec = random_spec(&config(seed, true, true));
        let opts = Options::default();
        assert_eq!(
            dcip_exact(&spec, src, &opts).unwrap(),
            dcip_exact_monolithic(&spec, src, &opts).unwrap(),
            "seed {seed}"
        );
    }
}

#[test]
fn engine_handles_unknown_entities_gracefully() {
    let spec = random_spec(&config(1, true, false));
    let engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
    assert!(engine.partition().component_of(T, Eid(999)).is_none());
    // Out-of-range tuple ids are "never certain", like the monolithic path.
    let q = CurrencyOrderQuery::single(
        T,
        AttrId(0),
        data_currency::model::TupleId(0),
        data_currency::model::TupleId(250),
    );
    assert_eq!(
        engine.cop(&q).unwrap(),
        cop_exact_monolithic(&spec, &q).unwrap()
    );
}
