//! Chaos differential suite: seeded update streams under randomized
//! I/O-fault schedules.
//!
//! Each seed drives the same three-phase experiment:
//!
//! 1. **Dry run** — the workload (create a store, stream deltas, reopen)
//!    executes against a fault-free [`ChaosVfs`], which counts every
//!    filesystem operation the store issues.  That count is the horizon
//!    faults can land in.
//! 2. **Chaos run** — the identical workload repeats under a
//!    seed-derived [`ChaosPlan`] (outright I/O errors, short writes,
//!    fsync failures, torn renames).  Every failure must be a clean
//!    typed [`StoreError`] — never a panic — and the first write failure
//!    must leave the store **fail-stop** (every later mutation refused
//!    as [`StoreError::Poisoned`]).
//! 3. **Differential reopen** — the damaged directory is reopened with
//!    the real filesystem.  A surviving open must land on a
//!    **prefix-consistent** state: byte-identical (canonical wire
//!    encoding) to the never-faulted shadow after some prefix of the
//!    stream, no shorter than the durably acknowledged prefix — and must
//!    agree with a fresh in-memory engine over that prefix on CPS,
//!    all-pairs COP, and certain current answers.  A failed reopen is
//!    only acceptable when a fault was actually injected.

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::wire::encode_spec;
use data_currency::model::{
    AttrId, CmpOp, DenialConstraint, Eid, RelId, SpecDelta, Specification, Term, Tuple, TupleId,
    Value,
};
use data_currency::query::{Query, SpQuery};
use data_currency::reason::{CurrencyEngine, CurrencyOrderQuery, Options};
use data_currency::store::{ChaosPlan, ChaosVfs, DurableEngine, StoreError, StoreOptions};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const T: RelId = RelId(0);
/// Deltas per stream.
const STREAM_LEN: usize = 8;
/// Faults scheduled per chaos run.
const FAULTS: usize = 2;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("currency-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 2,
        tuples_per_entity: (1, 2),
        attrs: 1,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: (seed % 2) as usize,
        correlated_constraints: 0,
        with_copy: false,
        seed,
    }
}

/// Draw one admissible delta against the current specification: inserts,
/// retractions, same-entity order edges, and the occasional learned
/// constraint.
fn random_delta(spec: &Specification, rng: &mut SmallRng) -> SpecDelta {
    let inst = spec.instance(T);
    let arity = inst.arity();
    let live: Vec<TupleId> = inst.tuples().map(|(id, _)| id).collect();
    let mut delta = SpecDelta::new();
    match rng.gen_range(0..10u32) {
        0..=4 => {
            let eid = Eid(rng.gen_range(0..3u64));
            let values: Vec<Value> = (0..arity)
                .map(|_| Value::int(rng.gen_range(0..2)))
                .collect();
            delta.insert_tuple(T, Tuple::new(eid, values));
        }
        5..=6 if !live.is_empty() => {
            let victim = live[rng.gen_range(0..live.len())];
            delta.remove_tuple(T, victim);
        }
        7..=8 => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let mut found = None;
            'outer: for (i, &u) in live.iter().enumerate() {
                for &v in &live[i + 1..] {
                    if inst.tuple(u).eid == inst.tuple(v).eid && !inst.order(attr).contains(u, v) {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            match found {
                Some((u, v)) => {
                    delta.add_order_edge(T, attr, u, v);
                }
                None => {
                    delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
                }
            }
        }
        _ => {
            let attr = AttrId(rng.gen_range(0..arity) as u32);
            let dc = DenialConstraint::builder(T, 2)
                .when_cmp(Term::attr(0, attr), CmpOp::Gt, Term::attr(1, attr))
                .then_order(1, attr, 0)
                .build()
                .expect("valid constraint");
            delta.add_constraint(dc);
        }
    }
    if delta.is_empty() {
        delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(0); arity]));
    }
    delta
}

/// The seeded workload: the base spec, the delta stream, and the shadow
/// (never-faulted) state after each prefix.
struct Workload {
    spec: Specification,
    deltas: Vec<SpecDelta>,
    /// `prefixes[k]` = canonical encoding after the first `k` deltas.
    prefixes: Vec<Vec<u8>>,
    /// The full shadow specification after each prefix (for the
    /// differential engine comparison).
    shadows: Vec<Specification>,
}

fn workload(seed: u64) -> Workload {
    let spec = random_spec(&config(seed));
    let mut shadow = spec.clone();
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xC2B2_AE3D));
    let mut deltas = Vec::new();
    let mut prefixes = vec![encode_spec(&shadow)];
    let mut shadows = vec![shadow.clone()];
    for _ in 0..STREAM_LEN {
        let delta = random_delta(&shadow, &mut rng);
        shadow.apply_delta(&delta).expect("admissible by draw");
        deltas.push(delta);
        prefixes.push(encode_spec(&shadow));
        shadows.push(shadow.clone());
    }
    Workload {
        spec,
        deltas,
        prefixes,
        shadows,
    }
}

/// Run create + stream + reopen fault-free, returning the operation
/// horizon for the fault schedule.
fn dry_run_horizon(w: &Workload, dir: &Path, opts: &Options, store: StoreOptions) -> u64 {
    let probe = Arc::new(ChaosVfs::new(ChaosPlan::new()));
    let mut durable =
        DurableEngine::create_with_vfs(probe.clone(), dir, w.spec.clone(), opts, store)
            .expect("fault-free create");
    for delta in &w.deltas {
        durable.apply(delta).expect("fault-free apply");
    }
    drop(durable);
    drop(DurableEngine::open_with_vfs(probe.clone(), dir, opts, store).expect("fault-free reopen"));
    probe.ops()
}

/// Stream the workload's deltas into a chaos-backed store.  Returns the
/// count of acknowledged (successfully applied) deltas.  Verifies the
/// fail-stop contract at the first failure.
fn chaos_stream(
    w: &Workload,
    vfs: &Arc<ChaosVfs>,
    dir: &Path,
    opts: &Options,
    store: StoreOptions,
    seed: u64,
) -> Result<usize, StoreError> {
    let mut durable =
        DurableEngine::create_with_vfs(vfs.clone(), dir, w.spec.clone(), opts, store)?;
    let mut acked = 0;
    for (step, delta) in w.deltas.iter().enumerate() {
        match durable.apply(delta) {
            Ok(_) => acked += 1,
            Err(first) => {
                assert!(
                    !format!("{first}").is_empty(),
                    "typed, displayable error (seed {seed} step {step})"
                );
                // Fail-stop: the deltas are admissible by construction,
                // so this failure was a write failure, and every further
                // mutation must be refused until a reopen.
                assert!(
                    matches!(durable.apply(delta), Err(StoreError::Poisoned { .. })),
                    "post-fault mutation must be refused (seed {seed} step {step})"
                );
                assert!(
                    matches!(durable.compact(), Err(StoreError::Poisoned { .. })),
                    "post-fault compaction must be refused (seed {seed} step {step})"
                );
                break;
            }
        }
    }
    Ok(acked)
}

/// Assert the recovered store agrees with a fresh in-memory engine over
/// the same prefix on CPS, all-pairs COP, and certain current answers.
fn assert_prefix_agreement(durable: &DurableEngine, shadow_spec: &Specification, seed: u64) {
    let opts = Options::default();
    let shadow = CurrencyEngine::new_owned(shadow_spec.clone(), &opts).expect("shadow engine");
    assert_eq!(
        durable.cps().expect("in budget"),
        shadow.cps().unwrap(),
        "CPS diverged (seed {seed})"
    );
    let inst = durable.spec().instance(T);
    for a in 0..inst.arity() {
        let attr = AttrId(a as u32);
        for u in 0..inst.len() as u32 {
            for v in 0..inst.len() as u32 {
                let q = CurrencyOrderQuery::single(T, attr, TupleId(u), TupleId(v));
                assert_eq!(
                    durable.cop(&q).unwrap(),
                    shadow.cop(&q).unwrap(),
                    "COP diverged (seed {seed}, {u} ≺ {v})"
                );
            }
        }
    }
    let q: Query = SpQuery::identity(T, inst.arity()).to_query(inst.arity());
    assert_eq!(
        durable.certain_answers(&q).expect("in budget"),
        shadow.certain_answers(&q).unwrap(),
        "certain answers diverged (seed {seed})"
    );
}

/// The full three-phase experiment for one seed.
fn chaos_round(seed: u64) {
    let opts = Options::default();
    // Real durability settings: syncs on, so fsync faults land on real
    // sync points.
    let store = StoreOptions::default();
    let w = workload(seed);

    let dry_dir = tmpdir(&format!("dry-{seed}"));
    let horizon = dry_run_horizon(&w, &dry_dir, &opts, store);

    let dir = tmpdir(&format!("run-{seed}"));
    let chaos = Arc::new(ChaosVfs::new(ChaosPlan::from_seed(seed, horizon, FAULTS)));
    let outcome = chaos_stream(&w, &chaos, &dir, &opts, store, seed);
    let acked = match outcome {
        Ok(acked) => Some(acked),
        Err(e) => {
            assert!(!format!("{e}").is_empty(), "typed create failure");
            assert!(chaos.injected() > 0, "create only fails under a fault");
            None
        }
    };

    // Differential reopen against the real filesystem.
    match DurableEngine::open(&dir, &opts, store) {
        Ok(recovered) => {
            let survived = recovered.seq() as usize;
            assert!(
                survived <= STREAM_LEN,
                "recovered past the stream (seed {seed})"
            );
            if let Some(acked) = acked {
                // Acknowledged records were flushed (group commit 1), so
                // recovery reaches at least them; the record whose write
                // *failed* may or may not have become durable, never more.
                assert!(
                    (acked..=(acked + 1).min(STREAM_LEN)).contains(&survived),
                    "seed {seed}: {acked} acked but {survived} recovered"
                );
            }
            assert_eq!(
                encode_spec(recovered.spec()),
                w.prefixes[survived],
                "recovered state is not the {survived}-prefix (seed {seed})"
            );
            assert_prefix_agreement(&recovered, &w.shadows[survived], seed);
        }
        Err(e) => {
            assert!(!format!("{e}").is_empty(), "typed reopen failure");
            assert!(
                chaos.injected() > 0,
                "reopen of an unfaulted store must succeed (seed {seed}): {e}"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dry_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    // Randomized schedules across the 10k-seed space.
    #[test]
    fn seeded_fault_schedules_keep_recovery_prefix_consistent(seed in 0u64..10_000) {
        chaos_round(seed);
    }
}

/// The CI anchor: one pinned seed (overridable via `CHAOS_SEED`) so the
/// chaos step is byte-for-byte reproducible across runs and machines.
#[test]
fn pinned_seed_chaos_round() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_808u64);
    chaos_round(seed);
    // A couple of neighbors so the pinned run still covers several
    // schedule shapes.
    chaos_round(seed.wrapping_add(1));
    chaos_round(seed.wrapping_add(2));
}
