//! Differential testing: the SAT-based exact solvers, the brute-force
//! completion enumerator, and the PTIME special-case algorithms must agree
//! wherever their domains overlap.
//!
//! * CPS: SAT ≡ enumeration on arbitrary specs; SAT ≡ `PO∞` fixpoint on
//!   constraint-free specs.
//! * COP: `PO∞` is *certain* and *maximal* (paper Lemma 6.2) — a pair is
//!   entailed by the SAT encoding iff it lies in `PO∞`.
//! * DCIP: SAT ≡ sink test on constraint-free specs.
//! * CCQA: SAT-enumerated certain answers ≡ completion-enumerated certain
//!   answers on constrained specs, and ≡ the `poss(S)` algorithm for SP
//!   queries on constraint-free specs.

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::{AttrId, RelId, Specification, Value};
use data_currency::query::{Database, SpCondition, SpQuery};
use data_currency::reason::{
    certain_answers_exact, certain_answers_sp, cop_exact, cps_enumerate, cps_exact, cps_ptime,
    dcip_exact, dcip_ptime, enumerate::for_each_consistent_completion, po_infinity, CertainAnswers,
    CurrencyOrderQuery, Options,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

const T: RelId = RelId(0);

fn small_config(seed: u64, constrained: bool, with_copy: bool) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 2,
        tuples_per_entity: (1, 3),
        attrs: 2,
        value_pool: 2,
        order_density: 0.25,
        monotone_constraints: usize::from(constrained),
        correlated_constraints: usize::from(constrained) * ((seed % 2) as usize),
        with_copy,
        seed,
    }
}

/// Certain answers via the brute-force completion enumerator.
fn certain_by_enumeration(
    spec: &Specification,
    query: &data_currency::query::Query,
) -> CertainAnswers {
    let mut acc: Option<BTreeSet<Vec<Value>>> = None;
    let count = for_each_consistent_completion(spec, 2_000_000, |completion| {
        let dbs = data_currency::model::lst(spec, completion);
        let db = Database::new(&dbs);
        let answers: BTreeSet<Vec<Value>> = query.eval(&db).into_iter().collect();
        acc = Some(match acc.take() {
            None => answers,
            Some(prev) => prev.intersection(&answers).cloned().collect(),
        });
        true
    })
    .expect("enumeration in budget");
    if count == 0 {
        CertainAnswers::Inconsistent
    } else {
        CertainAnswers::Answers(acc.unwrap_or_default().into_iter().collect())
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn cps_sat_agrees_with_enumeration(seed in 0u64..10_000) {
        let spec = random_spec(&small_config(seed, true, seed % 3 == 0));
        let exact = cps_exact(&spec).unwrap();
        let brute = cps_enumerate(&spec, 2_000_000).unwrap();
        prop_assert_eq!(exact, brute, "seed {}", seed);
    }

    #[test]
    fn cps_ptime_agrees_with_sat_without_constraints(seed in 0u64..10_000) {
        let spec = random_spec(&small_config(seed, false, seed % 2 == 0));
        prop_assert_eq!(cps_ptime(&spec).unwrap(), cps_exact(&spec).unwrap());
    }

    #[test]
    fn po_infinity_is_certain_and_maximal(seed in 0u64..10_000) {
        // Lemma 6.2: PO∞ = ⋂ of all completions' orders.
        let spec = random_spec(&small_config(seed, false, true));
        let Some(po) = po_infinity(&spec).unwrap() else {
            // Inconsistent: every ordering is vacuously certain.
            prop_assert!(cps_exact(&spec).map(|c| !c).unwrap());
            return Ok(());
        };
        if !cps_exact(&spec).unwrap() {
            return Ok(()); // should not happen: PO∞ exists ⇒ consistent
        }
        for inst in spec.instances() {
            let rel = inst.rel();
            for a in 0..inst.arity() {
                let attr = AttrId(a as u32);
                for (_eid, group) in inst.entity_groups() {
                    for &u in group {
                        for &v in group {
                            if u == v {
                                continue;
                            }
                            let certain_po = po.certain(rel, attr, u, v);
                            let q = CurrencyOrderQuery::single(rel, attr, u, v);
                            let certain_sat = cop_exact(&spec, &q).unwrap();
                            prop_assert_eq!(
                                certain_po, certain_sat,
                                "seed {} rel {:?} attr {:?} {} ≺ {}", seed, rel, attr, u, v
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dcip_ptime_agrees_with_sat_without_constraints(seed in 0u64..10_000) {
        let spec = random_spec(&small_config(seed, false, seed % 2 == 0));
        prop_assert_eq!(
            dcip_ptime(&spec, T).unwrap(),
            dcip_exact(&spec, T, &Options::default()).unwrap()
        );
    }

    #[test]
    fn ccqa_sat_agrees_with_completion_enumeration(seed in 0u64..10_000) {
        let spec = random_spec(&small_config(seed, true, false));
        let q = SpQuery::identity(T, 2).to_query(2);
        let sat = certain_answers_exact(&spec, &q, &Options::default()).unwrap();
        let brute = certain_by_enumeration(&spec, &q);
        prop_assert_eq!(sat, brute, "seed {}", seed);
    }

    #[test]
    fn ccqa_sp_agrees_with_exact_without_constraints(seed in 0u64..10_000, sel in 0i64..2) {
        let spec = random_spec(&small_config(seed, false, seed % 2 == 1));
        let sp = SpQuery {
            rel: T,
            projection: vec![AttrId(1)],
            conditions: vec![SpCondition::AttrConst(AttrId(0), Value::int(sel))],
        };
        let fast = certain_answers_sp(&spec, &sp).unwrap();
        let exact =
            certain_answers_exact(&spec, &sp.to_query(2), &Options::default()).unwrap();
        prop_assert_eq!(fast, exact, "seed {}", seed);
    }
}
