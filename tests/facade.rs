//! Facade-level API coverage: the prelude, option budgets, error
//! surfaces, and rendering — the parts a downstream user touches first.

use data_currency::prelude::*;
use data_currency::reason::enumerate::all_consistent_completions;

fn two_value_spec(n: usize) -> (Specification, RelId) {
    let mut cat = Catalog::new();
    let r = cat.add(RelationSchema::new("R", &["A"]));
    let mut spec = Specification::new(cat);
    for i in 0..n {
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(0), vec![Value::int(i as i64)]))
            .unwrap();
    }
    (spec, r)
}

#[test]
fn prelude_exposes_the_working_set() {
    // Compile-time check that the prelude covers model + reason + query
    // items; runtime sanity on a two-tuple entity.
    let (spec, r) = two_value_spec(2);
    assert!(cps(&spec).unwrap());
    let q = CurrencyOrderQuery::single(r, AttrId(0), TupleId(0), TupleId(1));
    assert!(!cop(&spec, &q).unwrap());
    assert!(!dcip(&spec, r, &Options::default()).unwrap());
}

#[test]
fn model_budget_is_enforced() {
    // Ten tuples with ten distinct values: 10 realizable current
    // instances; a budget of 4 must surface as BudgetExceeded, not as a
    // wrong answer.  (DCIP stops after two distinct instances by design,
    // so the budget bites in the full certain-answer enumeration.)
    let (spec, r) = two_value_spec(10);
    let q = data_currency::query::SpQuery::identity(r, 1).to_query(1);
    let tight = Options {
        max_models: 4,
        ..Options::default()
    };
    let err = certain_answers_exact(&spec, &q, &tight).unwrap_err();
    assert!(matches!(err, ReasonError::BudgetExceeded { .. }));
    // A sufficient budget answers correctly (nothing is certain).
    let ans = certain_answers_exact(&spec, &q, &Options::default()).unwrap();
    assert!(ans.rows().unwrap().is_empty());
    // DCIP itself needs only two models regardless of the budget.
    assert!(!dcip_exact(&spec, r, &tight).unwrap());
}

#[test]
fn enumeration_budget_is_enforced() {
    let (spec, _) = two_value_spec(8); // 8! = 40320 completions
    assert!(matches!(
        all_consistent_completions(&spec, 1000),
        Err(ReasonError::BudgetExceeded { .. })
    ));
}

#[test]
fn errors_render_with_context() {
    let (mut spec, r) = two_value_spec(2);
    let bad = Tuple::new(Eid(0), vec![Value::int(1), Value::int(2)]);
    let err = spec.instance_mut(r).push_tuple(bad).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("R") && msg.contains("1") && msg.contains("2"),
        "{msg}"
    );
}

#[test]
fn render_roundtrip_smoke() {
    let (spec, _) = two_value_spec(3);
    let text = render_spec(&spec);
    assert!(text.contains("R(EID, A)"));
    assert!(text.contains("t2"));
}

#[test]
fn sat_substrate_is_reachable() {
    use data_currency::sat::{SolveResult, Solver};
    let mut s = Solver::new();
    let v = s.new_var();
    s.add_clause(&[v.pos()]);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.model_value(v));
}

#[test]
fn query_classification_via_facade() {
    use data_currency::query::{classify, parse_query, QueryClass};
    let (spec, _) = two_value_spec(1);
    let q = parse_query(spec.catalog(), "Q(x) :- R(x)").unwrap();
    assert_eq!(classify(&q), QueryClass::Sp);
    let q2 = parse_query(spec.catalog(), "Q(x) :- R(x) and not R(x)").unwrap();
    assert_eq!(classify(&q2), QueryClass::Fo);
}

#[test]
fn explain_via_facade() {
    let (mut spec, r) = two_value_spec(2);
    spec.instance_mut(r)
        .add_order(AttrId(0), TupleId(0), TupleId(1))
        .unwrap();
    spec.instance_mut(r)
        .add_order(AttrId(0), TupleId(1), TupleId(0))
        .unwrap();
    let core = explain_inconsistency(&spec).unwrap().expect("inconsistent");
    assert_eq!(core.components.len(), 2);
}
