//! Differential testing of the currency-preservation algorithms: the
//! PTIME SP algorithm of Theorem 6.4 against the exact extension
//! enumeration, plus end-to-end BCP/ECP properties.

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::RelId;
use data_currency::query::SpQuery;
use data_currency::reason::{
    bcp, bcp_sp, cpp, cpp_sp, cps, ecp, maximum_extension, Options, PreservationProblem,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

const T: RelId = RelId(0);
const SRC: RelId = RelId(1);

fn config(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 2,
        tuples_per_entity: (1, 3),
        attrs: 1,
        value_pool: 2,
        order_density: 0.3,
        monotone_constraints: 0,
        correlated_constraints: 0,
        with_copy: true,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn cpp_sp_agrees_with_exact_cpp(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed));
        let sources: BTreeSet<RelId> = [SRC].into();
        let sp = SpQuery::identity(T, 1);
        let query = sp.to_query(1);
        let problem = PreservationProblem {
            spec: &spec,
            sources: &sources,
            query: &query,
        };
        let exact = cpp(&problem, &Options::default()).unwrap();
        let fast = cpp_sp(&spec, &sources, &sp).unwrap();
        prop_assert_eq!(fast, exact, "seed {}", seed);
    }

    #[test]
    fn bcp_sp_agrees_with_exact_bcp(seed in 0u64..10_000, k in 0usize..3) {
        let spec = random_spec(&config(seed));
        let sources: BTreeSet<RelId> = [SRC].into();
        let sp = SpQuery::identity(T, 1);
        let query = sp.to_query(1);
        let problem = PreservationProblem {
            spec: &spec,
            sources: &sources,
            query: &query,
        };
        let exact = bcp(&problem, k, &Options::default()).unwrap();
        let fast = bcp_sp(&spec, &sources, &sp, k, &Options::default()).unwrap();
        prop_assert_eq!(fast, exact, "seed {} k {}", seed, k);
    }

    #[test]
    fn maximum_extension_is_always_currency_preserving(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed));
        if !cps(&spec).unwrap() {
            return Ok(());
        }
        let sources: BTreeSet<RelId> = [SRC].into();
        let maxed = maximum_extension(&spec, &sources).unwrap();
        prop_assert!(cps(&maxed).unwrap());
        let sp = SpQuery::identity(T, 1);
        let query = sp.to_query(1);
        let problem = PreservationProblem {
            spec: &maxed,
            sources: &sources,
            query: &query,
        };
        // Proposition 5.2: the greedy maximum extension is currency
        // preserving for *every* query; check it for the identity query.
        prop_assert!(cpp(&problem, &Options::default()).unwrap(), "seed {}", seed);
    }

    #[test]
    fn ecp_equals_consistency(seed in 0u64..10_000) {
        let spec = random_spec(&config(seed));
        let sources: BTreeSet<RelId> = [SRC].into();
        let sp = SpQuery::identity(T, 1);
        let query = sp.to_query(1);
        let problem = PreservationProblem {
            spec: &spec,
            sources: &sources,
            query: &query,
        };
        prop_assert_eq!(ecp(&problem).unwrap(), cps(&spec).unwrap());
    }

    #[test]
    fn bcp_is_monotone_in_k(seed in 0u64..5_000) {
        let spec = random_spec(&config(seed));
        let sources: BTreeSet<RelId> = [SRC].into();
        let sp = SpQuery::identity(T, 1);
        let query = sp.to_query(1);
        let problem = PreservationProblem {
            spec: &spec,
            sources: &sources,
            query: &query,
        };
        let mut prev = false;
        for k in 0..3 {
            let now = bcp(&problem, k, &Options::default()).unwrap();
            prop_assert!(!prev || now, "BCP answer must be monotone in k (seed {})", seed);
            prev = now;
        }
    }
}
