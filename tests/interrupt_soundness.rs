//! Interrupted-solve soundness: a budget-interrupted verdict is only
//! ever *absent*, never *wrong*.
//!
//! For seeded random specifications, every decision surface exposed to
//! bounded callers (COP, DCIP, certain current answers) is evaluated
//! under an escalating per-solve budget 1, 2, 4, … conflicts and
//! propagations.  Each bounded round either returns a verdict or
//! [`ReasonError::Interrupted`]; the **first** verdict a bounded run
//! produces must equal the unbounded oracle verdict — interruption must
//! not leak a partial solver state into a wrong answer on resume.

use data_currency::datagen::random::{random_spec, RandomSpecConfig};
use data_currency::model::{AttrId, RelId, TupleId};
use data_currency::query::{Query, SpQuery};
use data_currency::reason::{
    CurrencyOrderQuery, Options, ReasonError, SnapshotEngine, SnapshotReader, SolveLimits,
};
use proptest::prelude::*;

const T: RelId = RelId(0);

fn config(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 3,
        tuples_per_entity: (1, 3),
        attrs: 2,
        value_pool: 3,
        order_density: 0.25,
        monotone_constraints: (seed % 3) as usize,
        correlated_constraints: (seed % 2) as usize,
        with_copy: seed.is_multiple_of(2),
        seed,
    }
}

/// Escalate a bounded evaluation until it produces a verdict, asserting
/// the verdict equals the unbounded oracle's.  Returns the number of
/// rounds that were interrupted before convergence.
fn escalate<V, F>(reader: &mut SnapshotReader, mut run: F, oracle: &V, what: &str, seed: u64) -> u32
where
    V: PartialEq + std::fmt::Debug,
    F: FnMut(&mut SnapshotReader) -> Result<V, ReasonError>,
{
    let mut budget = 1u64;
    let mut interrupted_rounds = 0u32;
    loop {
        reader.set_solve_limits(Some(SolveLimits {
            max_conflicts: Some(budget),
            max_props: Some(budget),
        }));
        match run(reader) {
            Ok(verdict) => {
                assert_eq!(
                    &verdict, oracle,
                    "{what}: first bounded verdict (budget {budget}) diverged \
                     from the unbounded oracle (seed {seed})"
                );
                reader.set_solve_limits(None);
                return interrupted_rounds;
            }
            Err(ReasonError::Interrupted { spent }) => {
                assert!(
                    spent.conflicts + spent.propagations > 0,
                    "{what}: an interrupted solve must have done work (seed {seed})"
                );
                assert!(
                    budget < 1 << 30,
                    "{what}: no verdict by budget 2^30 (seed {seed})"
                );
                interrupted_rounds += 1;
                budget *= 2;
            }
            Err(e) => panic!("{what}: unexpected error under budget {budget}: {e} (seed {seed})"),
        }
    }
}

/// One full seed: oracle verdicts unbounded, then escalation on every
/// decision surface.
fn soundness_round(seed: u64) -> u32 {
    let spec = random_spec(&config(seed));
    let opts = Options::default();
    let engine = SnapshotEngine::new(spec, &opts).expect("generated specs are admissible");

    // Oracle: a dedicated unbounded reader.
    let mut oracle = engine.reader();
    let inst_len = engine.spec().instance(T).len() as u32;
    let arity = engine.spec().instance(T).arity();
    let q: Query = SpQuery::identity(T, arity).to_query(arity);
    let oracle_dcip = oracle.dcip(T).expect("unbounded");
    let oracle_answers = oracle.certain_answers(&q).expect("unbounded");
    let mut oracle_cop = Vec::new();
    for a in 0..arity {
        let attr = AttrId(a as u32);
        for u in 0..inst_len {
            for v in 0..inst_len {
                let ot = CurrencyOrderQuery::single(T, attr, TupleId(u), TupleId(v));
                oracle_cop.push((ot.clone(), oracle.cop(&ot).expect("unbounded")));
            }
        }
    }

    // The bounded reader is *reused* across escalation rounds and across
    // queries, so a leftover interrupted state from one solve would get
    // every chance to contaminate the next.
    let mut bounded = engine.reader();
    let mut interrupted = 0u32;
    interrupted += escalate(&mut bounded, |r| r.dcip(T), &oracle_dcip, "dcip", seed);
    interrupted += escalate(
        &mut bounded,
        |r| r.certain_answers(&q),
        &oracle_answers,
        "certain_answers",
        seed,
    );
    for (ot, expect) in &oracle_cop {
        interrupted += escalate(&mut bounded, |r| r.cop(ot), expect, "cop", seed);
    }
    interrupted
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn first_bounded_verdict_matches_unbounded_oracle(seed in 0u64..10_000) {
        soundness_round(seed);
    }
}

/// Pinned seeds for CI, with a meta-assertion: across the fixed slice at
/// least one round actually got interrupted, so the escalation path
/// (not just the trivially-converging one) is exercised.
#[test]
fn pinned_seeds_exercise_the_interrupted_path() {
    let mut interrupted = 0u32;
    for seed in 0..24u64 {
        interrupted += soundness_round(seed);
    }
    assert!(
        interrupted > 0,
        "no solve across the pinned slice was ever interrupted — \
         budgets are not reaching the solver"
    );
}
