//! End-to-end: text query syntax → parser → classification → certain
//! current answers over the paper's Fig. 1 database.

use data_currency::datagen::scenarios;
use data_currency::model::Value;
use data_currency::query::{classify, parse_query, QueryClass};
use data_currency::reason::{certain_answers, Options};

#[test]
fn q1_as_text() {
    let f = scenarios::fig1();
    let q = parse_query(
        f.spec.catalog(),
        "Q(sal) :- Emp(fn, ln, addr, sal, st) and fn = 'Mary'",
    )
    .unwrap();
    assert_eq!(classify(&q), QueryClass::Sp);
    let ans = certain_answers(&f.spec, &q, &Options::default()).unwrap();
    assert_eq!(ans.rows().unwrap(), &[vec![Value::int(80)]]);
}

#[test]
fn q4_as_text() {
    let f = scenarios::fig1();
    let q = parse_query(f.spec.catalog(), "Q(b) :- Dept(mfn, mln, maddr, b)").unwrap();
    let ans = certain_answers(&f.spec, &q, &Options::default()).unwrap();
    assert_eq!(ans.rows().unwrap(), &[vec![Value::int(6000)]]);
}

#[test]
fn join_query_across_relations() {
    // Managers of departments: join Dept's manager name to Emp records.
    let f = scenarios::fig1();
    let q = parse_query(
        f.spec.catalog(),
        "Q(addr) :- Dept(mfn, mln, maddr, b) and Emp(mfn, mln, addr, sal, st)",
    )
    .unwrap();
    assert_eq!(classify(&q), QueryClass::Cq);
    let ans = certain_answers(&f.spec, &q, &Options::default()).unwrap();
    // The R&D manager's identity is genuinely uncertain (Mary in t3's
    // world, Ed in t4's world, and no Emp record matches Ed Luth), so the
    // join has NO certain answers — exactly the kind of stale-data hazard
    // the framework is built to expose.
    assert_eq!(ans.rows().unwrap(), &[] as &[Vec<Value>]);

    // A Boolean join that holds in every completion: some department
    // currently budgets 6000 while some employee currently earns 80.
    let q2 = parse_query(
        f.spec.catalog(),
        "Q() :- Dept(mfn, mln, maddr, 6000) and Emp(fn, ln, addr, 80, st)",
    )
    .unwrap();
    assert_eq!(classify(&q2), QueryClass::Cq);
    let ans2 = certain_answers(&f.spec, &q2, &Options::default()).unwrap();
    assert_eq!(ans2.rows().unwrap().len(), 1, "certainly true");
}

#[test]
fn boolean_fo_query() {
    let f = scenarios::fig1();
    // "Someone currently earns at least 80."
    let q = parse_query(
        f.spec.catalog(),
        "Q() :- exists fn ln addr sal st . Emp(fn, ln, addr, sal, st) and sal >= 80",
    )
    .unwrap();
    let ans = certain_answers(&f.spec, &q, &Options::default()).unwrap();
    assert_eq!(ans.rows().unwrap().len(), 1, "certainly true");
    // "Nobody currently earns more than 100."
    let q2 = parse_query(
        f.spec.catalog(),
        "Q() :- forall fn ln addr sal st . not Emp(fn, ln, addr, sal, st) or sal <= 100",
    )
    .unwrap();
    assert_eq!(classify(&q2), QueryClass::Fo);
    let ans2 = certain_answers(&f.spec, &q2, &Options::default()).unwrap();
    assert_eq!(ans2.rows().unwrap().len(), 1, "certainly true");
}

#[test]
fn uncertain_text_query_yields_empty_answers() {
    let f = scenarios::fig1();
    // The R&D manager's first name is uncertain (Mary in t3's world, Ed in
    // t4's world).
    let q = parse_query(f.spec.catalog(), "Q(mfn) :- Dept(mfn, mln, maddr, b)").unwrap();
    let ans = certain_answers(&f.spec, &q, &Options::default()).unwrap();
    assert!(ans.rows().unwrap().is_empty());
}

#[test]
fn eid_syntax_joins_on_entities() {
    let f = scenarios::fig1();
    // Bind Emp's entity id and count Mary's entity once.
    let q = parse_query(
        f.spec.catalog(),
        "Q(e) :- Emp(#e, fn, ln, addr, sal, st) and fn = 'Mary'",
    )
    .unwrap();
    let ans = certain_answers(&f.spec, &q, &Options::default()).unwrap();
    assert_eq!(ans.rows().unwrap(), &[vec![Value::int(f.mary.0 as i64)]]);
}
